"""Figure 10b: AMAT gain vs memory latency (5-30 cycles)."""

from repro.experiments.fig10_latency import latency_sweep
from repro.workloads import BENCHMARK_ORDER


def test_fig10b(run_figure):
    result = run_figure(latency_sweep)
    for bench in BENCHMARK_ORDER:
        row = result.row(bench)
        # Gains are small below 10 cycles...
        assert row["latency=5"] < row["latency=20"] + 1e-9, bench
        # ...and increase very regularly with the memory latency.
        gains = [row[f"latency={lat}"] for lat in (10, 15, 20, 25, 30)]
        assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:])), bench
