"""Figure 6b: repartition of cache hits (main vs bounce-back)."""

from repro.experiments.fig06_summary import hit_repartition
from repro.workloads import BENCHMARK_ORDER


def test_fig06b(run_figure):
    result = run_figure(hit_repartition)
    # "Most cache hits are main cache hits, thanks to the bounce-back
    # mechanism" — the 1-cycle path dominates on every benchmark.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "main cache") > 0.7, bench
    # But the bounce-back cache is not idle: somebody hits in it.
    assert any(
        result.value(bench, "bounce-back cache") > 0.005
        for bench in BENCHMARK_ORDER
    )
