"""Figure 7b: miss ratios (up to 62% reduction for MV in the paper)."""

from repro.experiments.fig07_traffic_miss import miss_ratios
from repro.workloads import BENCHMARK_ORDER


def test_fig07b(run_figure):
    result = run_figure(miss_ratios)
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Soft") <= (
            result.value(bench, "Standard") * 1.02
        ), bench
    # MV: the headline number.
    mv_standard = result.value("MV", "Standard")
    mv_soft = result.value("MV", "Soft")
    assert (mv_standard - mv_soft) / mv_standard > 0.45
