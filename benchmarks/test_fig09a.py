"""Figure 9a: % of misses removed, for 8/16/32/64 KB caches."""

from repro.experiments.fig09_size_assoc import cache_size_study
from repro.workloads import BENCHMARK_ORDER


def test_fig09a(run_figure, figure_scale):
    result = run_figure(cache_size_study)
    # The mechanism keeps helping at 8 KB everywhere...
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Cs=8k, Ls=32") > -1.0, bench
    # ...and the average benefit shrinks as the cache grows (gains fade
    # once working sets fit; the virtual-line headroom halves at 64 B
    # physical lines).
    small = sum(result.value(b, "Cs=8k, Ls=32") for b in BENCHMARK_ORDER)
    large = sum(result.value(b, "Cs=64k, Ls=64") for b in BENCHMARK_ORDER)
    assert large < small
    if figure_scale == "paper":
        # LIV's working set fits into 16 KB: the benefit shrinks there
        # (the paper's observation).  Deviation note: our LIV model's
        # residual misses at >=16 KB are compulsory vector misses, which
        # virtual lines still halve, so the *percentage* stays higher
        # than the paper's near-zero — see EXPERIMENTS.md.
        assert result.value("LIV", "Cs=16k, Ls=64") < (
            result.value("LIV", "Cs=8k, Ls=32")
        )
