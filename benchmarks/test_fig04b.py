"""Figure 4b: inter-reference time distribution (model round-trip)."""

from repro.experiments.fig04_instrumentation import time_distribution
from repro.memtrace import FIG4B_DISTRIBUTION


def test_fig04b(run_figure):
    result = run_figure(time_distribution)
    # The generated traces reproduce the modelled histogram.
    for row, cells in result.rows.items():
        assert abs(cells["model"] - cells["generated"]) < 0.02, row
    # Most consecutive load/stores are 1-2 cycles apart (the paper's
    # pessimistic 1-cycle-per-instruction accounting).
    short = result.value("1 cycles", "model") + result.value("2 cycles", "model")
    assert short > 0.5
