"""Ablation: 16 B vs 32 B physical lines under software assistance
(paper: "proved to be similar", enabling a cheaper cache-to-processor
multiplexer)."""

from repro.experiments.ablations import physical_line
from repro.metrics import geometric_mean


def test_physical_line(run_figure):
    result = run_figure(physical_line)
    sixteen = geometric_mean(result.column("LS=16B").values())
    thirty_two = geometric_mean(result.column("LS=32B").values())
    assert abs(sixteen - thirty_two) / thirty_two < 0.25
