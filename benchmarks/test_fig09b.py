"""Figure 9b: software assistance on 2-way set-associative caches."""

from repro.experiments.fig09_size_assoc import associativity_study
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig09b(run_figure):
    result = run_figure(associativity_study)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Victim caching and set-associativity are merely redundant.
    assert abs(geomean("2-way+victim") - geomean("2-way")) < 0.15
    # Full software assistance still helps a 2-way cache.
    assert geomean("Soft 2-way") < geomean("2-way")
    # The simplified variant (temporal-priority replacement, no
    # bounce-back cache) performs nearly as well — far cheaper hardware.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Simplified Soft 2-way") <= (
            result.value(bench, "Soft 2-way") * 1.15
        ), bench
