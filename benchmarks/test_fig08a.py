"""Figure 8a: virtual line size sweep (32-256 B)."""

from repro.experiments.fig08_line_size import virtual_sweep
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig08a(run_figure):
    result = run_figure(virtual_sweep)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Enabling virtual lines (64 B vs the 32 B no-op) pays on average...
    assert geomean("VL=64B") < geomean("VL=32B")
    # ...and large virtual lines are well tolerated: even 256 B stays far
    # from the blow-up large *physical* lines exhibit (figure 8b).
    assert geomean("VL=256B") < geomean("VL=32B") * 1.1
