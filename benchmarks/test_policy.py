"""Tagging-policy study: elementary vs volume-aware temporal tags."""

from repro.experiments.policy_study import policy_comparison
from repro.workloads import BENCHMARK_ORDER


def test_policy(run_figure, figure_scale):
    result = run_figure(policy_comparison)
    # On the paper suite the policies coincide: every tagged reuse there
    # fits the retention budget, so AMAT matches to within noise.
    for bench in BENCHMARK_ORDER:
        elem = result.value(bench, "AMAT elem")
        volume = result.value(bench, "AMAT volume")
        assert abs(elem - volume) <= elem * 0.02, bench
    # Where the reuse is unreachable (the oversized MV), the volume-aware
    # policy keeps the AMAT and removes nearly all bounce activity.
    if figure_scale != "tiny":
        elem = result.value("MV-oversized", "AMAT elem")
        volume = result.value("MV-oversized", "AMAT volume")
        assert volume <= elem * 1.02
        assert result.value("MV-oversized", "bounces volume") < (
            result.value("MV-oversized", "bounces elem") * 0.1
        )
