"""Figure 3a: efficiency of bypassing (Standard / Bypass / buffer / Soft)."""

from repro.experiments.fig03_pollution import bypass_study
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig03a(run_figure):
    result = run_figure(bypass_study)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Plain bypassing is the worst option on average (spatial locality of
    # non-reusable data pays a round trip per word)...
    assert geomean("Bypass") > geomean("Standard")
    # ...the bypass buffer recovers most of it...
    assert geomean("Bypass buffer") < geomean("Bypass")
    # ...and the software-assisted design beats all of them.
    assert geomean("Soft") < geomean("Standard")
    assert geomean("Soft") < geomean("Bypass buffer")
