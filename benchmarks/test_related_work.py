"""Section 5 related-work comparison: stream buffers & column-associative
cache against the software-assisted design."""

from repro.experiments.related_work import (
    baseline_comparison,
    baseline_traffic,
    stream_buffer_study,
)
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_related_work_amat(run_figure):
    result = run_figure(baseline_comparison)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Column associativity behaves like extra associativity: conflict
    # misses go, pollution stays — it cannot match the full mechanism.
    assert geomean("Soft") < geomean("Column-assoc")
    assert geomean("Soft") < geomean("Standard")


def test_related_work_traffic(run_figure):
    result = run_figure(baseline_traffic)
    # The paper's critique of hardware prefetching: stream buffers buy
    # their hit rate with substantially more memory traffic than the
    # software-assisted cache on irregular codes.
    for bench in ("DYF", "SpMV"):
        assert result.value(bench, "Stream buffers") > (
            result.value(bench, "Soft") * 1.5
        ), bench


def test_stream_buffer_thrashing(run_figure):
    result = run_figure(stream_buffer_study)
    # "The mechanism does not work properly if the number of array
    # references ... is larger than the number of stream buffers."
    assert result.value("8 streams", "2 buffers") > (
        result.value("2 streams", "2 buffers") * 2
    )
    # Enough buffers restore the performance.
    assert result.value("8 streams", "8 buffers") < (
        result.value("8 streams", "2 buffers") / 2
    )
