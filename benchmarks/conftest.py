"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark target runs one figure driver end-to-end (trace
generation is cached; simulation is the measured work) and prints the
regenerated table so a benchmark run doubles as an experiment report.

Scale selection: ``--figure-scale=paper`` reproduces the evaluation at
full size (minutes); the default ``test`` scale keeps the whole battery
in CI territory while preserving every qualitative shape.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--figure-scale",
        action="store",
        default="test",
        choices=("tiny", "test", "paper"),
        help="workload scale for figure benchmarks",
    )


@pytest.fixture(scope="session")
def figure_scale(request):
    return request.config.getoption("--figure-scale")


@pytest.fixture
def run_figure(benchmark, figure_scale):
    """Benchmark a figure driver once and print its table."""

    def runner(driver, **kwargs):
        result = benchmark.pedantic(
            lambda: driver(scale=figure_scale, **kwargs),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.table())
        return result

    return runner
