"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark target runs one figure driver end-to-end (trace
generation is cached; simulation is the measured work) and prints the
regenerated table so a benchmark run doubles as an experiment report.

Scale selection: ``--figure-scale=paper`` reproduces the evaluation at
full size (minutes); the default ``test`` scale keeps the whole battery
in CI territory while preserving every qualitative shape.

Parallelism: ``--figure-jobs=N`` forwards to the sweep engine
(``REPRO_JOBS``), so benchmark timings can be taken serial or parallel.
The on-disk result cache is disabled for every benchmark process —
a timing run must measure simulation, not JSON reads.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--figure-scale",
        action="store",
        default="test",
        choices=("tiny", "test", "paper"),
        help="workload scale for figure benchmarks",
    )
    parser.addoption(
        "--figure-jobs",
        action="store",
        default=None,
        help="worker processes for sweep grids (0 = all cores)",
    )


def pytest_configure(config):
    # Timings must reflect simulation work, never cached results.
    os.environ["REPRO_CACHE"] = "0"
    jobs = config.getoption("--figure-jobs")
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)


@pytest.fixture(scope="session")
def figure_scale(request):
    return request.config.getoption("--figure-scale")


@pytest.fixture(scope="session")
def config_registry():
    """The named CacheSpec registry the CLI exposes (repro.presets)."""
    from repro.presets import SPECS

    return SPECS


@pytest.fixture
def run_figure(benchmark, figure_scale):
    """Benchmark a figure driver once and print its table."""

    def runner(driver, **kwargs):
        result = benchmark.pedantic(
            lambda: driver(scale=figure_scale, **kwargs),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.table())
        return result

    return runner
