"""Figure 12: prefetching through the bounce-back cache."""

from repro.experiments.fig12_prefetch import prefetch_study
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig12(run_figure):
    result = run_figure(prefetch_study)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Prefetching helps both designs...
    assert geomean("Stand.+Prefetch") < geomean("Standard")
    assert geomean("Soft+Prefetch") < geomean("Soft")
    # ...and the software-assisted variant is the best overall: the
    # spatial tags suppress wrong predictions that blind prefetch-on-miss
    # wastes bus bandwidth on.
    assert geomean("Soft+Prefetch") < geomean("Stand.+Prefetch")
    # Soft+Prefetch never regresses below plain Soft by much anywhere.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Soft+Prefetch") <= (
            result.value(bench, "Soft") * 1.05
        ), bench
