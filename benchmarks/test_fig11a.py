"""Figure 11a: optimal block size for blocked matrix-vector multiply."""

from repro.experiments.fig11_blocking import block_size_sweep

#: A representative subset of the paper's x-axis (full sweep at paper
#: scale takes minutes; pass --figure-scale=paper for the real thing).
BLOCKS = (10, 50, 100, 300, 600)


def test_fig11a(run_figure, figure_scale):
    blocks = BLOCKS if figure_scale != "paper" else None
    result = run_figure(block_size_sweep, block_sizes=blocks)
    rows = list(result.rows)
    # Soft is never worse than Standard at any block size...
    for row in rows:
        assert result.value(row, "Soft") <= result.value(row, "Standard") * 1.001
    # ...and its advantage GROWS with the block size: pollution hurts the
    # standard cache exactly where blocking theory wants big blocks.
    first, last = rows[0], rows[-1]
    gain_small = result.value(first, "Standard") - result.value(first, "Soft")
    gain_large = result.value(last, "Standard") - result.value(last, "Soft")
    assert gain_large > gain_small
