"""Figure 1b: vector lengths of per-instruction reference streams."""

from repro.experiments.fig01_locality import vector_lengths
from repro.workloads import BENCHMARK_ORDER


def test_fig01b(run_figure):
    result = run_figure(vector_lengths)
    assert set(result.rows) == set(BENCHMARK_ORDER)
    # The paper's observation: vector lengths often exceed the 32-byte
    # line of small on-chip caches — unexploited spatial locality.
    longer_than_a_line = [
        sum(v for label, v in result.row(bench).items() if label != "<= 32 B")
        for bench in BENCHMARK_ORDER
    ]
    assert sum(fraction > 0.5 for fraction in longer_than_a_line) >= 5
