"""Extension studies: buffer placement, sub-block placement, loop
transformations and miss attribution."""

import pytest

from repro.experiments.attribution_study import miss_concentration
from repro.experiments.related_work import placement_study, subblock_study
from repro.experiments.transforms_study import (
    expansion_study,
    interchange_study,
    strip_mine_equivalence,
)
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_placement(run_figure):
    result = run_figure(placement_study)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # The after-cache bounce-back is safe (never loses to standard)...
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Bounce-back only") <= (
            result.value(bench, "Standard") * 1.01
        ), bench
    # ...the before-cache HP scheme is not: discarded spatial-only data
    # loses unpredicted reuse on at least one code (§2.2's critique of
    # bypassing).
    assert any(
        result.value(bench, "HP assist")
        > result.value(bench, "Standard") * 1.05
        for bench in BENCHMARK_ORDER
    )
    # With virtual lines on top, the paper's design wins overall.
    assert geomean("Soft (BB+VL)") < geomean("HP assist")


def test_subblock(run_figure):
    result = run_figure(subblock_study)
    # Sectoring is a directory/traffic optimisation, not a performance
    # one: it stays within a few percent of the standard cache, while
    # virtual lines actually prefetch the neighbours.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Subblock 64/32B") <= (
            result.value(bench, "Standard 32B") * 1.10
        ), bench
        assert result.value(bench, "Soft (VL64)") < (
            result.value(bench, "Subblock 64/32B")
        ), bench


def test_interchange(run_figure):
    result = run_figure(interchange_study)
    rows = list(result.rows)
    original, interchanged = rows[0], rows[1]
    # The badly ordered sweep gets nothing from software assistance (no
    # tags to act on); interchange recovers the spatial tag and the
    # virtual-line gains follow.
    assert result.value(original, "Soft") >= (
        result.value(original, "Standard") * 0.98
    )
    assert result.value(interchanged, "Soft") < (
        result.value(interchanged, "Standard") * 0.8
    )


def test_expansion(run_figure):
    result = run_figure(expansion_study)
    # Without expansion the aliased sweep is untagged: Soft == Standard.
    assert result.value("no expansion", "Soft") == pytest.approx(
        result.value("no expansion", "Standard"), rel=0.02
    )
    # Expansion recovers the stride-two spatial tags -> virtual lines pay.
    assert result.value("expanded", "Soft") < (
        result.value("expanded", "Standard") * 0.75
    )


def test_strip_mine_equivalence(benchmark, figure_scale):
    auto, hand = benchmark.pedantic(
        lambda: strip_mine_equivalence(scale=figure_scale),
        rounds=1, iterations=1,
    )
    assert (auto.addresses == hand.addresses).all()
    assert (auto.temporal == hand.temporal).all()
    assert (auto.spatial == hand.spatial).all()
    assert (auto.is_write == hand.is_write).all()


def test_attribution(run_figure):
    result = run_figure(miss_concentration)
    # Abraham et al.: few static load/stores induce most misses.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "fraction") <= 0.65, bench
