"""Replacement-headroom study: LRU / Belady-OPT / software assistance."""

from repro.experiments.headroom_study import headroom
from repro.workloads import BENCHMARK_ORDER


def test_headroom(run_figure):
    result = run_figure(headroom)
    for bench in BENCHMARK_ORDER:
        lru_dm = result.value(bench, "LRU-DM")
        lru_fa = result.value(bench, "LRU-FA")
        opt_fa = result.value(bench, "OPT-FA")
        soft = result.value(bench, "Soft")
        # The decomposition is ordered by construction.
        assert opt_fa <= lru_fa + 1e-9, bench
        assert lru_fa <= lru_dm + 1e-9, bench
        # Soft attacks compulsory misses (virtual lines), which no
        # replacement policy can: it beats even fully-associative OPT on
        # every benchmark of this suite.
        assert soft < opt_fa + 1e-9, bench
