"""Figure 4a: fraction of references with temporal/spatial tags."""

from repro.experiments.fig04_instrumentation import tag_fractions
from repro.workloads import BENCHMARK_ORDER

PERFECT_CODES = ("MDG", "BDN", "DYF", "TRF")


def test_fig04a(run_figure):
    result = run_figure(tag_fractions)

    def temporal(bench):
        return (
            result.value(bench, "temporal, no spatial")
            + result.value(bench, "temporal, spatial")
        )

    def untagged(bench):
        return result.value(bench, "no temporal, no spatial")

    # Paper: the temporal bit is set in fewer than 30% of the Perfect
    # Club trace entries — except DYF, the bounce-back star.
    for code in ("MDG", "BDN", "TRF"):
        assert temporal(code) < 0.35, code
    assert temporal("DYF") > 0.3
    # Perfect codes carry many untagged references (outside-loop refs,
    # CALL bodies); the numerical kernels are almost fully tagged.
    assert all(untagged(code) > 0.25 for code in PERFECT_CODES)
    assert all(untagged(k) < 0.05 for k in ("MV", "SpMV", "LIV", "NAS"))
