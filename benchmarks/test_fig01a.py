"""Figure 1a: reuse-distance distribution of the benchmark suite."""

from repro.experiments.fig01_locality import reuse_distances
from repro.workloads import BENCHMARK_ORDER


def test_fig01a(run_figure):
    result = run_figure(reuse_distances)
    assert set(result.rows) == set(BENCHMARK_ORDER)
    # The paper's observation: a sizable share of data is referenced only
    # once (compulsory misses matter) on several codes.
    single_use_heavy = sum(
        result.value(bench, "no reuse") > 0.2 for bench in BENCHMARK_ORDER
    )
    assert single_use_heavy >= 3
    # ...and reuse distances beyond 10^3 references exist (pollution
    # threatens temporal reuse).
    assert any(
        result.value(bench, "10^3 - 10^4") + result.value(bench, "> 10^4") > 0.1
        for bench in BENCHMARK_ORDER
    )
