"""Ablation: bounce-back admission policy (paper: admitting every victim
— so the buffer doubles as a victim cache — beats the "more natural"
temporal-only admission, probably because of spatial interferences)."""

from repro.experiments.ablations import admission_policy
from repro.metrics import geometric_mean


def test_admission_policy(run_figure):
    result = run_figure(admission_policy)
    admit_all = geometric_mean(result.column("admit all victims").values())
    temporal_only = geometric_mean(
        result.column("temporal victims only").values()
    )
    assert admit_all <= temporal_only * 1.01
