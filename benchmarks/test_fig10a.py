"""Figure 10a: manually instrumented Perfect Club kernels."""

from repro.experiments.fig06_summary import amat_breakdown
from repro.experiments.fig10_latency import kernel_study
from repro.workloads import KERNEL_ORDER


def test_fig10a(run_figure, figure_scale):
    result = run_figure(kernel_study)
    # Soft never loses on the kernels either.
    for code in KERNEL_ORDER:
        assert result.value(code, "Soft") <= (
            result.value(code, "Standard") * 1.005
        ), code
    # If most references can be instrumented, further improvements
    # appear: the kernels' relative gains beat the full codes'.  (DYF
    # only exhibits this at full problem size, where the state vectors
    # overflow the cache.)
    codes = ("MDG", "BDN", "TRF")
    if figure_scale == "paper":
        codes += ("DYF",)
    full = amat_breakdown(scale=figure_scale)
    for code in codes:
        kernel_gain = 1 - result.value(code, "Soft") / result.value(code, "Standard")
        full_gain = 1 - full.value(code, "Soft") / full.value(code, "Standard")
        assert kernel_gain >= full_gain - 0.03, code
