"""Figure 3b: efficiency of victim caches vs the full mechanism."""

from repro.experiments.fig03_pollution import victim_study
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig03b(run_figure):
    result = run_figure(victim_study)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # A victim cache helps (interferences) but cannot absorb pollution:
    # the software-assisted cache is strictly stronger on average.
    assert geomean("Stand.+Victim") <= geomean("Standard") + 1e-9
    assert geomean("Soft") < geomean("Stand.+Victim")
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Soft") <= (
            result.value(bench, "Standard") * 1.001
        )
