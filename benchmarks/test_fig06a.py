"""Figure 6a: AMAT under Standard / Temp-only / Spat-only / Soft."""

from repro.experiments.fig06_summary import amat_breakdown
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig06a(run_figure):
    result = run_figure(amat_breakdown)

    def geomean(series):
        return geometric_mean(result.column(series).values())

    # Safety: Soft never loses to Standard on any benchmark.
    for bench in BENCHMARK_ORDER:
        assert result.value(bench, "Soft") <= (
            result.value(bench, "Standard") * 1.001
        ), bench
    # Both single mechanisms help on average; the combination is best.
    assert geomean("Temp only") <= geomean("Standard") + 1e-9
    assert geomean("Spat only") < geomean("Standard")
    assert geomean("Soft") <= geomean("Temp only")
    assert geomean("Soft") <= geomean("Spat only") + 1e-9
    # The paper's per-benchmark signatures: the bounce-back mechanism
    # alone profits DYF/MV; virtual lines alone are stronger for NAS.
    for bench in ("DYF", "MV"):
        assert result.value(bench, "Temp only") < (
            result.value(bench, "Standard") * 0.99
        ), bench
    nas = result.row("NAS")
    assert nas["Spat only"] < nas["Temp only"]
