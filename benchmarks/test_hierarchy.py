"""Retrospective: software assistance behind a 256 KB L2."""

from repro.experiments.hierarchy_study import l2_retrospective
from repro.workloads import BENCHMARK_ORDER


def test_hierarchy(run_figure):
    result = run_figure(l2_retrospective)
    for bench in BENCHMARK_ORDER:
        # Assistance still never hurts with an L2 behind it...
        assert result.value(bench, "Soft +L2") <= (
            result.value(bench, "Stand +L2") * 1.005
        ), bench
        # ...but the relative gain shrinks: an L2 hit is exactly the
        # short-latency regime of figure 10b.
        assert result.value(bench, "gain% +L2") <= (
            result.value(bench, "gain% flat") + 1.0
        ), bench
    # Some benefit must survive (compulsory/streaming misses still pay
    # the full memory trip, and virtual lines halve them).
    assert max(
        result.value(b, "gain% +L2") for b in BENCHMARK_ORDER
    ) > 5.0
