"""Ablation: bounce-back cache associativity (paper: "a 4-way
bounce-back cache would perform reasonably well")."""

from repro.experiments.ablations import bounce_back_associativity
from repro.metrics import geometric_mean


def test_bounce_back_associativity(run_figure):
    result = run_figure(bounce_back_associativity)
    fully = geometric_mean(result.column("fully assoc").values())
    four_way = geometric_mean(result.column("4-way").values())
    assert four_way <= fully * 1.08
