"""Ablation: bounce-back cache size (paper: "small bounce-back caches
perform nearly as well as large ones")."""

from repro.experiments.ablations import bounce_back_size
from repro.metrics import geometric_mean


def test_bounce_back_size(run_figure):
    result = run_figure(bounce_back_size)
    geomeans = {
        series: geometric_mean(result.column(series).values())
        for series in result.series
    }
    # The paper's 8-line choice is within a few percent of 32 lines.
    assert geomeans["8 lines"] <= geomeans["32 lines"] * 1.06
    # And 4 lines is still close (the small-is-fine trade-off: shorter
    # bounce-back delay vs victim coverage).
    assert geomeans["4 lines"] <= geomeans["8 lines"] * 1.08
