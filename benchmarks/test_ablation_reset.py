"""Ablation: temporal-bit reset after a bounce (the paper's dynamic
adjustment — without it "dead" reusable data keeps polluting)."""

from repro.experiments.ablations import temporal_reset
from repro.metrics import geometric_mean


def test_temporal_reset(run_figure):
    result = run_figure(temporal_reset)
    with_reset = geometric_mean(result.column("reset on bounce").values())
    without = geometric_mean(result.column("no reset").values())
    # The adjustment never hurts much; dead data would otherwise bounce
    # forever.
    assert with_reset <= without * 1.03
