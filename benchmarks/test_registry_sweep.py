"""One benchmark trace across every named configuration in the registry.

This is the `python -m repro simulate --config all` path: a single-row
sweep grid over ``repro.presets.SPECS``, and the broadest single-trace
workout of the spec-dispatch machinery.
"""

from repro.harness.runner import run_sweep
from repro.workloads.registry import get_trace


def test_registry_sweep(benchmark, figure_scale, config_registry):
    trace = get_trace("MV", figure_scale)

    def run():
        return run_sweep({"MV": trace}, config_registry, cache=None)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert list(sweep.config_order) == list(config_registry)
    print()
    print(sweep.table())
