"""Figure 7a: memory traffic (words fetched per reference)."""

from repro.experiments.fig07_traffic_miss import traffic
from repro.workloads import BENCHMARK_ORDER


def test_fig07a(run_figure):
    result = run_figure(traffic)
    inflated = 0
    for bench in BENCHMARK_ORDER:
        standard = result.value(bench, "Standard")
        spat_only = result.value(bench, "Spat only")
        soft = result.value(bench, "Soft")
        # Virtual lines alone may increase traffic; combined with the
        # bounce-back cache the increase (mostly) disappears.
        assert soft <= spat_only * 1.05, bench
        if soft > standard * 1.02:
            inflated += 1
    # "Memory traffic is barely increased (except for TRF)".
    assert inflated <= 2
    assert result.value("TRF", "Soft") > result.value("TRF", "Standard")
