"""Figure 11b: data copying for blocked matrix-matrix multiply."""

import statistics

from repro.experiments.fig11_blocking import copying_study

#: Subset of leading dimensions for the default scale.
DIMS = (116, 118, 120, 122, 124, 126)


def test_fig11b(run_figure, figure_scale):
    dims = DIMS if figure_scale != "paper" else None
    result = run_figure(copying_study, leading_dims=dims)

    def series(name):
        return list(result.column(name).values())

    # Copying stabilises the blocked kernel: the no-copy AMAT varies
    # (much) more across leading dimensions than the copy AMAT.
    assert statistics.pstdev(series("No copy (stand.)")) >= (
        statistics.pstdev(series("Copy (stand.)")) * 0.9
    )
    # Under software assistance, copying is consistently worthwhile (the
    # refill no longer flushes the local array): mean copy <= mean nocopy.
    assert statistics.mean(series("Copy (soft)")) <= (
        statistics.mean(series("No copy (soft)")) * 1.05
    )
    # And the soft cache improves the blocked kernel across the board.
    for row in result.rows:
        assert result.value(row, "No copy (soft)") <= (
            result.value(row, "No copy (stand.)") * 1.001
        )
