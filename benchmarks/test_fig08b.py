"""Figure 8b: physical line size sweep vs the software-assisted cache."""

from repro.experiments.fig08_line_size import physical_sweep
from repro.metrics import geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig08b(run_figure, figure_scale):
    result = run_figure(physical_sweep)
    if figure_scale == "paper":
        # Large physical lines break down somewhere (cache entries /
        # line ratio): at least one benchmark prefers 32 B over 256 B.
        # Only visible at full problem size — small working sets never
        # stress the entry count.
        worse_at_256 = sum(
            result.value(b, "Stand 256B") > result.value(b, "Stand 32B")
            for b in BENCHMARK_ORDER
        )
        assert worse_at_256 >= 1
    # The 64-byte *virtual* line usually beats the 64-byte *physical*
    # line (the Soft column vs Stand 64B).
    soft_wins = sum(
        result.value(b, "Soft") <= result.value(b, "Stand 64B") * 1.02
        for b in BENCHMARK_ORDER
    )
    assert soft_wins >= 5
