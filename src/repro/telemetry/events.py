"""Per-reference outcome batches — the telemetry event stream.

Probes never see engine internals.  Both engines (and both trace
shapes, in-memory and streamed) emit the same *logical* event stream: a
sequence of :class:`TelemetryBatch` column batches covering the trace
in order, each reference annotated with its simulated outcome (miss,
assist hit, cycles, words fetched, write-buffer stall).  The reference
engine fills the outcome columns from per-access counter deltas; the
fast engine reconstructs them from its batch kernels (exactly — see
:mod:`repro.sim.fast`).

Batch *partitioning* is an engine detail (one batch per chunk, or per
trace), so probes must accumulate by global reference index — every
probe in this package is insensitive to how the stream is cut, which is
what makes reference/fast and streamed/in-memory reports identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class TelemetryBatch:
    """One contiguous run of per-reference simulation outcomes.

    Columns are aligned numpy arrays of equal length; ``start`` is the
    global index of the first reference, so consecutive batches tile
    the trace: ``batch.start == previous.start + len(previous)``.
    """

    #: Global index of the first reference in this batch.
    start: int
    # -- trace columns (as simulated) ---------------------------------
    addresses: np.ndarray  #: int64 byte addresses
    is_write: np.ndarray  #: bool
    temporal: np.ndarray  #: bool compiler temporal tags
    spatial: np.ndarray  #: bool compiler spatial tags
    gaps: np.ndarray  #: int64 inter-reference gaps
    # -- simulated outcomes -------------------------------------------
    miss: np.ndarray  #: bool — reference missed (assist hits are hits)
    assist_hit: np.ndarray  #: bool — served by the bounce-back cache
    cycles: np.ndarray  #: int64 — cycles charged to this access
    words: np.ndarray  #: int64 — memory words fetched by this access
    wb_stall: np.ndarray  #: int64 — write-buffer stall cycles incurred
    #: int64 static-instruction ids, or None for traces without them.
    ref_ids: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.addresses)
