"""Telemetry runs: spec, assembled report, and the ``analyze`` entry.

A :class:`TelemetrySpec` is the telemetry analogue of
:class:`~repro.core.spec.CacheSpec`: a frozen, picklable description of
which probes to attach and how (window width, which shadow analyses).
It has its own :meth:`~TelemetrySpec.fingerprint`, which the sweep
engine hashes *separately* from the result-cache key — telemetry never
changes what a simulation computes, so it must never change how its
:class:`~repro.sim.result.SimResult` is cached.

:func:`analyze` is the one-call entry: build the probes, run the
simulation (any engine, in-memory or streamed) with them attached, and
assemble a :class:`TelemetryReport`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.spec import CacheSpec, stable_fingerprint
from ..memtrace.trace import Trace
from ..sim.result import SimResult
from .probes import DEFAULT_WINDOW_REFS, AttributionProbe, ProbeSet, WindowProbe


@dataclass(frozen=True)
class TelemetrySpec:
    """Frozen description of one telemetry configuration."""

    #: Time-series window width (references per window).
    window_refs: int = DEFAULT_WINDOW_REFS
    #: 3C miss classification against shadow simulators.
    classify: bool = True
    #: Bounce-back saves/pollution + virtual-line fetch utilization.
    assist: bool = True
    #: Compiler-tag vs observed-locality audit.
    tag_audit: bool = True
    #: Per static-instruction profile (requires a trace with ref_ids).
    attribution: bool = False

    def build_probes(self, model) -> ProbeSet:
        """Instantiate the probe battery for ``model``.

        The shadow probes need the model's geometry; models without one
        (e.g. hierarchies) just skip those sections.
        """
        from .classify import AssistImpactProbe, MissClassProbe, TagAuditProbe

        probes = [WindowProbe(self.window_refs)]
        geometry = getattr(model, "geometry", None)
        if self.classify and geometry is not None:
            probes.append(MissClassProbe(geometry))
        if self.assist and geometry is not None:
            probes.append(AssistImpactProbe(geometry))
        if self.tag_audit:
            line_size = geometry.line_size if geometry is not None else 32
            probes.append(TagAuditProbe(line_size=line_size))
        if self.attribution:
            probes.append(AttributionProbe())
        return ProbeSet(probes)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable content hash — the telemetry-artifact key component."""
        return stable_fingerprint(self.to_dict())


@dataclass
class TelemetryReport:
    """One probed run: the simulation result plus every probe section."""

    result: SimResult
    spec: TelemetrySpec
    #: probe key -> JSON-safe payload (see each probe's ``report``).
    sections: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Section accessors (empty defaults when a probe was disabled)
    # ------------------------------------------------------------------
    @property
    def windows(self) -> List[Dict[str, float]]:
        return self.sections.get("windows", [])

    @property
    def miss_classes(self) -> Dict[str, int]:
        return self.sections.get("miss_classes", {})

    @property
    def assist(self) -> Dict[str, float]:
        return self.sections.get("assist", {})

    @property
    def tag_audit(self) -> Dict[str, Dict[str, float]]:
        return self.sections.get("tag_audit", {})

    @property
    def attribution(self) -> List[Dict[str, int]]:
        return self.sections.get("attribution", [])

    # ------------------------------------------------------------------
    # Serialisation / rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary: run summary + spec + probe sections."""
        result = self.result
        return {
            "run": {
                "cache": result.cache,
                "trace": result.trace,
                "engine": result.engine,
                "refs": result.refs,
                "cycles": result.cycles,
                "misses": result.misses,
                "amat": result.amat,
                "miss_ratio": result.miss_ratio,
                "traffic": result.traffic,
                "write_buffer_stalls": result.write_buffer_stalls,
            },
            "spec": self.spec.to_dict(),
            **self.sections,
        }

    def format(self) -> str:
        """Human-readable multi-section rendering (the CLI output)."""
        result = self.result
        lines = [
            f"{result.cache} on {result.trace} [{result.engine}]: "
            f"{result.refs} refs, AMAT={result.amat:.3f}, "
            f"miss={100 * result.miss_ratio:.2f}%, "
            f"traffic={result.traffic:.3f} w/ref",
        ]
        windows = self.windows
        if windows:
            rates = [w["miss_rate"] for w in windows]
            lines.append(
                f"windows ({len(windows)} x {self.spec.window_refs} refs): "
                f"miss rate min={min(rates):.4f} "
                f"mean={sum(rates) / len(rates):.4f} max={max(rates):.4f}"
            )
            lines.append("  " + _sparkline(rates))
        classes = self.miss_classes
        if classes and result.misses:
            lines.append(
                "miss classes: "
                + ", ".join(
                    f"{name} {classes[name]} "
                    f"({100 * classes[name] / result.misses:.1f}%)"
                    for name in ("compulsory", "capacity", "conflict")
                )
            )
        assist = self.assist
        if assist:
            lines.append(
                f"assist impact: saves={assist['saves']} "
                f"pollution={assist['pollution']} "
                f"(net {assist['net_saves']:+d}); "
                f"bounce-backs={assist['bounce_backs']} "
                f"(aborted {assist['bounce_aborts']}), "
                f"assist hits={assist['hits_assist']}"
            )
            if assist["sibling_lines_fetched"]:
                lines.append(
                    f"virtual-line fetch: {assist['sibling_lines_fetched']} "
                    f"sibling lines fetched, "
                    f"{100 * assist['fetch_utilization']:.1f}% used"
                )
        audit = self.tag_audit
        if audit:
            for name in ("temporal", "spatial"):
                row = audit[name]
                lines.append(
                    f"tag audit [{name}]: "
                    f"agreement={100 * row['agreement']:.1f}% "
                    f"precision={100 * row['precision']:.1f}% "
                    f"recall={100 * row['recall']:.1f}% "
                    f"(compiler {row['compiler_tagged']} vs "
                    f"observed {row['observed_tagged']})"
                )
        attribution = self.attribution
        if attribution:
            static = len(attribution)
            lines.append(
                f"attribution: {result.misses} misses over "
                f"{static} static load/stores"
            )
        return "\n".join(lines)


#: Eight-level block ramp for the windowed miss-rate sparkline.
_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: List[float], width: int = 60) -> str:
    """Coarse ASCII rendering of a series (downsampled by striding)."""
    if not values:
        return ""
    if len(values) > width:
        stride = (len(values) + width - 1) // width
        values = [
            max(values[i : i + stride])
            for i in range(0, len(values), stride)
        ]
    top = max(values) or 1.0
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, int(round(scale * v / top)))] for v in values
    )


def analyze(
    config: Union[CacheSpec, Any],
    trace: Union[Trace, Any],
    telemetry: Optional[TelemetrySpec] = None,
    engine: Optional[str] = None,
) -> TelemetryReport:
    """Run one probed simulation and assemble its telemetry report.

    ``config`` is a :class:`~repro.core.spec.CacheSpec` (a fresh model
    is built) or an already-built model; ``trace`` is an in-memory
    :class:`~repro.memtrace.trace.Trace` or a
    :class:`~repro.stream.TraceStream` (probed out-of-core, O(chunk)
    memory).  The report is identical whichever engine ran and however
    the trace was chunked — the probes consume one canonical event
    stream (see :mod:`repro.telemetry.events`).
    """
    from ..sim.driver import simulate, simulate_stream

    spec = telemetry if telemetry is not None else TelemetrySpec()
    model = config.build() if isinstance(config, CacheSpec) else config
    probes = spec.build_probes(model)
    if isinstance(trace, Trace):
        result = simulate(model, trace, engine=engine, probes=probes)
    else:
        result = simulate_stream(model, trace, engine=engine, probes=probes)
    return TelemetryReport(result=result, spec=spec, sections=probes.report())
