"""Telemetry: streaming cache-behavior probes over both engines.

The simulators historically emitted end-of-run counters only; this
package turns a run into an *explained* run.  A
:class:`~repro.telemetry.probes.ProbeSet` attaches to
``simulate``/``simulate_stream`` and consumes a canonical per-reference
event stream (:mod:`repro.telemetry.events`) that both engines emit
identically — the reference loop from counter deltas, the fast kernels
from exact per-reference reconstruction — so every report below is
bit-identical across ``engine=reference``/``fast`` and
streamed/in-memory runs:

* windowed time series (miss rate, AMAT, traffic, write-buffer stalls
  per N-reference window) in O(chunk) memory over any trace stream;
* 3C miss classification (compulsory/capacity/conflict) against
  infinite and fully-associative LRU shadows;
* assist impact — bounce-back saves vs pollution against a plain-LRU
  shadow, and virtual-line fetch utilization;
* a tag audit comparing compiler temporal/spatial bits to observed
  dynamic locality;
* per static-instruction attribution (the probe behind
  :func:`repro.metrics.attribution.attribute`).

Entry points: :func:`analyze` for one run,
``run_sweep(..., telemetry=TelemetrySpec())`` for grids (artifacts are
keyed separately from the result cache), and the ``repro analyze`` CLI.
"""

from .events import TelemetryBatch
from .probes import (
    DEFAULT_WINDOW_REFS,
    AttributionProbe,
    Probe,
    ProbeSet,
    WindowProbe,
)
from .classify import AssistImpactProbe, MissClassProbe, TagAuditProbe
from .report import TelemetryReport, TelemetrySpec, analyze
from .export import (
    default_telemetry_dir,
    jsonl_lines,
    read_jsonl,
    telemetry_artifact_path,
    telemetry_key,
    write_csv,
    write_jsonl,
    write_report,
)

__all__ = [
    "DEFAULT_WINDOW_REFS",
    "TelemetryBatch",
    "Probe",
    "ProbeSet",
    "WindowProbe",
    "AttributionProbe",
    "MissClassProbe",
    "AssistImpactProbe",
    "TagAuditProbe",
    "TelemetrySpec",
    "TelemetryReport",
    "analyze",
    "default_telemetry_dir",
    "telemetry_key",
    "telemetry_artifact_path",
    "jsonl_lines",
    "read_jsonl",
    "write_jsonl",
    "write_csv",
    "write_report",
]
