"""Shadow-simulator probes: 3C miss classes, assist impact, tag audit.

These are the paper-specific analyses (§3–§4): *why* does a
configuration miss, what did the software assists actually buy, and how
good were the compiler's one-bit tags?  Each probe walks the event
stream next to a small functional shadow model — no timing, bounded
state — so classification runs in one pass over any
:class:`~repro.stream.TraceStream` in O(state) memory.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.geometry import CacheGeometry
from ..sim.result import SimResult
from .events import TelemetryBatch
from .probes import Probe


class _FullyAssocLRU:
    """Functional fully-associative LRU shadow (hit/miss only)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lines: Dict[int, None] = {}  # insertion-ordered LRU

    def access(self, line: int) -> bool:
        lines = self._lines
        hit = line in lines
        if hit:
            del lines[line]  # re-insert at MRU position
        elif len(lines) >= self.capacity:
            del lines[next(iter(lines))]
        lines[line] = None
        return hit


class _ShadowLRU:
    """Functional set-associative LRU shadow of a real geometry.

    Plain allocate-on-miss LRU — the un-assisted baseline the paper's
    Standard configuration implements.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.n_sets = geometry.n_sets
        self.ways = geometry.ways
        if self.ways == 1:
            self._tags: List[int] = [-1] * self.n_sets
            self._sets: List[List[int]] = []
        else:
            self._tags = []
            self._sets = [[] for _ in range(self.n_sets)]

    def access(self, line: int) -> bool:
        set_index = line % self.n_sets
        if self.ways == 1:
            hit = self._tags[set_index] == line
            if not hit:
                self._tags[set_index] = line
            return hit
        entries = self._sets[set_index]
        for position, resident in enumerate(entries):
            if resident == line:
                if position:
                    del entries[position]
                    entries.insert(0, line)
                return True
        if len(entries) >= self.ways:
            entries.pop()
        entries.insert(0, line)
        return False


class MissClassProbe(Probe):
    """3C classification of every real miss (Hill's taxonomy).

    * **compulsory** — first reference to the line, ever;
    * **capacity** — the line was touched before but a fully-associative
      LRU cache of the same capacity would miss too;
    * **conflict** — the fully-associative shadow hits, so only the
      mapping (set conflicts) caused the miss.
    """

    key = "miss_classes"

    def __init__(self, geometry: CacheGeometry) -> None:
        self.line_shift = geometry.line_shift
        self._seen: set = set()
        self._full = _FullyAssocLRU(geometry.n_lines)
        self.compulsory = 0
        self.capacity = 0
        self.conflict = 0

    def on_batch(self, batch: TelemetryBatch) -> None:
        lines = (batch.addresses >> self.line_shift).tolist()
        misses = batch.miss.tolist()
        seen = self._seen
        full = self._full
        for line, miss in zip(lines, misses):
            full_hit = full.access(line)
            if miss:
                if line not in seen:
                    self.compulsory += 1
                elif full_hit:
                    self.conflict += 1
                else:
                    self.capacity += 1
            seen.add(line)

    def report(self) -> Dict[str, int]:
        return {
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "misses": self.compulsory + self.capacity + self.conflict,
        }


class AssistImpactProbe(Probe):
    """What the software assists bought (or cost) vs a plain baseline.

    A same-geometry plain-LRU shadow stands in for the un-assisted
    Standard cache:

    * **saves** — references the shadow misses but the assisted cache
      serves (bounce-back recoveries, virtual-line coverage);
    * **pollution** — references the shadow serves but the assisted
      cache misses (assists evicted something that was still live).

    On a Standard configuration the shadow is functionally identical to
    the real cache, so both counters are zero by construction — a
    built-in parity check.

    The probe also tracks **virtual-line fetch utilization**: every
    over-fetch (a miss that brings in more than one physical line)
    registers its sibling lines, and a later hit on a registered
    sibling counts it used; utilization is used/fetched siblings.
    Sibling reconstruction assumes aligned over-fetch groups (virtual
    lines); prefetch-driven over-fetch is attributed approximately.
    """

    key = "assist"

    def __init__(self, geometry: CacheGeometry) -> None:
        self.line_shift = geometry.line_shift
        self.words_per_line = geometry.line_size // 8
        self._shadow = _ShadowLRU(geometry)
        self.saves = 0
        self.pollution = 0
        self.shadow_misses = 0
        self.sibling_lines_fetched = 0
        self.sibling_lines_used = 0
        self._pending: Dict[int, None] = {}  # fetched, not yet re-touched
        self._totals: Dict[str, int] = {}

    def on_batch(self, batch: TelemetryBatch) -> None:
        lines = (batch.addresses >> self.line_shift).tolist()
        misses = batch.miss.tolist()
        words = batch.words.tolist()
        shadow = self._shadow
        pending = self._pending
        wpl = self.words_per_line
        for line, miss, fetched in zip(lines, misses, words):
            shadow_hit = shadow.access(line)
            if not shadow_hit:
                self.shadow_misses += 1
            if miss and shadow_hit:
                self.pollution += 1
            elif not miss and not shadow_hit:
                self.saves += 1
            if line in pending:
                if not miss:
                    self.sibling_lines_used += 1
                del pending[line]
            if miss and fetched > wpl:
                group = fetched // wpl
                base = (line // group) * group
                for sibling in range(base, base + group):
                    if sibling != line and sibling not in pending:
                        pending[sibling] = None
                        self.sibling_lines_fetched += 1

    def finish(self, result: SimResult) -> None:
        self._totals = {
            "bounce_backs": result.bounce_backs,
            "bounce_aborts": result.bounce_aborts,
            "hits_assist": result.hits_assist,
            "prefetches_issued": result.prefetches_issued,
            "prefetch_hits": result.prefetch_hits,
        }

    def report(self) -> Dict[str, float]:
        fetched = self.sibling_lines_fetched
        return {
            "saves": self.saves,
            "pollution": self.pollution,
            "net_saves": self.saves - self.pollution,
            "shadow_misses": self.shadow_misses,
            "sibling_lines_fetched": fetched,
            "sibling_lines_used": self.sibling_lines_used,
            "fetch_utilization": (
                self.sibling_lines_used / fetched if fetched else 0.0
            ),
            **self._totals,
        }


class TagAuditProbe(Probe):
    """Compiler temporal/spatial bits vs observed dynamic locality.

    The oracle is the bounded-state dynamic reconstruction of
    :class:`~repro.stream.ingest.TagAnnotator` — the same
    stride/reuse-window criteria the compiler pass applies statically,
    read off the stream (§4's oracle-vs-elementary comparison).  The
    audit treats the compiler bit as the prediction and the observed
    bit as the truth, reporting agreement, precision and recall per
    tag.
    """

    key = "tag_audit"

    def __init__(self, line_size: int = 32, window_lines: int = 4096) -> None:
        from ..stream.ingest import TagAnnotator

        self._annotator = TagAnnotator(
            line_size=line_size, window_lines=window_lines
        )
        #: tag name -> [tp, fp, fn, tn]
        self._counts = {"temporal": [0, 0, 0, 0], "spatial": [0, 0, 0, 0]}

    def on_batch(self, batch: TelemetryBatch) -> None:
        observed_t, observed_s = self._annotator.annotate_addresses(
            batch.addresses
        )
        for name, compiler, observed in (
            ("temporal", batch.temporal, observed_t),
            ("spatial", batch.spatial, observed_s),
        ):
            counts = self._counts[name]
            counts[0] += int((compiler & observed).sum())
            counts[1] += int((compiler & ~observed).sum())
            counts[2] += int((~compiler & observed).sum())
            counts[3] += int((~compiler & ~observed).sum())

    def report(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, (tp, fp, fn, tn) in self._counts.items():
            total = tp + fp + fn + tn
            out[name] = {
                "refs": total,
                "compiler_tagged": tp + fp,
                "observed_tagged": tp + fn,
                "agreement": (tp + tn) / total if total else 0.0,
                "precision": tp / (tp + fp) if tp + fp else 0.0,
                "recall": tp / (tp + fn) if tp + fn else 0.0,
            }
        return out
