"""The probe protocol and the stream-aggregate probes.

A probe consumes :class:`~repro.telemetry.events.TelemetryBatch`
objects in trace order and reduces them to a JSON-safe report.  The
contract that keeps engine/stream parity:

* ``on_batch`` must be insensitive to batch partitioning — accumulate
  by ``batch.start`` + offset, never by "batches seen";
* ``finish`` receives the final :class:`~repro.sim.result.SimResult`
  (for totals that are cheaper read off the counters);
* ``report`` returns plain ints/floats/strs/lists/dicts only.

Probes are *off* by default: the engines' hot paths are untouched
unless a :class:`ProbeSet` is passed to ``simulate``/``simulate_stream``
(see :mod:`repro.sim.driver`), so disabled-probe overhead is one
``is None`` test per call.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from ..errors import ConfigError, TraceError
from ..sim.result import SimResult
from .events import TelemetryBatch

#: Default time-series window (references per window).
DEFAULT_WINDOW_REFS = 4096


class Probe:
    """Base probe: no-op hooks plus the report key."""

    #: Section name in the assembled report (unique per ProbeSet).
    key: str = "probe"

    def on_batch(self, batch: TelemetryBatch) -> None:  # pragma: no cover
        pass

    def finish(self, result: SimResult) -> None:
        pass

    def report(self) -> object:
        return {}


class ProbeSet:
    """An ordered collection of probes driven as one unit."""

    def __init__(self, probes: Optional[List[Probe]] = None) -> None:
        self.probes: List[Probe] = list(probes or [])
        keys = [probe.key for probe in self.probes]
        if len(set(keys)) != len(keys):
            raise ConfigError(f"duplicate probe keys in ProbeSet: {keys}")

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self.probes)

    def get(self, key: str) -> Optional[Probe]:
        for probe in self.probes:
            if probe.key == key:
                return probe
        return None

    def on_batch(self, batch: TelemetryBatch) -> None:
        for probe in self.probes:
            probe.on_batch(batch)

    def finish(self, result: SimResult) -> None:
        for probe in self.probes:
            probe.finish(result)

    def report(self) -> Dict[str, object]:
        return {probe.key: probe.report() for probe in self.probes}


class WindowProbe(Probe):
    """Windowed time series: one row per N consecutive references.

    Windows are aligned to global reference index (window ``k`` covers
    references ``[k*N, (k+1)*N)``), so a batch covering a window
    boundary contributes partial sums to both sides and the series is
    identical however the stream was chunked.
    """

    key = "windows"

    def __init__(self, window_refs: int = DEFAULT_WINDOW_REFS) -> None:
        if window_refs < 1:
            raise ConfigError(f"window_refs must be >= 1: {window_refs}")
        self.window_refs = int(window_refs)
        self._rows: List[Dict[str, int]] = []
        self._current: Optional[Dict[str, int]] = None

    def on_batch(self, batch: TelemetryBatch) -> None:
        n = len(batch)
        width = self.window_refs
        position = 0
        while position < n:
            index = (batch.start + position) // width
            # Local end of window `index` within this batch.
            end = min(n, (index + 1) * width - batch.start)
            self._accumulate(index, batch, position, end)
            position = end

    def _accumulate(
        self, index: int, batch: TelemetryBatch, lo: int, hi: int
    ) -> None:
        row = self._current
        if row is None or row["window"] != index:
            if row is not None:
                self._rows.append(row)
            row = self._current = {
                "window": index,
                "start": index * self.window_refs,
                "refs": 0,
                "misses": 0,
                "assist_hits": 0,
                "cycles": 0,
                "words": 0,
                "wb_stalls": 0,
            }
        row["refs"] += hi - lo
        row["misses"] += int(batch.miss[lo:hi].sum())
        row["assist_hits"] += int(batch.assist_hit[lo:hi].sum())
        row["cycles"] += int(batch.cycles[lo:hi].sum())
        row["words"] += int(batch.words[lo:hi].sum())
        row["wb_stalls"] += int(batch.wb_stall[lo:hi].sum())

    def finish(self, result: SimResult) -> None:
        if self._current is not None:
            self._rows.append(self._current)
            self._current = None

    def report(self) -> List[Dict[str, float]]:
        out = []
        for row in self._rows:
            refs = row["refs"]
            out.append(
                {
                    **row,
                    "miss_rate": row["misses"] / refs if refs else 0.0,
                    "amat": row["cycles"] / refs if refs else 0.0,
                    "traffic": row["words"] / refs if refs else 0.0,
                }
            )
        return out


class AttributionProbe(Probe):
    """Per static-instruction (``ref_id``) refs/misses/cycles counters.

    The probe-layer replacement for the old standalone attribution
    loop (:mod:`repro.metrics.attribution` builds its public
    ``Attribution`` objects from this probe's table).
    """

    key = "attribution"

    def __init__(self) -> None:
        #: ref_id -> [refs, misses, cycles]
        self.profiles: Dict[int, List[int]] = {}

    def on_batch(self, batch: TelemetryBatch) -> None:
        if batch.ref_ids is None:
            raise TraceError("attribution requires a trace with ref_ids")
        unique, inverse = np.unique(batch.ref_ids, return_inverse=True)
        refs = np.bincount(inverse)
        misses = np.bincount(inverse, weights=batch.miss)
        cycles = np.bincount(inverse, weights=batch.cycles)
        profiles = self.profiles
        for rid, r, m, c in zip(
            unique.tolist(), refs.tolist(), misses.tolist(), cycles.tolist()
        ):
            row = profiles.get(rid)
            if row is None:
                row = profiles[rid] = [0, 0, 0]
            row[0] += int(r)
            row[1] += int(m)
            row[2] += int(c)

    def report(self) -> List[Dict[str, int]]:
        return [
            {
                "ref_id": rid,
                "refs": row[0],
                "misses": row[1],
                "cycles": row[2],
            }
            for rid, row in sorted(self.profiles.items())
        ]
