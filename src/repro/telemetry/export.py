"""Telemetry exporters and the separately-keyed artifact store.

Formats
-------
``report.json``
    The full :meth:`~repro.telemetry.report.TelemetryReport.to_dict`
    payload, indented.
``telemetry.jsonl``
    One self-describing JSON object per line: first a ``{"type":
    "report", ...}`` line carrying the run summary and every scalar
    section, then one ``{"type": "window", ...}`` line per time-series
    window.  Line-oriented so sweep artifacts concatenate and stream.
``windows.csv``
    The window series alone, one row per window — the
    spreadsheet-friendly view.

Artifact keying
---------------
Sweep telemetry artifacts are content-addressed like result-cache
cells, but in their *own* key space: ``sha256(SIM_VERSION, trace
fingerprint, cache-spec fingerprint, engine, telemetry fingerprint)``.
The result-cache key never sees the telemetry fingerprint, so enabling
telemetry can never invalidate (or fork) cached ``SimResult`` cells.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Union

from .report import TelemetryReport

#: Column order of the windows CSV (derived columns last).
WINDOW_FIELDS = (
    "window", "start", "refs", "misses", "assist_hits", "cycles",
    "words", "wb_stalls", "miss_rate", "amat", "traffic",
)


def jsonl_lines(report: TelemetryReport) -> Iterator[str]:
    """The JSONL rendering, line by line (no trailing newlines)."""
    payload = report.to_dict()
    windows = payload.pop("windows", [])
    yield json.dumps({"type": "report", **payload}, sort_keys=True)
    for row in windows:
        yield json.dumps({"type": "window", **row}, sort_keys=True)


def write_jsonl(
    report: TelemetryReport, path: Union[str, os.PathLike]
) -> Path:
    """Atomically write the JSONL artifact (mkstemp + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".jsonl"
    )
    with os.fdopen(fd, "w") as handle:
        for line in jsonl_lines(report):
            handle.write(line + "\n")
    os.replace(tmp, path)
    return path


def write_csv(report: TelemetryReport, path: Union[str, os.PathLike]) -> Path:
    """Write the window time series as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=WINDOW_FIELDS)
        writer.writeheader()
        for row in report.windows:
            writer.writerow({name: row[name] for name in WINDOW_FIELDS})
    return path


def write_report(
    report: TelemetryReport, out_dir: Union[str, os.PathLike]
) -> Dict[str, Path]:
    """Write all three renderings into ``out_dir``; returns the paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "report.json"
    json_path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return {
        "report.json": json_path,
        "telemetry.jsonl": write_jsonl(report, out_dir / "telemetry.jsonl"),
        "windows.csv": write_csv(report, out_dir / "windows.csv"),
    }


def read_jsonl(path: Union[str, os.PathLike]) -> List[Dict]:
    """Parse a JSONL artifact back into its line objects."""
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ----------------------------------------------------------------------
# Sweep artifact store
# ----------------------------------------------------------------------
def default_telemetry_dir() -> Path:
    """Artifact location, honouring ``REPRO_TELEMETRY_DIR``/XDG."""
    explicit = os.environ.get("REPRO_TELEMETRY_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "telemetry"


def telemetry_key(
    trace_fingerprint: str,
    spec_fingerprint: str,
    engine: str,
    telemetry_fingerprint: str,
) -> str:
    """Content key of one sweep cell's telemetry artifact."""
    from ..harness.parallel import SIM_VERSION

    material = (
        f"{SIM_VERSION}\n{trace_fingerprint}\n{spec_fingerprint}"
        f"\n{engine}\n{telemetry_fingerprint}"
    )
    return hashlib.sha256(material.encode()).hexdigest()


def telemetry_artifact_path(
    root: Union[str, os.PathLike, None],
    trace,
    spec,
    engine: str,
    telemetry,
) -> Path:
    """Deterministic artifact path of one (trace, spec, engine) cell."""
    root = Path(root) if root is not None else default_telemetry_dir()
    key = telemetry_key(
        trace.fingerprint(),
        spec.fingerprint(),
        engine,
        telemetry.fingerprint(),
    )
    return root / key[:2] / f"{key}.jsonl"
