"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid cache, timing or workload configuration was supplied."""


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent."""


class CompilerError(ReproError):
    """A loop nest or affine expression cannot be analysed or generated."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""
