"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so that
callers can catch library failures without masking programming errors.

Every class carries a stable machine-readable ``code`` (kebab-case) used
wherever an error crosses a machine boundary — the serve API's JSON
error bodies and the CLI's ``error [<code>]: ...`` lines.  Codes are
part of the compatibility surface: renaming one breaks clients that
branch on it, so treat them like wire-format fields.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    #: Stable machine-readable error code (kebab-case), overridden per
    #: subclass.  Surfaced verbatim by the serve API and the CLI.
    code = "repro-error"


class ConfigError(ReproError):
    """An invalid cache, timing or workload configuration was supplied."""

    code = "config-error"


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent."""

    code = "trace-error"


class CompilerError(ReproError):
    """A loop nest or affine expression cannot be analysed or generated."""

    code = "compiler-error"


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""

    code = "simulation-error"


def error_code(error: BaseException) -> str:
    """The stable code of any exception (``internal-error`` otherwise)."""
    return getattr(error, "code", "internal-error")
