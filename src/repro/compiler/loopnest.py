"""Loop-nest intermediate representation.

The workloads of the paper (matrix-vector multiply, Livermore loops,
Perfect Club kernels...) are Fortran loop nests over dense arrays.  This
module provides a small IR for such nests so that

* the locality analysis of section 2.3 (:mod:`repro.compiler.locality`)
  can derive per-reference temporal/spatial tags by subscript analysis,
  exactly as the paper's Sage++ instrumentation pass does, and
* the trace generator (:mod:`repro.compiler.tracegen`) can "execute" the
  nest and emit the instrumented reference trace.

Arrays are laid out column-major (Fortran): the *first* subscript is the
fastest-varying one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import CompilerError
from .affine import Affine


@dataclass(frozen=True)
class Loop:
    """A counted loop ``DO index = lower, upper-1, step`` (upper exclusive).

    ``opaque`` marks a loop that, in the original program, is a call
    boundary (e.g. a time-stepping loop invoking the sweep subroutine):
    the locality analysis cannot carry temporal reuse across its
    iterations, although loops *inside* it are analysed normally.  This
    differs from ``LoopNest.has_call``, which poisons the whole body.
    """

    index: str
    lower: int
    upper: int
    step: int = 1
    opaque: bool = False

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise CompilerError(f"loop {self.index!r}: step must be positive")
        if self.upper < self.lower:
            raise CompilerError(
                f"loop {self.index!r}: upper bound {self.upper} below lower "
                f"bound {self.lower}"
            )

    @property
    def trip_count(self) -> int:
        """Number of iterations executed."""
        return max(0, (self.upper - self.lower + self.step - 1) // self.step)

    def values(self) -> np.ndarray:
        """All values taken by the induction variable, in order."""
        return np.arange(self.lower, self.upper, self.step, dtype=np.int64)


@dataclass(frozen=True)
class Array:
    """A dense Fortran array: column-major, double precision by default."""

    name: str
    shape: Tuple[int, ...]
    element_size: int = 8

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise CompilerError(f"array {self.name!r}: invalid shape {self.shape}")
        if self.element_size <= 0:
            raise CompilerError(f"array {self.name!r}: invalid element size")

    @property
    def elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def size_bytes(self) -> int:
        return self.elements * self.element_size

    def strides(self) -> Tuple[int, ...]:
        """Element stride of each dimension (column-major)."""
        strides: List[int] = []
        acc = 1
        for d in self.shape:
            strides.append(acc)
            acc *= d
        return tuple(strides)


@dataclass(frozen=True)
class ArrayRef:
    """One array reference inside a loop body.

    Parameters
    ----------
    array
        Name of the referenced array.
    subscripts
        One affine expression per array dimension (column-major order).
        With ``indirect`` set, a single subscript indexes the indirection
        table instead.
    is_write
        True for stores.
    indirect
        Optional integer table: the element offset is
        ``indirect[subscripts[0]]`` (indirect addressing, e.g. the sparse
        matrix-vector ``X(Index(j2))``).
    temporal / spatial
        Optional user directives (section 4.1) overriding the compiler
        analysis.  ``None`` means "let the compiler decide".
    parametric_stride
        True when the innermost-loop coefficient is a runtime parameter;
        the paper's rule then forbids the spatial tag.
    """

    array: str
    subscripts: Tuple[Affine, ...]
    is_write: bool = False
    indirect: Optional[Tuple[int, ...]] = None
    temporal: Optional[bool] = None
    spatial: Optional[bool] = None
    parametric_stride: bool = False

    def __post_init__(self) -> None:
        if not self.subscripts:
            raise CompilerError(f"reference to {self.array!r} has no subscripts")
        # Accept plain integers as constant subscripts.
        if any(isinstance(s, int) for s in self.subscripts):
            coerced = tuple(
                Affine.constant(s) if isinstance(s, int) else s
                for s in self.subscripts
            )
            object.__setattr__(self, "subscripts", coerced)
        if self.indirect is not None and len(self.subscripts) != 1:
            raise CompilerError(
                f"indirect reference to {self.array!r} must have exactly one "
                f"subscript (the table position)"
            )

    def indirect_table(self) -> np.ndarray:
        if self.indirect is None:
            raise CompilerError(f"reference to {self.array!r} is not indirect")
        return np.asarray(self.indirect, dtype=np.int64)


@dataclass(frozen=True)
class LoopNest:
    """A loop nest with a straight-line body of array references.

    ``loops`` is ordered outermost-first; the ``body`` executes once per
    innermost iteration, references in source order.  ``pre`` and
    ``post`` references execute once per iteration of the *outer* loops,
    immediately before/after the innermost loop — the Fortran
    accumulator idiom the paper's loops use::

        DO j1 = 0,N-1
           reg = Y(j1)          <- pre
           DO j2 = 0,N-1
              reg += A(j2,j1) * X(j2)     <- body
           ENDDO
           Y(j1) = reg          <- post
        ENDDO

    ``has_call`` marks a loop body containing a CALL statement: the paper
    performs no interprocedural analysis, so all tags in such a nest are
    cleared.

    ``aliases`` models the dusty-deck idiom the paper blames for missing
    tags: subscripts written through an alias of a loop index
    (``K = 2*J + 1; ... A(K)``).  An alias maps a variable name to its
    affine definition in the loop indices.  Trace generation always
    resolves aliases (addresses are concrete), but the locality analysis
    only sees through them when *subscript expansion* is enabled — "since
    subscript expansion was not performed, the locality could not be
    exploited in these loops" (section 3.2).
    """

    loops: Tuple[Loop, ...]
    body: Tuple[ArrayRef, ...]
    pre: Tuple[ArrayRef, ...] = ()
    post: Tuple[ArrayRef, ...] = ()
    has_call: bool = False
    name: str = ""
    aliases: Tuple[Tuple[str, Affine], ...] = ()

    def __post_init__(self) -> None:
        if not self.loops:
            raise CompilerError("a loop nest needs at least one loop")
        if not self.body:
            raise CompilerError("a loop nest needs at least one reference")
        names = [l.index for l in self.loops]
        if len(set(names)) != len(names):
            raise CompilerError(f"duplicate loop indices in nest: {names}")
        alias_map = dict(self.aliases)
        if set(alias_map) & set(names):
            raise CompilerError("an alias cannot shadow a loop index")
        for alias, definition in alias_map.items():
            foreign = definition.variables - set(names)
            if foreign:
                raise CompilerError(
                    f"alias {alias!r} refers to unknown indices {foreign}"
                )
        inner = self.loops[-1].index
        for ref in self.pre + self.post:
            for subscript in ref.subscripts:
                if inner in subscript.variables:
                    raise CompilerError(
                        f"pre/post reference to {ref.array!r} uses the "
                        f"innermost index {inner!r}"
                    )

    def resolve_aliases(self, expression: Affine) -> Affine:
        """Substitute every alias in ``expression`` by its definition."""
        out = expression
        for alias, definition in self.aliases:
            out = out.substitute(alias, definition)
        return out

    def expanded(self) -> "LoopNest":
        """The nest with all subscripts rewritten in pure loop indices
        (the subscript-expansion transformation of section 3.2)."""
        if not self.aliases:
            return self

        def rewrite(ref: ArrayRef) -> ArrayRef:
            return ArrayRef(
                array=ref.array,
                subscripts=tuple(
                    self.resolve_aliases(s) for s in ref.subscripts
                ),
                is_write=ref.is_write,
                indirect=ref.indirect,
                temporal=ref.temporal,
                spatial=ref.spatial,
                parametric_stride=ref.parametric_stride,
            )

        return LoopNest(
            loops=self.loops,
            body=tuple(rewrite(r) for r in self.body),
            pre=tuple(rewrite(r) for r in self.pre),
            post=tuple(rewrite(r) for r in self.post),
            has_call=self.has_call,
            name=self.name,
        )

    @property
    def innermost(self) -> Loop:
        return self.loops[-1]

    @property
    def outer_loops(self) -> Tuple[Loop, ...]:
        return self.loops[:-1]

    @property
    def iterations(self) -> int:
        n = 1
        for loop in self.loops:
            n *= loop.trip_count
        return n

    @property
    def outer_iterations(self) -> int:
        n = 1
        for loop in self.loops[:-1]:
            n *= loop.trip_count
        return n

    @property
    def references(self) -> int:
        """Total dynamic references issued by the nest."""
        return self.iterations * len(self.body) + self.outer_iterations * (
            len(self.pre) + len(self.post)
        )

    @property
    def all_refs(self) -> Tuple[ArrayRef, ...]:
        """Static references in pre, body, post order."""
        return self.pre + self.body + self.post


def nest(
    loops: Sequence[Loop],
    body: Sequence[ArrayRef],
    pre: Sequence[ArrayRef] = (),
    post: Sequence[ArrayRef] = (),
    has_call: bool = False,
    name: str = "",
    aliases: Mapping[str, Affine] = None,
) -> LoopNest:
    """Convenience constructor accepting plain sequences and dicts."""
    return LoopNest(
        tuple(loops), tuple(body), pre=tuple(pre), post=tuple(post),
        has_call=has_call, name=name,
        aliases=tuple((aliases or {}).items()),
    )


@dataclass(frozen=True)
class ScalarBlock:
    """A block of untagged scalar/outside-loop references.

    Perfect Club codes issue a large fraction of references outside loops
    (figure 4a's untagged share).  A scalar block models them: ``count``
    references drawn round-robin from ``addresses``; never tagged.
    """

    addresses: Tuple[int, ...]
    count: int
    write_every: int = 0  # every n-th reference is a store (0 = never)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.addresses:
            raise CompilerError("scalar block needs at least one address")
        if self.count < 0:
            raise CompilerError("scalar block count must be non-negative")


#: Anything a program may contain.
ProgramItem = Union[LoopNest, ScalarBlock]


class Program:
    """A whole benchmark: arrays plus an ordered list of nests/blocks.

    The program assigns base addresses to its arrays (contiguous,
    ``align``-byte aligned, in declaration order — the Fortran COMMON
    picture, which is what makes the leading-dimension interference
    study of figure 11b meaningful).
    """

    def __init__(
        self,
        name: str,
        arrays: Sequence[Array],
        items: Sequence[ProgramItem],
        repeat: int = 1,
        align: int = 32,
        base_address: int = 0,
    ) -> None:
        if repeat < 1:
            raise CompilerError(f"program {name!r}: repeat must be >= 1")
        if align < 1:
            raise CompilerError(f"program {name!r}: align must be >= 1")
        seen: Dict[str, Array] = {}
        for a in arrays:
            if a.name in seen:
                raise CompilerError(f"program {name!r}: duplicate array {a.name!r}")
            seen[a.name] = a
        for item in items:
            if isinstance(item, LoopNest):
                for ref in item.all_refs:
                    if ref.array not in seen:
                        raise CompilerError(
                            f"program {name!r}: reference to undeclared array "
                            f"{ref.array!r}"
                        )
        self.name = name
        self.arrays = seen
        self.items = list(items)
        self.repeat = repeat
        self.align = align
        self.base_address = base_address
        self._bases: Optional[Dict[str, int]] = None

    def layout(self) -> Dict[str, int]:
        """Base byte address of every array (computed once, then cached)."""
        if self._bases is None:
            bases: Dict[str, int] = {}
            cursor = self.base_address
            for a in self.arrays.values():
                cursor = (cursor + self.align - 1) // self.align * self.align
                bases[a.name] = cursor
                cursor += a.size_bytes
            self._bases = bases
        return self._bases

    @property
    def nests(self) -> List[LoopNest]:
        return [item for item in self.items if isinstance(item, LoopNest)]

    @property
    def references(self) -> int:
        """Dynamic references per single repetition."""
        total = 0
        for item in self.items:
            if isinstance(item, LoopNest):
                total += item.references
            else:
                total += item.count
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, arrays={len(self.arrays)}, "
            f"items={len(self.items)}, refs/rep={self.references})"
        )
