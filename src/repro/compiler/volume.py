"""Volume-aware temporal tagging — the paper's "more sophisticated
techniques might bring further improvements" (conclusions), implemented.

The elementary section 2.3 analysis tags *any* temporal dependence, even
when the reuse distance exceeds what any cache of the target size could
retain — the line then bounces once through the bounce-back cache for
nothing, evicting a live line (the stale-bounce effect visible on MDG in
figure 6a).  Wolf & Lam-style locality algorithms weigh reuse against
the *volume* of data touched between reuses; this module implements that
refinement at the same subscript-analysis level of effort:

* for a self-dependence carried by loop ``l`` (a zero-coefficient,
  non-opaque loop), the reuse distance is the number of references
  issued by one iteration of ``l``'s *inner* loops;
* for a uniformly generated group dependence with constant difference
  ``d`` carried by a loop with coefficient ``c`` (``d = k*c``), the
  distance is ``k`` iterations of that loop's inner reference volume;
* the temporal tag survives only if the smallest such distance fits the
  retention budget — by default the paper's own estimate of a line's
  average lifetime in an 8 KB cache, ~2500 references (section 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .affine import Affine
from .loopnest import Loop, LoopNest

#: The paper's estimate (section 1) puts the average lifetime of a line
#: in an 8 KB / 32 B cache at roughly 2500 references; the bounce-back
#: mechanism saves a line once per touch, roughly doubling its effective
#: lifetime — so reuse within ~2 x 2500 references is still worth
#: protecting.
DEFAULT_RETENTION_REFS = 5000

#: Effectively-infinite distance for unreachable reuse.
UNREACHABLE = 1 << 60


def _refs_per_iteration(loops: Sequence[Loop], position: int, n_refs: int) -> int:
    """References issued by one iteration of ``loops[position]``.

    The product of the inner trip counts times the number of references
    per innermost iteration — the same coarse accounting the paper uses
    for its 2500-reference lifetime estimate.
    """
    volume = n_refs
    for loop in loops[position + 1 :]:
        volume *= max(1, loop.trip_count)
    return volume


def self_reuse_distance(
    offset: Affine, loops: Sequence[Loop], n_refs: int
) -> int:
    """Smallest reuse distance of a loop-invariant reference, in
    references (UNREACHABLE if no carrying loop exists)."""
    best = UNREACHABLE
    for position, loop in enumerate(loops):
        if loop.opaque or loop.trip_count < 2:
            continue
        if offset.coefficient(loop.index) != 0:
            continue
        best = min(best, _refs_per_iteration(loops, position, n_refs))
    return best


def group_reuse_distance(
    difference: int, offset: Affine, loops: Sequence[Loop], n_refs: int
) -> int:
    """Smallest reuse distance of a uniformly generated group dependence
    whose members' constants differ by ``difference``."""
    if difference == 0:
        return 0  # same-iteration read/write pair
    magnitude = abs(difference)
    best = UNREACHABLE
    for position, loop in enumerate(loops):
        if loop.opaque:
            continue
        coefficient = offset.coefficient(loop.index) * loop.step
        if coefficient == 0 or magnitude % abs(coefficient) != 0:
            continue
        iterations = magnitude // abs(coefficient)
        if iterations >= loop.trip_count:
            continue  # the dependence never materialises
        best = min(
            best,
            iterations * _refs_per_iteration(loops, position, n_refs),
        )
    return best


def reachable(distance: int, retention_refs: int = DEFAULT_RETENTION_REFS) -> bool:
    """Would a line survive in cache across ``distance`` references?"""
    return distance <= retention_refs
