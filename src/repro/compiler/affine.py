"""Affine index expressions over loop induction variables.

Array subscripts in the paper's benchmarks are affine functions of the
loop indices (``A(I,J)``, ``B(J,I+1)``...).  The locality analysis of
section 2.3 is plain subscript analysis on these expressions: reading off
the innermost-loop coefficient (spatial tag) and comparing expressions up
to a constant (temporal group dependences).

:class:`Affine` is immutable and hashable; arithmetic returns new objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple, Union

import numpy as np

from ..errors import CompilerError

Number = Union[int, np.integer]


def _normalise(terms: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    """Drop zero coefficients and order terms deterministically."""
    return tuple(sorted((v, int(c)) for v, c in terms.items() if c != 0))


@dataclass(frozen=True)
class Affine:
    """``const + sum(coefficient * variable)`` with integer coefficients."""

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "const", int(self.const))
        object.__setattr__(self, "terms", _normalise(dict(self.terms)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def variable(name: str) -> "Affine":
        """The expression consisting of a single loop index."""
        return Affine(0, ((name, 1),))

    @staticmethod
    def constant(value: int) -> "Affine":
        """A constant expression."""
        return Affine(int(value), ())

    @staticmethod
    def build(const: int = 0, **coefficients: int) -> "Affine":
        """Readable constructor: ``Affine.build(2, i=1, j=4)`` = 2 + i + 4j."""
        return Affine(const, tuple(coefficients.items()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def coefficient(self, var: str) -> int:
        """Coefficient of ``var`` (0 if absent)."""
        for v, c in self.terms:
            if v == var:
                return c
        return 0

    @property
    def variables(self) -> FrozenSet[str]:
        """The set of loop indices this expression depends on."""
        return frozenset(v for v, _ in self.terms)

    def is_constant(self) -> bool:
        return not self.terms

    def drop_const(self) -> "Affine":
        """The same expression with a zero constant term.

        Two subscripts are *uniformly generated* exactly when their
        ``drop_const()`` forms are equal.
        """
        return Affine(0, self.terms)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Affine", Number]) -> "Affine":
        if isinstance(other, (int, np.integer)):
            return Affine(self.const + int(other), self.terms)
        if isinstance(other, Affine):
            merged: Dict[str, int] = dict(self.terms)
            for v, c in other.terms:
                merged[v] = merged.get(v, 0) + c
            return Affine(self.const + other.const, tuple(merged.items()))
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return self * -1

    def __sub__(self, other: Union["Affine", Number]) -> "Affine":
        if isinstance(other, (int, np.integer)):
            return self + (-int(other))
        if isinstance(other, Affine):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar: Number) -> "Affine":
        if not isinstance(scalar, (int, np.integer)):
            raise CompilerError(
                f"affine expressions only scale by integers, got {scalar!r}"
            )
        s = int(scalar)
        return Affine(self.const * s, tuple((v, c * s) for v, c in self.terms))

    __rmul__ = __mul__

    def substitute(self, name: str, replacement: "Affine") -> "Affine":
        """Replace a variable by an affine expression.

        Used by loop transformations: strip-mining ``i`` into
        ``io * B + ii`` rewrites every subscript via
        ``substitute("i", io * B + ii)``.
        """
        coefficient = self.coefficient(name)
        if coefficient == 0:
            return self
        remaining = Affine(
            self.const, tuple((v, c) for v, c in self.terms if v != name)
        )
        return remaining + replacement * coefficient

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, env: Mapping[str, Union[int, np.ndarray]]):
        """Evaluate under an assignment of loop indices.

        Values may be scalars or (broadcastable) numpy arrays; the result
        follows numpy broadcasting, which is what the vectorised trace
        generator relies on.
        """
        result: Union[int, np.ndarray] = self.const
        for v, c in self.terms:
            if v not in env:
                raise CompilerError(f"unbound loop index {v!r} in {self}")
            result = result + c * env[v]
        return result

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for v, c in self.terms:
            if c == 1:
                parts.append(v)
            else:
                parts.append(f"{c}*{v}")
        return " + ".join(parts) if parts else "0"


def var(name: str) -> Affine:
    """Shorthand for :meth:`Affine.variable`, for readable nest definitions."""
    return Affine.variable(name)
