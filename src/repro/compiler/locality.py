"""Compile-time locality analysis (paper section 2.3).

The paper deliberately uses *elementary* techniques — the point is that
simple subscript analysis suffices to drive the hardware:

spatial tag
    Set when the coefficient of the innermost loop in the (linearised,
    column-major) subscript is smaller than 4 elements (a 32-byte line
    holds 4 doubles).  A parametric coefficient forbids the tag.  Within a
    uniformly generated group, only the *leader* (the reference touching
    new data first) keeps the spatial tag — the follower's data is already
    in cache through the group-temporal reuse, so fetching a virtual line
    for it would be wasted (this is why ``B(J,I)`` is tagged *no spatial*
    while ``B(J,I+1)`` is tagged *spatial* in the paper's figure 5).

temporal tag
    Set on a temporal *self-dependence* — the reference is invariant along
    some enclosing loop with more than one iteration (``X(J)`` inside the
    ``I`` loop) — or a *uniformly generated group dependence* — another
    reference to the same array whose linearised subscript differs only by
    a constant (``B(J,I)`` / ``B(J,I+1)``, or a read/write pair ``Y(I)``).

CALL statements
    A loop body containing a call gets all tags cleared (no
    interprocedural analysis), unless a user directive (section 4.1)
    explicitly overrides a reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompilerError
from . import volume
from .affine import Affine
from .loopnest import Array, ArrayRef, LoopNest, Program

#: The paper's spatial threshold: strides below 4 elements (32 bytes /
#: 8-byte double) leave spatial locality inside a physical line.
SPATIAL_THRESHOLD_ELEMENTS = 4


@dataclass(frozen=True)
class RefTags:
    """Result of the analysis for one reference."""

    temporal: bool
    spatial: bool
    reasons: Tuple[str, ...] = ()

    def __iter__(self):
        yield self.temporal
        yield self.spatial


def linearize(ref: ArrayRef, array: Array) -> Affine:
    """Linearised element offset of a (direct) reference.

    Column-major: ``offset = s0 + d0*(s1 + d1*(s2 + ...))``.
    """
    if ref.indirect is not None:
        raise CompilerError(
            f"cannot linearise indirect reference to {ref.array!r}"
        )
    if len(ref.subscripts) != len(array.shape):
        raise CompilerError(
            f"reference to {array.name!r} has {len(ref.subscripts)} "
            f"subscripts, array has {len(array.shape)} dimensions"
        )
    offset = Affine.constant(0)
    for subscript, stride in zip(ref.subscripts, array.strides()):
        offset = offset + subscript * stride
    return offset


@dataclass(frozen=True)
class NestTags:
    """Analysis result for a whole nest, by reference position."""

    pre: Tuple[RefTags, ...]
    body: Tuple[RefTags, ...]
    post: Tuple[RefTags, ...]

    @property
    def all(self) -> Tuple[RefTags, ...]:
        """Tags in ``pre, body, post`` order (matches ``LoopNest.all_refs``)."""
        return self.pre + self.body + self.post


def _self_temporal(offset: Affine, loops: Sequence) -> bool:
    """True if the reference is invariant along some multi-trip loop.

    Opaque loops (call boundaries in the original source) are skipped:
    the analysis cannot see reuse carried across them.
    """
    return any(
        offset.coefficient(loop.index) == 0
        and loop.trip_count > 1
        and not loop.opaque
        for loop in loops
    )


#: Tagging policies: the paper's elementary rules, or the volume-aware
#: refinement (see :mod:`repro.compiler.volume`).
TAGGING_POLICIES = ("elementary", "volume-aware")


def _analyze_refs(
    refs: Sequence[ArrayRef],
    loops: Sequence,
    arrays: Dict[str, Array],
    has_call: bool,
    spatial_threshold: int,
    known_indices: frozenset = frozenset(),
    policy: str = "elementary",
    retention_refs: int = 0,
) -> List[RefTags]:
    """Tag a group of references executing at the same loop level.

    ``loops`` is the enclosing loop stack of these references (its last
    element is their innermost loop).  Uniformly generated groups are
    detected among the given references only — cross-level dependences
    are deliberately out of reach of the paper's "elementary" analysis.
    """
    offsets: List[Optional[Affine]] = []
    for ref in refs:
        if ref.indirect is None:
            offsets.append(linearize(ref, arrays[ref.array]))
        else:
            offsets.append(None)

    groups: Dict[Tuple[str, Affine], List[int]] = {}
    for i, (ref, offset) in enumerate(zip(refs, offsets)):
        if offset is not None:
            groups.setdefault((ref.array, offset.drop_const()), []).append(i)

    tags: List[RefTags] = []
    for i, (ref, offset) in enumerate(zip(refs, offsets)):
        reasons: List[str] = []
        if has_call:
            temporal = spatial = False
            reasons.append("loop body contains a CALL: tags cleared")
        elif not loops:
            temporal = spatial = False
            reasons.append("reference outside any loop: untagged")
        elif offset is None:
            temporal = spatial = False
            reasons.append("indirect addressing: no compile-time locality")
        elif known_indices and not offset.variables <= known_indices:
            # Subscripts written through loop-index aliases: without
            # subscript expansion (section 3.2) the analysis cannot see
            # the stride or the reuse.
            temporal = spatial = False
            reasons.append(
                "aliased subscript: needs subscript expansion"
            )
        else:
            members = groups[(ref.array, offset.drop_const())]
            in_group = len(members) > 1
            group_consts = [offsets[j].const for j in members]  # type: ignore[union-attr]
            is_follower = (
                in_group
                and max(group_consts) != min(group_consts)
                and offset.const < max(group_consts)
            )

            volume_aware = policy == "volume-aware"
            temporal = False
            if _self_temporal(offset, loops):
                if not volume_aware:
                    temporal = True
                    reasons.append("temporal self-dependence (loop-invariant)")
                else:
                    distance = volume.self_reuse_distance(
                        offset, loops, len(refs)
                    )
                    if volume.reachable(distance, retention_refs):
                        temporal = True
                        reasons.append(
                            f"self-dependence within reach "
                            f"(~{distance} references)"
                        )
                    else:
                        reasons.append(
                            "self-dependence beyond the retention budget: "
                            "volume-aware policy declines the tag"
                        )
            if in_group:
                if not volume_aware:
                    temporal = True
                    reasons.append("uniformly generated group dependence")
                else:
                    distance = min(
                        volume.group_reuse_distance(
                            offset.const - offsets[j].const,  # type: ignore[union-attr]
                            offset,
                            loops,
                            len(refs),
                        )
                        for j in members
                        if j != i
                    )
                    if volume.reachable(distance, retention_refs):
                        temporal = True
                        reasons.append(
                            f"group dependence within reach "
                            f"(~{distance} references)"
                        )
                    else:
                        reasons.append(
                            "group dependence beyond the retention budget: "
                            "volume-aware policy declines the tag"
                        )

            innermost = loops[-1]
            if ref.parametric_stride:
                spatial = False
                reasons.append("parametric innermost coefficient: no spatial")
            else:
                stride = abs(offset.coefficient(innermost.index) * innermost.step)
                spatial = stride < spatial_threshold
                reasons.append(f"innermost stride = {stride} elements")
                if spatial and is_follower:
                    spatial = False
                    reasons.append(
                        "group follower: data touched earlier by group leader"
                    )

        # User directives (section 4.1) override the compiler in all cases.
        if ref.temporal is not None:
            temporal = ref.temporal
            reasons.append(f"user directive: temporal={ref.temporal}")
        if ref.spatial is not None:
            spatial = ref.spatial
            reasons.append(f"user directive: spatial={ref.spatial}")

        tags.append(RefTags(temporal, spatial, tuple(reasons)))
    return tags


def analyze_nest(
    nest: LoopNest,
    arrays: Dict[str, Array],
    spatial_threshold: int = SPATIAL_THRESHOLD_ELEMENTS,
    expand_subscripts: bool = False,
    policy: str = "elementary",
    retention_refs: int = volume.DEFAULT_RETENTION_REFS,
) -> NestTags:
    """Derive the (temporal, spatial) tags for every reference of a nest.

    Body references are analysed at the full loop depth; pre/post
    references at the outer-loop depth (their innermost enclosing loop is
    the second-innermost loop of the nest).  With ``expand_subscripts``
    the section 3.2 alias limitation is lifted: aliased subscripts are
    rewritten in pure loop indices before the analysis (the paper did
    *not* do this, which is the default here too).
    """
    if policy not in TAGGING_POLICIES:
        raise CompilerError(
            f"unknown tagging policy {policy!r}; choose from "
            f"{TAGGING_POLICIES}"
        )
    target = nest.expanded() if expand_subscripts else nest
    known = frozenset(loop.index for loop in nest.loops)
    body = _analyze_refs(
        target.body, target.loops, arrays, target.has_call,
        spatial_threshold, known_indices=known,
        policy=policy, retention_refs=retention_refs,
    )
    outer = _analyze_refs(
        target.pre + target.post,
        target.outer_loops,
        arrays,
        target.has_call,
        spatial_threshold,
        known_indices=known,
        policy=policy,
        retention_refs=retention_refs,
    )
    n_pre = len(target.pre)
    return NestTags(
        pre=tuple(outer[:n_pre]),
        body=tuple(body),
        post=tuple(outer[n_pre:]),
    )


def analyze_program(
    program: Program,
    spatial_threshold: int = SPATIAL_THRESHOLD_ELEMENTS,
    expand_subscripts: bool = False,
    policy: str = "elementary",
    retention_refs: int = volume.DEFAULT_RETENTION_REFS,
) -> Dict[int, NestTags]:
    """Tags for every loop nest of a program, keyed by item position.

    Scalar blocks get no entry: their references are untagged by
    construction (outside-loop references, figure 4a).
    """
    result: Dict[int, NestTags] = {}
    for position, item in enumerate(program.items):
        if isinstance(item, LoopNest):
            result[position] = analyze_nest(
                item, program.arrays, spatial_threshold,
                expand_subscripts=expand_subscripts,
                policy=policy,
                retention_refs=retention_refs,
            )
    return result
