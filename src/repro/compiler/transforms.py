"""Loop transformations: interchange and strip-mining.

Section 3.2 observes that many Perfect Club loops are "badly ordered,
inducing non stride-one references, and preventing the use of virtual
lines"; section 4 argues software-assisted caches are a convenient
target for data-locality transformations.  This module provides the two
classic ones, with conservative legality checks:

* :func:`interchange` — permute the loops of a nest (fixes bad loop
  order, turning a leading-dimension stride into stride one);
* :func:`strip_mine` — split one loop into a block loop and an element
  loop (the building block of blocking, section 4.2).

Legality here is the textbook conservative test on the affine subscript
level: a transformation is refused when the nest carries a
loop-carried dependence involving a write (uniformly generated groups
whose members differ by a constant, non-uniform read/write pairs to the
same array, or indirect writes).  Reordering a nest with only
loop-independent dependences is always safe.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..errors import CompilerError
from .affine import Affine, var
from .locality import linearize
from .loopnest import Array, ArrayRef, Loop, LoopNest


def _carries_write_dependence(
    nest: LoopNest, arrays: Dict[str, Array]
) -> bool:
    """Conservative test: does any write participate in a (possibly)
    loop-carried dependence?"""
    offsets = []
    for ref in nest.body:
        if ref.indirect is not None:
            if ref.is_write:
                return True  # indirect writes: give up
            offsets.append(None)
        else:
            offsets.append(linearize(ref, arrays[ref.array]))
    n = len(nest.body)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = nest.body[i], nest.body[j]
            if a.array != b.array or not (a.is_write or b.is_write):
                continue
            oa, ob = offsets[i], offsets[j]
            if oa is None or ob is None:
                return True
            if oa.drop_const() != ob.drop_const():
                return True  # non-uniform pair: direction unknown
            if oa.const != ob.const:
                return True  # uniformly generated, carried dependence
    return False


def interchange(
    nest: LoopNest,
    order: Sequence[str],
    arrays: Dict[str, Array],
) -> LoopNest:
    """Permute the loops of a nest into ``order`` (outermost first).

    Raises :class:`CompilerError` when the permutation is malformed or
    the conservative legality test fails.  ``pre``/``post`` references
    pin their loop level, so nests carrying them cannot be interchanged.
    """
    nest = nest.expanded()  # legality reasoning needs pure loop indices
    current = [loop.index for loop in nest.loops]
    if sorted(order) != sorted(current):
        raise CompilerError(
            f"interchange order {list(order)} is not a permutation of "
            f"{current}"
        )
    if nest.pre or nest.post:
        raise CompilerError(
            "cannot interchange a nest with pre/post references"
        )
    if list(order) != current and _carries_write_dependence(nest, arrays):
        raise CompilerError(
            f"nest {nest.name!r} carries a write dependence: interchange "
            f"refused"
        )
    by_name = {loop.index: loop for loop in nest.loops}
    return LoopNest(
        loops=tuple(by_name[name] for name in order),
        body=nest.body,
        has_call=nest.has_call,
        name=f"{nest.name}-interchanged" if nest.name else "interchanged",
    )


def strip_mine(
    nest: LoopNest,
    index: str,
    block: int,
    arrays: Dict[str, Array],
    outer_suffix: str = "_blk",
) -> LoopNest:
    """Split loop ``index`` into a block loop and an element loop.

    ``DO i = 0, N-1`` becomes ``DO i_blk = 0, N/B-1 / DO i = 0, B-1``
    with every subscript rewritten via ``i := i_blk * B + i``.  The trip
    count must be a multiple of ``block`` (no remainder loop is
    generated).  Strip-mining never changes the order of *body*
    references, so it is always legal; combined with loop reordering it
    yields blocking.  ``pre``/``post`` references stay attached to the
    around-the-innermost-loop position, so mining the innermost loop
    replicates them once per block — exactly what blocking does to an
    accumulator (``reg = Y(j1)`` re-executed per block).
    """
    nest = nest.expanded()  # substitution needs pure loop indices
    position = next(
        (k for k, loop in enumerate(nest.loops) if loop.index == index), None
    )
    if position is None:
        raise CompilerError(f"no loop {index!r} in nest {nest.name!r}")
    loop = nest.loops[position]
    if loop.step != 1:
        raise CompilerError("strip-mining non-unit-step loops is unsupported")
    trips = loop.trip_count
    if block < 1 or trips % block != 0:
        raise CompilerError(
            f"block {block} does not tile the {trips}-trip loop {index!r}"
        )
    outer_name = index + outer_suffix
    if any(l.index == outer_name for l in nest.loops):
        raise CompilerError(f"loop name {outer_name!r} already in use")

    replacement = var(outer_name) * block + var(index) + loop.lower
    outer = Loop(outer_name, 0, trips // block, opaque=loop.opaque)
    inner = Loop(index, 0, block)

    def rewrite(ref: ArrayRef) -> ArrayRef:
        return ArrayRef(
            array=ref.array,
            subscripts=tuple(
                s.substitute(index, replacement) for s in ref.subscripts
            ),
            is_write=ref.is_write,
            indirect=ref.indirect,
            temporal=ref.temporal,
            spatial=ref.spatial,
            parametric_stride=ref.parametric_stride,
        )

    loops = (
        nest.loops[:position] + (outer, inner) + nest.loops[position + 1 :]
    )
    inner_most = loops[-1].index
    pre = tuple(rewrite(r) for r in nest.pre)
    post = tuple(rewrite(r) for r in nest.post)
    if any(
        inner_most in s.variables for r in pre + post for s in r.subscripts
    ):
        raise CompilerError(
            "strip-mining would move pre/post references inside the "
            "innermost loop"
        )
    return LoopNest(
        loops=loops,
        body=tuple(rewrite(r) for r in nest.body),
        pre=pre,
        post=post,
        has_call=nest.has_call,
        name=f"{nest.name}-B{block}" if nest.name else f"stripmined-B{block}",
    )
