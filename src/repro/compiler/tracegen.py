"""Instrumented trace generation ("source-code tracing", paper §3.1).

The paper instruments every array reference of the benchmark source with
a call ``trace(reference, read/write, temporal, spatial)`` and draws an
inter-reference time gap from the measured figure 4b distribution at
trace-extraction time, recording it *in* the trace so repeated
simulations are identical.

:func:`generate_trace` is the equivalent for our loop-nest IR: it
"executes" each nest (vectorised with numpy over the whole iteration
space), attaches the tags computed by :mod:`repro.compiler.locality`, and
draws the gaps once with a seeded generator.  Per outer iteration the
emitted order is ``pre`` references, then ``inner_trip`` repetitions of
the body, then ``post`` references — exactly the order the instrumented
Fortran would call ``trace(...)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompilerError
from ..memtrace.timing import FIG4B_DISTRIBUTION, GapDistribution
from ..memtrace.trace import Trace, TraceBuilder
from .locality import NestTags, RefTags, analyze_program
from .loopnest import Array, ArrayRef, Loop, LoopNest, Program, ScalarBlock

#: Guard against accidentally huge iteration spaces (pure-Python cache
#: simulation of the result would never finish anyway).
MAX_REFERENCES = 50_000_000

Columns = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _broadcast_env(loops: Sequence[Loop]) -> Dict[str, np.ndarray]:
    """Loop-index value arrays shaped for mutual broadcasting.

    Loop ``j`` (0-based position among ``k`` loops) gets shape
    ``(1,...,t_j,...,1)`` so that any affine combination broadcasts to the
    full iteration space with the outermost loop varying slowest.
    """
    k = len(loops)
    env: Dict[str, np.ndarray] = {}
    for position, loop in enumerate(loops):
        shape = [1] * k
        shape[position] = loop.trip_count
        env[loop.index] = loop.values().reshape(shape)
    return env


def _ref_addresses(
    ref: ArrayRef,
    array: Array,
    base: int,
    env: Dict[str, np.ndarray],
    space_shape: Tuple[int, ...],
) -> np.ndarray:
    """Flat (iteration-ordered) byte addresses issued by one reference."""
    if ref.indirect is not None:
        table = ref.indirect_table()
        position = ref.subscripts[0].evaluate(env)
        position = np.broadcast_to(np.asarray(position), space_shape)
        if position.size and (
            position.min() < 0 or position.max() >= len(table)
        ):
            raise CompilerError(
                f"indirect reference to {ref.array!r}: table position out "
                f"of range [0, {len(table)})"
            )
        offsets = table[position.ravel()]
    else:
        offsets = 0
        for subscript, stride in zip(ref.subscripts, array.strides()):
            offsets = offsets + subscript.evaluate(env) * stride
        offsets = np.broadcast_to(np.asarray(offsets), space_shape).ravel()
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.size and (
        offsets.min() < 0 or offsets.max() >= array.elements
    ):
        raise CompilerError(
            f"reference to {ref.array!r} indexes outside the array "
            f"(offsets in [{offsets.min()}, {offsets.max()}], "
            f"array has {array.elements} elements)"
        )
    return base + array.element_size * offsets


def _level_addresses(
    refs: Sequence[ArrayRef],
    loops: Sequence[Loop],
    arrays: Dict[str, Array],
    bases: Dict[str, int],
) -> np.ndarray:
    """Addresses of references at one loop level: shape ``(iters, n_refs)``."""
    iterations = 1
    for loop in loops:
        iterations *= loop.trip_count
    if not refs:
        return np.empty((iterations, 0), dtype=np.int64)
    env = _broadcast_env(loops)
    space_shape = tuple(loop.trip_count for loop in loops) or (1,)
    if not loops:
        env = {}
    per_ref = [
        _ref_addresses(r, arrays[r.array], bases[r.array], env, space_shape)
        for r in refs
    ]
    return np.stack(per_ref, axis=1)


def _row_pattern(
    nest: LoopNest, tags: NestTags, ref_id_base: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Static per-outer-iteration pattern of flags and instruction ids.

    One outer iteration emits ``pre + inner_trip * body + post``
    references; this returns the (is_write, temporal, spatial, ref_id)
    values of that whole row.
    """
    inner_trip = nest.innermost.trip_count
    n_pre, n_body = len(nest.pre), len(nest.body)

    def build(values: List) -> np.ndarray:
        pre = values[:n_pre]
        body = values[n_pre : n_pre + n_body]
        post = values[n_pre + n_body :]
        return np.array(pre + body * inner_trip + post)

    refs = list(nest.pre) + list(nest.body) + list(nest.post)
    all_tags = list(tags.pre) + list(tags.body) + list(tags.post)
    is_write = build([r.is_write for r in refs]).astype(bool)
    temporal = build([t.temporal for t in all_tags]).astype(bool)
    spatial = build([t.spatial for t in all_tags]).astype(bool)
    ref_ids = build([ref_id_base + i for i in range(len(refs))]).astype(np.int64)
    return is_write, temporal, spatial, ref_ids


def generate_nest_columns(
    nest: LoopNest,
    arrays: Dict[str, Array],
    bases: Dict[str, int],
    tags: NestTags,
    ref_id_base: int,
) -> Columns:
    """Trace columns (addr, write, temporal, spatial, ref_id) for one nest.

    Addresses are always generated from the alias-expanded nest — the
    hardware sees concrete addresses regardless of how the source spelt
    the subscript; only the *tags* depend on whether the analysis could
    expand.
    """
    nest = nest.expanded()
    if nest.references > MAX_REFERENCES:
        raise CompilerError(
            f"nest {nest.name!r} would generate {nest.references} "
            f"references (limit {MAX_REFERENCES})"
        )
    if (
        len(tags.pre) != len(nest.pre)
        or len(tags.body) != len(nest.body)
        or len(tags.post) != len(nest.post)
    ):
        raise CompilerError("tag shape does not match nest")

    outer = nest.outer_iterations
    inner_trip = nest.innermost.trip_count

    body_addr = _level_addresses(nest.body, nest.loops, arrays, bases)
    body_addr = body_addr.reshape(outer, inner_trip * len(nest.body))
    pre_addr = _level_addresses(nest.pre, nest.outer_loops, arrays, bases)
    post_addr = _level_addresses(nest.post, nest.outer_loops, arrays, bases)
    pre_addr = pre_addr.reshape(outer, len(nest.pre))
    post_addr = post_addr.reshape(outer, len(nest.post))

    addresses = np.concatenate([pre_addr, body_addr, post_addr], axis=1).reshape(-1)
    is_write, temporal, spatial, ref_ids = _row_pattern(nest, tags, ref_id_base)
    return (
        addresses,
        np.tile(is_write, outer),
        np.tile(temporal, outer),
        np.tile(spatial, outer),
        np.tile(ref_ids, outer),
    )


def generate_block_columns(block: ScalarBlock, ref_id_base: int) -> Columns:
    """Trace columns for an untagged scalar block."""
    n = block.count
    addresses = np.resize(np.asarray(block.addresses, dtype=np.int64), n)
    is_write = np.zeros(n, dtype=bool)
    if block.write_every > 0:
        is_write[block.write_every - 1 :: block.write_every] = True
    flags = np.zeros(n, dtype=bool)
    ref_ids = np.resize(
        np.arange(ref_id_base, ref_id_base + len(block.addresses), dtype=np.int64),
        n,
    )
    return addresses, is_write, flags, flags.copy(), ref_ids


def generate_trace(
    program: Program,
    seed: int = 0,
    gap_distribution: GapDistribution = FIG4B_DISTRIBUTION,
    name: Optional[str] = None,
    spatial_threshold: int = 4,
    expand_subscripts: bool = False,
    policy: str = "elementary",
) -> Trace:
    """Execute a program and emit its instrumented memory trace.

    Tags come from :func:`repro.compiler.locality.analyze_program`; gaps
    are drawn once for the whole trace with a generator seeded by ``seed``
    (the paper records gaps in the trace so repeated simulations of the
    same trace are deterministic — so are we, given the same seed).
    """
    bases = program.layout()
    tag_map = analyze_program(
        program, spatial_threshold,
        expand_subscripts=expand_subscripts, policy=policy,
    )

    # Static instruction identities: assigned per program item *before*
    # the repetition loop, so that the same source reference keeps the
    # same ref_id across repetitions (figure 1b needs this).
    id_base: Dict[int, int] = {}
    cursor = 0
    for position, item in enumerate(program.items):
        id_base[position] = cursor
        if isinstance(item, LoopNest):
            cursor += len(item.all_refs)
        else:
            cursor += len(item.addresses)

    builder = TraceBuilder(name=name or program.name)
    for _ in range(program.repeat):
        for position, item in enumerate(program.items):
            if isinstance(item, LoopNest):
                cols = generate_nest_columns(
                    item,
                    program.arrays,
                    bases,
                    tag_map[position],
                    id_base[position],
                )
            else:
                cols = generate_block_columns(item, id_base[position])
            addresses, is_write, temporal, spatial, ref_ids = cols
            builder.append_block(
                addresses, is_write, temporal, spatial,
                np.ones(len(addresses), dtype=np.int64), ref_ids,
            )
    trace = builder.freeze()
    rng = np.random.default_rng(seed)
    gaps = gap_distribution.sample(len(trace), rng)
    return Trace(
        trace.addresses,
        trace.is_write,
        trace.temporal,
        trace.spatial,
        gaps,
        name=trace.name,
        ref_ids=trace.ref_ids,
    )
