"""Loop-nest compiler substrate: IR, §2.3 locality analysis, trace generation.

This package stands in for the paper's Sage++ source-instrumentation
pass: benchmarks are written as loop nests over Fortran-layout arrays,
the locality analysis derives the one-bit temporal/spatial tags by
subscript analysis, and the trace generator emits the instrumented
reference stream the cache simulators consume.
"""

from .affine import Affine, var
from .locality import (
    SPATIAL_THRESHOLD_ELEMENTS,
    RefTags,
    analyze_nest,
    analyze_program,
    linearize,
)
from .loopnest import (
    Array,
    ArrayRef,
    Loop,
    LoopNest,
    Program,
    ScalarBlock,
    nest,
)
from .pretty import format_nest, format_program, format_ref
from .tracegen import generate_trace
from .transforms import interchange, strip_mine

__all__ = [
    "interchange",
    "strip_mine",
    "format_nest",
    "format_program",
    "format_ref",
    "Affine",
    "var",
    "Array",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "Program",
    "ScalarBlock",
    "nest",
    "RefTags",
    "SPATIAL_THRESHOLD_ELEMENTS",
    "analyze_nest",
    "analyze_program",
    "linearize",
    "generate_trace",
]
