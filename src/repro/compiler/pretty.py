"""Fortran-style pretty-printing of loop nests.

Renders a :class:`~repro.compiler.loopnest.LoopNest` (optionally with
its derived tags) the way the paper prints its figure 5 listing, so
``python -m repro tags`` and the documentation can show models in a
shape a Fortran programmer recognises.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .locality import NestTags
from .loopnest import ArrayRef, LoopNest, Program, ScalarBlock

INDENT = "   "


def format_ref(ref: ArrayRef) -> str:
    """``A(j2,j1)`` — subscripts in source order, aliases as written."""
    subscripts = ",".join(str(s) for s in ref.subscripts)
    rendered = f"{ref.array}({subscripts})"
    if ref.indirect is not None:
        rendered = f"{ref.array}(tbl[{subscripts}])"
    return rendered


def _tag_suffix(tag) -> str:
    return f"  ! T={int(tag.temporal)} S={int(tag.spatial)}"


def format_nest(nest: LoopNest, tags: Optional[NestTags] = None) -> str:
    """A DO-loop listing with one line per reference.

    With ``tags`` supplied, every reference line carries the derived
    temporal/spatial bits as a trailing comment — the same information
    the paper's ``call trace(...)`` instrumentation encodes.
    """
    lines: List[str] = []
    if nest.aliases:
        rendered = ", ".join(f"{k} = {v}" for k, v in nest.aliases)
        lines.append(f"! aliases: {rendered}")

    def emit_ref(ref: ArrayRef, depth: int, tag=None) -> None:
        kind = "store" if ref.is_write else "load "
        line = f"{INDENT * depth}{kind} {format_ref(ref)}"
        if tag is not None:
            line += _tag_suffix(tag)
        lines.append(line)

    depth = 0
    for loop in nest.loops[:-1]:
        upper = loop.upper - 1
        suffix = f",{loop.step}" if loop.step != 1 else ""
        call = "   ! opaque (call boundary)" if loop.opaque else ""
        lines.append(
            f"{INDENT * depth}DO {loop.index} = {loop.lower},{upper}{suffix}{call}"
        )
        depth += 1

    for k, ref in enumerate(nest.pre):
        emit_ref(ref, depth, tags.pre[k] if tags else None)

    inner = nest.innermost
    suffix = f",{inner.step}" if inner.step != 1 else ""
    call = "   ! opaque (call boundary)" if inner.opaque else ""
    lines.append(
        f"{INDENT * depth}DO {inner.index} = {inner.lower},{inner.upper - 1}"
        f"{suffix}{call}"
    )
    if nest.has_call:
        lines.append(f"{INDENT * (depth + 1)}CALL ...   ! tags cleared")
    for k, ref in enumerate(nest.body):
        emit_ref(ref, depth + 1, tags.body[k] if tags else None)
    lines.append(f"{INDENT * depth}ENDDO")

    for k, ref in enumerate(nest.post):
        emit_ref(ref, depth, tags.post[k] if tags else None)

    for _ in range(depth):
        depth -= 1
        lines.append(f"{INDENT * depth}ENDDO")
    return "\n".join(lines)


def format_program(
    program: Program, tags: Optional[Dict[int, NestTags]] = None
) -> str:
    """Every nest of a program, with headers and scalar-block notes."""
    parts: List[str] = []
    for position, item in enumerate(program.items):
        if isinstance(item, ScalarBlock):
            parts.append(
                f"! {item.name or 'scalar block'}: {item.count} untagged "
                f"scalar references"
            )
            continue
        header = f"! nest {item.name or position}"
        nest_tags = tags.get(position) if tags else None
        parts.append(header + "\n" + format_nest(item, nest_tags))
    return "\n\n".join(parts)
