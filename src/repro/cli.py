"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figures
    List every reproducible figure and extension study.
run FIGURE [...]
    Regenerate one or more figures (``run all`` for the whole battery).
simulate
    Run a benchmark trace through one or all cache configurations.
tags
    Show the section 2.3 locality tags of a benchmark's loop nests.
trace
    Generate a benchmark trace (legacy flags), or via subcommands:
    ``trace import`` converts an external address trace into a chunked
    v2 store, ``trace info`` describes any trace artefact, ``trace
    convert`` migrates between the v1 archive and the v2 store.
attribute
    Per-instruction miss attribution of a benchmark (top offenders).
analyze
    Run the telemetry probe battery over a benchmark or on-disk trace:
    windowed miss-rate series, 3C miss classification, bounce-back
    saves vs pollution, virtual-line fetch utilization and the
    compiler-tag audit.  ``--out DIR`` writes JSON/JSONL/CSV artifacts.
cache
    Inspect, clear or LRU-prune the on-disk result cache.
serve
    Run the async simulation service: an HTTP/JSON API over a two-tier
    concurrent result store with request coalescing and backpressure
    (``--smoke`` runs the end-to-end self-test and exits).
bench
    Measure simulation throughput per engine, streaming overhead,
    telemetry probe overhead (writes BENCH_sim.json) and the serving
    layer's closed-loop latency/throughput (writes BENCH_serve.json).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from .core.spec import CacheSpec
from .errors import ConfigError, ReproError
from .harness.parallel import ResultCache, cache_enabled, default_cache_dir
from .harness.runner import run_sweep
from .harness.tables import format_table
from .memtrace.io import save_trace
from .metrics.attribution import attribute as attribute_misses
from .presets import SPECS, build_config
from .workloads.registry import BENCHMARK_ORDER, build_program, get_trace

#: Cache configurations selectable from the command line.  The name is
#: kept for backwards compatibility; the values are now declarative
#: :class:`~repro.core.spec.CacheSpec` objects from :mod:`repro.presets`.
CONFIGS: Dict[str, CacheSpec] = SPECS

SCALES = ("tiny", "test", "paper")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweeps (0 = all cores; "
        "default: $REPRO_JOBS or 1)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    from .sim.engine import ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="simulation engine (default: $REPRO_ENGINE or auto; "
        "'auto' walks the ladder top-down — the native compiled "
        "kernels when provably equivalent and a C toolchain or "
        "prebuilt library exists, else the fast batch kernels when "
        "provably equivalent, else the reference loop)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Software Assistance for Data Caches' "
        "(Temam & Drach, HPCA 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures and studies")

    run = sub.add_parser("run", help="regenerate figures")
    run.add_argument("names", nargs="+", help="figure ids, or 'all'")
    run.add_argument("--scale", choices=SCALES, default="paper")
    run.add_argument("--chart", action="store_true",
                     help="render ASCII bar charts instead of tables")
    _add_jobs_argument(run)
    _add_engine_argument(run)

    sim = sub.add_parser("simulate", help="simulate a benchmark")
    sim.add_argument("--benchmark", choices=BENCHMARK_ORDER)
    sim.add_argument(
        "--trace", metavar="PATH", dest="trace_path",
        help="simulate an on-disk trace instead of a benchmark (v2 "
        "store directories stream out-of-core; v1 .npz archives load "
        "whole)",
    )
    sim.add_argument(
        "--config", default="all", choices=list(CONFIGS) + ["all"]
    )
    sim.add_argument("--scale", choices=SCALES, default="paper")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--cross-validate",
        action="store_true",
        help="run both engines on every eligible cell and assert "
        "identical counters (configs with no fast path just run the "
        "reference engine)",
    )
    sim.add_argument(
        "--explain-engine",
        action="store_true",
        help="print, per configuration, which engine 'auto' (or "
        "--engine) selects and the structured refusal (code: message) "
        "when the fast engine cannot run; no simulation happens",
    )
    sim.add_argument(
        "--workers", default=None, metavar="N",
        help="run streamed simulation through the multi-process "
        "pipelined engine with N workers ('auto' or 0 = one per CPU; "
        "default $REPRO_PIPELINE_WORKERS); configs the pipeline cannot "
        "run fall back to the serial path",
    )
    _add_jobs_argument(sim)
    _add_engine_argument(sim)

    bench = sub.add_parser(
        "bench", help="measure simulation throughput per engine"
    )
    bench.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="trace length (default 400000)",
    )
    bench.add_argument("--repeat", type=int, default=3, metavar="K",
                       help="timing repetitions, best taken (default 3)")
    bench.add_argument(
        "--out", default="BENCH_sim.json",
        help="output JSON path (default BENCH_sim.json; '-' = stdout only)",
    )
    bench.add_argument(
        "--scenario",
        choices=(
            "engine", "soft", "native", "stream", "pipeline", "probes",
            "serve", "all",
        ),
        default="engine",
        help="'engine' = per-engine throughput, 'soft' = assisted-path "
        "kernels on the blocked-loop workload, 'native' = the compiled "
        "C tier vs fast and reference, 'stream' = streamed vs "
        "in-memory throughput and peak memory, 'pipeline' = "
        "multi-process pipelined streaming vs serial, 'probes' = "
        "telemetry overhead with probes off and on, 'serve' = "
        "closed-loop latency/throughput of the repro-serve HTTP API "
        "(writes BENCH_serve.json, not BENCH_sim.json), 'all' = every "
        "simulation scenario (serve has its own CI job and is NOT part "
        "of 'all') (default engine)",
    )
    bench.add_argument(
        "--min-soft-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) if any soft-family fast speedup falls below "
        "X or the soft refusal matrix has entries (CI guard; implies "
        "the soft scenario ran)",
    )
    bench.add_argument(
        "--min-assoc-soft-speedup", type=float, default=None, metavar="X",
        help="separate floor for the set-associative soft configs "
        "(default: the --min-soft-speedup floor)",
    )
    bench.add_argument(
        "--min-native-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) if any native-battery native-over-fast "
        "speedup falls below X (CI guard; implies the native scenario "
        "ran; degrades to a completed-run check when no C compiler is "
        "present)",
    )
    bench.add_argument(
        "--min-pipeline-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) if the 2-worker pipelined speedup over "
        "serial falls below X (CI guard; implies the pipeline scenario "
        "ran; skipped automatically on machines with fewer than 2 CPUs)",
    )
    bench.add_argument(
        "--stream-refs", type=int, default=None, metavar="N",
        help="streamed trace length for the stream scenario "
        "(default 10000000)",
    )
    bench.add_argument(
        "--chunk-refs", type=int, default=1 << 18, metavar="N",
        help="store chunk size for the stream scenario (default 262144)",
    )
    bench.add_argument(
        "--serve-requests", type=int, default=None, metavar="N",
        help="total closed-loop requests for the serve scenario "
        "(default 2000)",
    )
    bench.add_argument(
        "--serve-concurrency", type=int, default=None, metavar="C",
        help="closed-loop client connections for the serve scenario "
        "(default 8)",
    )
    bench.add_argument(
        "--serve-hit-ratio", type=float, default=None, metavar="R",
        help="fraction of serve-scenario requests aimed at warm cells "
        "(default 0.95 — the millions-of-users regime)",
    )
    bench.add_argument(
        "--min-serve-hit-rps", type=float, default=None, metavar="X",
        help="fail (exit 1) if serve-scenario cache-hit throughput "
        "falls below X requests/s (CI guard; implies the serve "
        "scenario ran; degrades to a completed-run check on 1-CPU "
        "machines, where server and clients share a core)",
    )
    bench.add_argument(
        "--max-serve-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) if the serve-scenario hit-path p99 latency "
        "exceeds MS milliseconds (skipped on 1-CPU machines)",
    )
    bench.add_argument(
        "--serve-out", default="BENCH_serve.json",
        help="serve-scenario output JSON path (default BENCH_serve.json; "
        "'-' = stdout only)",
    )

    tags = sub.add_parser("tags", help="show compiler locality tags")
    tags.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    tags.add_argument("--scale", choices=SCALES, default="paper")

    trace = sub.add_parser(
        "trace", help="generate, import, convert or inspect traces"
    )
    # Legacy generate mode: `repro trace --benchmark MV --out mv.npz`.
    trace.add_argument("--benchmark", choices=BENCHMARK_ORDER)
    trace.add_argument("--scale", choices=SCALES, default="paper")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="output path (.npz, or a v2 store "
                       "directory with --store)")
    trace.add_argument(
        "--store", action="store_true",
        help="write the generated trace as a chunked v2 store directory "
        "instead of a v1 .npz archive",
    )
    tsub = trace.add_subparsers(dest="trace_cmd")

    timport = tsub.add_parser(
        "import", help="convert an external address trace into a v2 store"
    )
    timport.add_argument("source", help="external trace file (din text or "
                         "packed binary records)")
    timport.add_argument("--out", required=True, dest="import_out",
                         help="output store directory")
    timport.add_argument(
        "--format", choices=("din", "bin"), default=None,
        help="input format (default: guessed from the extension)",
    )
    timport.add_argument("--name", default=None,
                         help="trace name (default: source stem)")
    timport.add_argument("--chunk-refs", type=int, default=None, metavar="N")
    timport.add_argument(
        "--gap", type=int, default=1, metavar="G",
        help="constant inter-reference gap recorded per reference "
        "(external traces carry no timing; default 1)",
    )
    timport.add_argument(
        "--annotate", action="store_true",
        help="reconstruct approximate one-bit temporal/spatial tags "
        "from the dynamic stream (bounded-state heuristic)",
    )
    timport.add_argument(
        "--compression", choices=("zlib", "none"), default="zlib"
    )

    tinfo = tsub.add_parser("info", help="describe a trace artefact")
    tinfo.add_argument("path", help="a v2 store directory or a v1 .npz")

    tconvert = tsub.add_parser(
        "convert",
        help="migrate a v1 .npz archive to a chunked v2 store (or, with "
        "a .npz output path, a store back to v1)",
    )
    tconvert.add_argument("source")
    tconvert.add_argument("--out", required=True, dest="convert_out")
    tconvert.add_argument("--chunk-refs", type=int, default=None, metavar="N")
    tconvert.add_argument(
        "--compression", choices=("zlib", "none"), default="zlib"
    )

    attr = sub.add_parser("attribute", help="per-instruction miss profile")
    attr.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    attr.add_argument("--config", default="standard", choices=list(CONFIGS))
    attr.add_argument("--scale", choices=SCALES, default="paper")
    attr.add_argument("--top", type=int, default=10)

    analyze = sub.add_parser(
        "analyze", help="telemetry probes: windows, 3C, assists, tag audit"
    )
    analyze.add_argument("--benchmark", choices=BENCHMARK_ORDER)
    analyze.add_argument(
        "--trace", metavar="PATH", dest="trace_path",
        help="analyze an on-disk trace instead of a benchmark (v2 store "
        "directories stream out-of-core; .npz archives load whole; "
        "external .din/.bin traces are ingested on the fly with "
        "annotated tags)",
    )
    analyze.add_argument(
        "--config", default="soft", choices=list(CONFIGS)
    )
    analyze.add_argument("--scale", choices=SCALES, default="paper")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="time-series window width in references (default 4096)",
    )
    analyze.add_argument(
        "--attribution", action="store_true",
        help="include the per-instruction profile (needs trace ref ids)",
    )
    analyze.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write report.json / telemetry.jsonl / windows.csv",
    )
    _add_engine_argument(analyze)

    serve = sub.add_parser(
        "serve",
        help="run the async simulation service (HTTP/JSON API over a "
        "two-tier concurrent result store; see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8714,
        help="listen port (0 = ephemeral; default 8714)",
    )
    serve.add_argument(
        "--sets", type=int, default=None, metavar="N",
        help="hot-tier sets (default 512)",
    )
    serve.add_argument(
        "--ways", type=int, default=None, metavar="K",
        help="hot-tier associativity (default 8; sets x ways results "
        "stay resident in memory, lossily)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="max concurrently-admitted distinct simulations before "
        "submissions are rejected with 429 (default 64)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="simulation worker processes (0 = all cores; default: "
        "$REPRO_JOBS or 1)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="durable result-cache directory (default: the shared "
        "result cache, $REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="memory-only server: no durable tier (hot tier only)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="end-to-end self-test: start on an ephemeral port with a "
        "throwaway cache, submit a small sweep twice, assert the "
        "second pass is all hot/disk hits with zero re-simulations, "
        "then exit 0/1",
    )
    _add_engine_argument(serve)

    cache = sub.add_parser(
        "cache", help="inspect, clear or prune the result cache"
    )
    cache.add_argument(
        "action", nargs="?", default="info", choices=("info", "clear", "prune")
    )
    cache.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="prune target: LRU-evict entries until the cache fits "
        "(plain bytes or a K/M/G suffix, e.g. 512M)",
    )

    verify = sub.add_parser(
        "verify",
        help="validate the engine ladder (parity battery; --oracle adds "
        "the closed-form analytic leg, see docs/performance.md)",
    )
    verify.add_argument(
        "--oracle", action="store_true",
        help="check every engine tier against the analytic miss-rate/"
        "AMAT oracle on synthetic distributions (exact on scan/blocked, "
        "concentration bounds on IRM)",
    )
    verify.add_argument(
        "--dist", action="append", default=None, metavar="NAME",
        help="oracle distribution(s) to run (irm, scan, blocked; "
        "default: all; repeatable)",
    )
    verify.add_argument(
        "--config", action="append", default=None, metavar="PRESET",
        help="preset(s) to verify (default: standard + soft; repeatable)",
    )
    verify.add_argument(
        "--refs", type=int, default=60000, metavar="N",
        help="approximate trace length per distribution (default 60000)",
    )
    verify.add_argument(
        "--seed", type=int, default=0, help="IRM generation seed"
    )
    verify.add_argument(
        "--tol", type=float, default=1.0, metavar="F",
        help="scale factor on the statistical (IRM) tolerance bands; "
        "deterministic distributions stay exact (default 1.0)",
    )
    verify.add_argument(
        "--json", default=None, metavar="PATH", dest="json_out",
        help="also write the per-tier rows as JSON",
    )

    corpus = sub.add_parser(
        "corpus",
        help="manage fingerprinted trace corpora (see docs/corpus.md)",
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)
    clist = csub.add_parser("list", help="list a corpus manifest")
    clist.add_argument("manifest", help="corpus manifest (.json or .toml)")
    clist.add_argument("--cache-dir", default=None, metavar="DIR")

    cadd = csub.add_parser(
        "add", help="register an external trace or synthetic generator"
    )
    cadd.add_argument("manifest")
    cadd.add_argument("name", help="entry name")
    cadd.add_argument(
        "--trace", default=None, metavar="PATH",
        help="external din/bin trace file to register",
    )
    cadd.add_argument(
        "--format", default=None, choices=("din", "bin"),
        help="external trace format (default: sniff from extension)",
    )
    cadd.add_argument(
        "--gap", type=int, default=1,
        help="constant inter-reference gap recorded on ingest (default 1)",
    )
    cadd.add_argument(
        "--annotate", action="store_true",
        help="run the locality tag annotator on ingest",
    )
    cadd.add_argument(
        "--generator", default=None, metavar="KIND",
        help="synthetic generator from the oracle registry "
        "(irm, scan, blocked) instead of --trace",
    )
    cadd.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="generator parameter (integer; repeatable), e.g. "
        "--param n_lines=512 --param refs=60000",
    )

    cverify = csub.add_parser(
        "verify", help="recompute fingerprints and audit fetched stores"
    )
    cverify.add_argument("manifest")
    cverify.add_argument("names", nargs="*", help="entries (default: all)")
    cverify.add_argument("--cache-dir", default=None, metavar="DIR")

    cfetch = csub.add_parser(
        "fetch", help="materialise entries into chunked stores"
    )
    cfetch.add_argument("manifest")
    cfetch.add_argument("names", nargs="*", help="entries (default: all)")
    cfetch.add_argument("--cache-dir", default=None, metavar="DIR")

    crun = csub.add_parser(
        "run", help="sweep every corpus entry against presets; "
        "per-trace rows + geomean summary"
    )
    crun.add_argument("manifest")
    crun.add_argument("presets", nargs="+", help="preset configuration names")
    crun.add_argument("--cache-dir", default=None, metavar="DIR")
    crun.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache (always re-simulate)",
    )
    crun.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the summary payload as JSON (default: stdout only)",
    )
    _add_jobs_argument(crun)
    _add_engine_argument(crun)
    return parser


def _cmd_figures() -> int:
    from .experiments import ALL_FIGURES, EXTENSION_STUDIES

    print("Paper figures:")
    for name in ALL_FIGURES:
        print(f"  {name}")
    print("Extension studies:")
    for name in EXTENSION_STUDIES:
        print(f"  {name}")
    return 0


def _cmd_run(
    names: List[str], scale: str, chart: bool = False,
    jobs: Optional[int] = None, engine: Optional[str] = None,
) -> int:
    from .experiments import ALL_FIGURES, EXTENSION_STUDIES

    if jobs is not None:
        # Figure drivers have heterogeneous signatures; the environment
        # knob reaches every run_sweep call they make.
        os.environ["REPRO_JOBS"] = str(jobs)
    if engine is not None:
        # Same channel as --jobs: every simulate/run_sweep call the
        # figure drivers make honours $REPRO_ENGINE.
        os.environ["REPRO_ENGINE"] = engine
    battery = {**ALL_FIGURES, **EXTENSION_STUDIES}
    wanted = list(battery) if names == ["all"] else names
    unknown = [n for n in wanted if n not in battery]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in wanted:
        result = battery[name](scale=scale)
        print(result.chart() if chart else result.table())
        print()
    return 0


def _cmd_simulate(
    benchmark: Optional[str], config: str, scale: str, seed: int,
    jobs: Optional[int] = None, engine: Optional[str] = None,
    cross_validate: bool = False, trace_path: Optional[str] = None,
    explain_engine: bool = False, workers: Optional[str] = None,
) -> int:
    if explain_engine:
        return _explain_engine(config, engine)
    if (benchmark is None) == (trace_path is None):
        print(
            "error: simulate needs exactly one of --benchmark or --trace",
            file=sys.stderr,
        )
        return 2
    if trace_path is not None:
        from .stream import open_trace

        trace = open_trace(trace_path)
        label_trace = trace.name
        origin = f"streamed from {trace_path}"
    else:
        trace = get_trace(benchmark, scale, seed)
        label_trace = benchmark
        origin = f"scale={scale}"
    chosen = dict(CONFIGS) if config == "all" else {config: CONFIGS[config]}
    if cross_validate:
        from .sim.engine import cross_validate as check_engines
        from .sim.engine import fast_refusal

        check_trace = trace.load() if trace_path is not None else trace
        validated = 0
        for label, spec in chosen.items():
            if fast_refusal(spec.build()) is None:
                check_engines(spec.build, check_trace)
                validated += 1
        print(
            f"cross-validated {validated}/{len(chosen)} configs: "
            "fast and reference engines agree on every counter"
        )
    if workers is not None:
        # Pipelined runs bypass the sweep result cache: each config is
        # simulated directly through the facade, counters identical to
        # the serial path.  Configs the pipeline refuses run serially.
        from .api import simulate as simulate_one
        from .stream.pipeline import pipeline_refusal, resolve_workers

        n_workers = resolve_workers(workers)
        rows = {}
        pipelined = []
        for label, spec in chosen.items():
            model = spec.build()
            can_pipeline = (
                n_workers > 1 and pipeline_refusal(model) is None
            )
            r = simulate_one(
                model, trace, engine=engine,
                pipeline=n_workers if can_pipeline else None,
            )
            if can_pipeline:
                pipelined.append(label)
            rows[label] = {
                "AMAT": r.amat,
                "miss %": 100 * r.miss_ratio,
                "words/ref": r.traffic,
                "main hit %": 100 * r.main_hit_fraction,
            }
        print(
            f"{label_trace} ({len(trace)} references, {origin}; "
            f"{n_workers} pipeline workers: "
            f"{', '.join(pipelined) if pipelined else 'no eligible config'})"
        )
        print(
            format_table(["AMAT", "miss %", "words/ref", "main hit %"], rows)
        )
        return 0
    sweep = run_sweep({label_trace: trace}, chosen, jobs=jobs, engine=engine)
    rows = {}
    for label, r in sweep.results[label_trace].items():
        rows[label] = {
            "AMAT": r.amat,
            "miss %": 100 * r.miss_ratio,
            "words/ref": r.traffic,
            "main hit %": 100 * r.main_hit_fraction,
        }
    print(f"{label_trace} ({len(trace)} references, {origin})")
    print(format_table(["AMAT", "miss %", "words/ref", "main hit %"], rows))
    return 0


def _explain_engine(config: str, engine: Optional[str]) -> int:
    """Report engine selection per configuration without simulating.

    Walks the full ladder for each configuration: native (compiled C
    kernels, conditional on a toolchain or prebuilt library), fast
    (numpy batch kernels), reference.  With an explicit ``fast`` or
    ``native`` knob a refusing configuration is an error, exactly as
    ``simulate`` would raise.
    """
    from .errors import ConfigError
    from .sim.engine import fast_refusal, native_refusal, resolve_engine

    knob = resolve_engine(engine)
    chosen = dict(CONFIGS) if config == "all" else {config: CONFIGS[config]}
    width = max(len(label) for label in chosen)
    print(f"engine knob: {knob}")
    errors = False
    for label, spec in chosen.items():
        refusal = fast_refusal(spec.build())
        native = native_refusal(spec.build())
        if knob == "reference":
            selected, detail = "reference", "forced by the engine knob"
        elif knob == "native":
            if native is None:
                selected = "native"
                detail = "compiled kernels proven equivalent and loadable"
            else:
                selected = "error"
                detail = f"refused [{native.code}]: {native.message}"
        elif knob == "fast":
            if refusal is None:
                selected, detail = "fast", "batch kernels proven equivalent"
            else:
                selected = "error"
                detail = f"refused [{refusal.code}]: {refusal.message}"
        elif native is None:
            selected = "native"
            detail = "compiled kernels proven equivalent and loadable"
        elif refusal is None:
            selected = "fast"
            detail = (
                f"batch kernels proven equivalent; native passed over "
                f"[{native.code}]"
            )
        else:
            selected = "reference"
            detail = f"[{refusal.code}] {refusal.message}"
        errors = errors or selected == "error"
        print(f"  {label:<{width}}  {selected:<9}  {detail}")
    if errors:
        raise ConfigError(
            f"engine={knob!r} cannot run every selected configuration "
            f"(see refusals above)"
        )
    return 0


def _cmd_bench(
    refs: Optional[int], repeat: int, out: str,
    scenario: str = "engine", stream_refs: Optional[int] = None,
    chunk_refs: int = 1 << 18, min_soft_speedup: Optional[float] = None,
    min_assoc_soft_speedup: Optional[float] = None,
    min_pipeline_speedup: Optional[float] = None,
    min_native_speedup: Optional[float] = None,
    serve_requests: Optional[int] = None,
    serve_concurrency: Optional[int] = None,
    serve_hit_ratio: Optional[float] = None,
    min_serve_hit_rps: Optional[float] = None,
    max_serve_p99_ms: Optional[float] = None,
    serve_out: str = "BENCH_serve.json",
) -> int:
    from .harness.bench import (
        DEFAULT_REFS,
        DEFAULT_SERVE_CONCURRENCY,
        DEFAULT_SERVE_HIT_RATIO,
        DEFAULT_SERVE_REQUESTS,
        DEFAULT_STREAM_REFS,
        format_bench,
        format_native_bench,
        format_pipeline_bench,
        format_probe_bench,
        format_serve_bench,
        format_soft_bench,
        format_stream_bench,
        native_bench_guard,
        pipeline_bench_guard,
        run_bench,
        run_native_bench,
        run_pipeline_bench,
        run_probe_bench,
        run_serve_bench,
        run_soft_bench,
        run_stream_bench,
        serve_bench_guard,
        soft_bench_guard,
        write_bench,
    )

    payload = {}
    guard_problems = []
    if scenario in ("engine", "all"):
        payload = run_bench(refs=refs or DEFAULT_REFS, repeat=repeat)
        print(format_bench(payload))
    if scenario in ("soft", "all") or min_soft_speedup is not None:
        soft_payload = run_soft_bench(
            refs=refs or DEFAULT_REFS, repeat=repeat
        )
        print(format_soft_bench(soft_payload))
        payload["soft"] = soft_payload
        if min_soft_speedup is not None:
            guard_problems = soft_bench_guard(
                soft_payload, min_soft_speedup,
                assoc_min_speedup=min_assoc_soft_speedup,
            )
    if scenario in ("native", "all") or min_native_speedup is not None:
        native_payload = run_native_bench(
            refs=refs or DEFAULT_REFS, repeat=repeat
        )
        print(format_native_bench(native_payload))
        payload["native"] = native_payload
        if min_native_speedup is not None:
            guard_problems.extend(
                native_bench_guard(native_payload, min_native_speedup)
            )
    if scenario in ("stream", "all"):
        stream_payload = run_stream_bench(
            refs=stream_refs or DEFAULT_STREAM_REFS,
            chunk_refs=chunk_refs,
            repeat=repeat,
        )
        print(format_stream_bench(stream_payload))
        payload["stream"] = stream_payload
    if scenario in ("pipeline", "all") or min_pipeline_speedup is not None:
        pipeline_payload = run_pipeline_bench(
            refs=stream_refs or DEFAULT_STREAM_REFS,
            chunk_refs=chunk_refs,
            repeat=repeat,
        )
        print(format_pipeline_bench(pipeline_payload))
        payload["pipeline"] = pipeline_payload
        if min_pipeline_speedup is not None:
            guard_problems.extend(
                pipeline_bench_guard(pipeline_payload, min_pipeline_speedup)
            )
    if scenario in ("probes", "all"):
        probe_payload = run_probe_bench(
            refs=refs or DEFAULT_REFS, repeat=repeat
        )
        print(format_probe_bench(probe_payload))
        payload["probes"] = probe_payload
    if scenario == "serve" or min_serve_hit_rps is not None:
        serve_payload = run_serve_bench(
            requests=serve_requests or DEFAULT_SERVE_REQUESTS,
            concurrency=serve_concurrency or DEFAULT_SERVE_CONCURRENCY,
            hit_ratio=(
                serve_hit_ratio
                if serve_hit_ratio is not None
                else DEFAULT_SERVE_HIT_RATIO
            ),
        )
        print(format_serve_bench(serve_payload))
        if min_serve_hit_rps is not None or max_serve_p99_ms is not None:
            guard_problems.extend(
                serve_bench_guard(
                    serve_payload,
                    min_hit_rps=min_serve_hit_rps,
                    max_p99_ms=max_serve_p99_ms,
                )
            )
        if serve_out != "-":
            write_bench({"serve": serve_payload}, serve_out)
            print(f"wrote {serve_out}")
    if out != "-" and payload:
        # payload is empty when only the serve scenario ran (it has its
        # own artifact file); don't clobber BENCH_sim.json with {}.
        write_bench(payload, out)
        print(f"wrote {out}")
    if guard_problems:
        for problem in guard_problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DEFAULT_QUEUE_DEPTH, DEFAULT_SETS, DEFAULT_WAYS
    from .serve import ServeConfig, run_server

    if args.smoke:
        from .serve.smoke import main as smoke_main

        return smoke_main()
    if args.no_cache and args.cache_dir:
        print("error: --no-cache conflicts with --cache-dir", file=sys.stderr)
        return 2
    cache = "auto"
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = args.cache_dir
    config = ServeConfig(
        host=args.host,
        port=args.port,
        sets=args.sets if args.sets is not None else DEFAULT_SETS,
        ways=args.ways if args.ways is not None else DEFAULT_WAYS,
        queue_depth=(
            args.queue_depth
            if args.queue_depth is not None
            else DEFAULT_QUEUE_DEPTH
        ),
        workers=args.workers,
        engine=args.engine,
        cache=cache,
    )
    run_server(config)
    return 0


def _cmd_tags(benchmark: str, scale: str) -> int:
    from .compiler import analyze_program
    from .compiler.pretty import format_program

    program = build_program(benchmark, scale)
    print(format_program(program, analyze_program(program)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_cmd == "import":
        return _cmd_trace_import(args)
    if args.trace_cmd == "info":
        return _cmd_trace_info(args.path)
    if args.trace_cmd == "convert":
        return _cmd_trace_convert(args)
    # Legacy generate mode.
    if args.benchmark is None or args.out is None:
        print(
            "error: trace generation needs --benchmark and --out "
            "(or use a subcommand: import / info / convert)",
            file=sys.stderr,
        )
        return 2
    trace = get_trace(args.benchmark, args.scale, args.seed)
    if args.store:
        from .memtrace.store import TraceStore

        store = TraceStore.save(trace, args.out)
        print(
            f"wrote {len(trace)} references to {args.out} "
            f"({store.n_chunks} chunks)"
        )
    else:
        save_trace(trace, args.out)
        print(f"wrote {len(trace)} references to {args.out}")
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    from .memtrace.store import DEFAULT_CHUNK_REFS
    from .stream.ingest import ingest_trace

    store = ingest_trace(
        args.source,
        args.import_out,
        fmt=args.format,
        name=args.name,
        chunk_refs=args.chunk_refs or DEFAULT_CHUNK_REFS,
        gap=args.gap,
        annotate=args.annotate,
        compression=args.compression,
    )
    tagged = " (tags annotated)" if args.annotate else ""
    print(
        f"imported {len(store)} references from {args.source} into "
        f"{args.import_out} ({store.n_chunks} chunks){tagged}"
    )
    return 0


def _cmd_trace_info(path: str) -> int:
    from .memtrace.io import load_trace
    from .memtrace.store import TraceStore, is_store

    if is_store(path):
        for key, value in TraceStore.open(path).describe().items():
            print(f"{key}: {value}")
        return 0
    trace = load_trace(path)
    print(f"path: {path}")
    print("format: npz v1")
    print(f"name: {trace.name}")
    print(f"refs: {len(trace)}")
    print(f"has_ref_ids: {trace.ref_ids is not None}")
    print(f"fingerprint: {trace.fingerprint()}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from .memtrace.io import load_trace
    from .memtrace.store import DEFAULT_CHUNK_REFS, TraceStore, is_store

    if is_store(args.source):
        trace = TraceStore.open(args.source).load()
        save_trace(trace, args.convert_out)
        print(
            f"converted store {args.source} to v1 archive "
            f"{args.convert_out} ({len(trace)} references)"
        )
        return 0
    trace = load_trace(args.source)
    store = TraceStore.save(
        trace,
        args.convert_out,
        chunk_refs=args.chunk_refs or DEFAULT_CHUNK_REFS,
        compression=args.compression,
    )
    print(
        f"converted {args.source} to v2 store {args.convert_out} "
        f"({len(trace)} references, {store.n_chunks} chunks)"
    )
    return 0


def _parse_size(text: str) -> int:
    """Parse a byte size with optional K/M/G(iB) suffix."""
    cleaned = text.strip().upper().removesuffix("IB").removesuffix("B")
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)]
            factor = mult
            break
    try:
        value = int(float(cleaned) * factor)
    except ValueError:
        raise ReproError(f"cannot parse size {text!r}") from None
    if value < 0:
        raise ReproError(f"size must be >= 0: {text!r}")
    return value


def _cmd_attribute(benchmark: str, config: str, scale: str, top: int) -> int:
    trace = get_trace(benchmark, scale)
    result = attribute_misses(build_config(config), trace)
    print(
        f"{benchmark} on {config}: {result.total_misses} misses from "
        f"{result.static_instructions} static load/stores; "
        f"{result.instructions_covering(0.9)} cover 90%"
    )
    rows = {
        f"ref_id={p.ref_id}": {
            "refs": p.refs,
            "misses": p.misses,
            "miss %": 100 * p.miss_ratio,
            "cycles": p.cycles,
        }
        for p in result.top(top)
    }
    print(format_table(["refs", "misses", "miss %", "cycles"], rows))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .telemetry import DEFAULT_WINDOW_REFS, TelemetrySpec, analyze

    if (args.benchmark is None) == (args.trace_path is None):
        print(
            "error: analyze needs exactly one of --benchmark or --trace",
            file=sys.stderr,
        )
        return 2
    if args.trace_path is not None:
        trace = _open_analyze_trace(args.trace_path)
    else:
        trace = get_trace(args.benchmark, args.scale, args.seed)
    spec = TelemetrySpec(
        window_refs=args.window or DEFAULT_WINDOW_REFS,
        attribution=args.attribution,
    )
    report = analyze(
        CONFIGS[args.config], trace, telemetry=spec, engine=args.engine
    )
    print(report.format())
    if args.out is not None:
        from .telemetry import write_report

        paths = write_report(report, args.out)
        print(f"wrote {', '.join(str(p) for p in paths.values())}")
    return 0


def _open_analyze_trace(path: str):
    """Open any trace artefact for analysis.

    Store directories and ``.npz`` archives go through
    :func:`~repro.stream.open_trace`; external ``.din``/``.bin`` traces
    are ingested into a temporary chunked store (with reconstructed
    locality tags, so the tag audit has compiler bits to grade).
    """
    from .memtrace.store import is_store
    from .stream import open_trace

    suffix = os.path.splitext(path)[1].lower()
    if is_store(path) or suffix not in (".din", ".bin"):
        return open_trace(path)
    import tempfile

    from .stream.ingest import ingest_trace

    out = tempfile.mkdtemp(prefix="repro-analyze-")
    ingest_trace(path, out, annotate=True)
    return open_trace(out)


def _cmd_cache(action: str, max_bytes: Optional[str] = None) -> int:
    cache = ResultCache(default_cache_dir())
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if action == "prune":
        if max_bytes is None:
            print("error: cache prune requires --max-bytes", file=sys.stderr)
            return 2
        limit = _parse_size(max_bytes)
        removed, removed_bytes = cache.prune(limit)
        print(
            f"pruned {removed} cached results ({removed_bytes} bytes) "
            f"from {cache.root}; {len(cache)} entries "
            f"({cache.size_bytes()} bytes) remain"
        )
        return 0
    state = "enabled" if cache_enabled() else "disabled (REPRO_CACHE=0)"
    print(
        f"result cache: {cache.root} ({len(cache)} entries, "
        f"{cache.size_bytes()} bytes, {state})"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.oracle:
        from .metrics.analytic import (
            battery_distributions,
            format_oracle_rows,
            make_distribution,
            verify_oracle,
        )

        if args.dist:
            battery = battery_distributions(refs=args.refs, seed=args.seed)
            unknown = [d for d in args.dist if d not in battery]
            if unknown:
                # Route through make_distribution for the canonical
                # unknown-name error (lists the registry).
                make_distribution(unknown[0])
            dists = {name: battery[name] for name in args.dist}
        else:
            dists = None
        rows = verify_oracle(
            configs=args.config,
            dists=dists,
            refs=args.refs,
            seed=args.seed,
            tol=args.tol,
        )
        print(format_oracle_rows(rows))
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(rows, handle, indent=2)
                handle.write("\n")
        return 0 if all(row["ok"] for row in rows) else 1

    # Parity battery: cross-validate every applicable engine pair on a
    # deterministic workload, per preset.
    from .metrics.analytic import SequentialScanDistribution
    from .presets import config_names, spec
    from .sim.engine import EngineMismatchError, cross_validate, fast_refusal

    names = args.config or list(config_names())
    trace = SequentialScanDistribution(
        array_bytes=32 * 1024, passes=3
    ).trace()
    failures = 0
    for name in names:
        cell = spec(name)
        refusal = fast_refusal(cell.build())
        if refusal is not None:
            print(f"  {name:>16} skipped: [{refusal.code}] {refusal}")
            continue
        try:
            cross_validate(cell.build, trace)
        except EngineMismatchError as error:
            failures += 1
            print(f"  {name:>16} FAIL: {error}")
        else:
            print(f"  {name:>16} ok: engines agree on {trace.name}")
    print(
        "parity: all validated configurations agree"
        if failures == 0
        else f"parity: {failures} configuration(s) FAILED"
    )
    return 0 if failures == 0 else 1


def _parse_generator_params(pairs: List[str]) -> dict:
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"--param needs KEY=VALUE, got {pair!r}"
            )
        try:
            params[key] = int(value)
        except ValueError:
            raise ConfigError(
                f"--param {key} must be an integer, got {value!r}"
            ) from None
    return params


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .stream.corpus import Corpus, run_corpus

    command = args.corpus_command
    if command == "add":
        from pathlib import Path

        if Path(args.manifest).is_file():
            corpus = Corpus.load(args.manifest)
        else:
            corpus = Corpus(args.manifest)
        if (args.trace is None) == (args.generator is None):
            raise ConfigError(
                "corpus add needs exactly one of --trace or --generator"
            )
        if args.trace is not None:
            entry = corpus.add_external(
                args.name, args.trace, fmt=args.format,
                gap=args.gap, annotate=args.annotate,
            )
        else:
            entry = corpus.add_synthetic(
                args.name, args.generator,
                **_parse_generator_params(args.param),
            )
        corpus.save()
        print(
            f"registered {entry.kind} entry {entry.name!r} "
            f"(sha256 {entry.sha256[:12]}) in {corpus.path}"
        )
        return 0

    corpus = Corpus.load(args.manifest)
    if command == "list":
        from .stream import is_store

        print(f"corpus {corpus.name!r} ({len(corpus.entries)} entries)")
        for name in sorted(corpus.entries):
            entry = corpus.entries[name]
            sha = (entry.sha256 or "?" * 12)[:12]
            dest = corpus.store_dir(name, args.cache_dir)
            state = "fetched" if is_store(dest) else "lazy"
            detail = (
                entry.payload.get("path")
                if entry.kind == "external"
                else entry.payload.get("generator")
            )
            print(f"  {name:>16} {entry.kind:<9} {sha} {state:<7} {detail}")
        return 0
    if command == "verify":
        rows = corpus.verify(args.names or None, cache_root=args.cache_dir)
        for row in rows:
            state = "ok" if row["ok"] else "FAIL"
            fetched = "fetched" if row["fetched"] else "lazy"
            print(f"  {row['name']:>16} {row['kind']:<9} {fetched:<7} {state}")
            for problem in row["problems"]:
                print(f"      {problem}")
        return 0 if all(row["ok"] for row in rows) else 1
    if command == "fetch":
        for name in args.names or sorted(corpus.entries):
            store = corpus.fetch(name, cache_root=args.cache_dir)
            print(
                f"  {name:>16} -> {store.path} ({len(store)} refs, "
                f"{store.n_chunks} chunks)"
            )
        return 0
    if command == "run":
        from .harness.bench import format_corpus_summary, write_bench

        payload = run_corpus(
            corpus,
            args.presets,
            jobs=args.jobs,
            engine=args.engine,
            cache=False if args.no_cache else "auto",
            cache_root=args.cache_dir,
        )
        print(format_corpus_summary(payload))
        if args.out:
            write_bench(payload, args.out)
            print(f"wrote {args.out}")
        return 0
    raise AssertionError(f"unhandled corpus command {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures()
        if args.command == "run":
            return _cmd_run(
                args.names, args.scale, args.chart, args.jobs, args.engine
            )
        if args.command == "simulate":
            return _cmd_simulate(
                args.benchmark, args.config, args.scale, args.seed,
                args.jobs, args.engine, args.cross_validate,
                args.trace_path, args.explain_engine, args.workers,
            )
        if args.command == "bench":
            return _cmd_bench(
                args.refs, args.repeat, args.out,
                args.scenario, args.stream_refs, args.chunk_refs,
                args.min_soft_speedup, args.min_assoc_soft_speedup,
                args.min_pipeline_speedup, args.min_native_speedup,
                args.serve_requests, args.serve_concurrency,
                args.serve_hit_ratio, args.min_serve_hit_rps,
                args.max_serve_p99_ms, args.serve_out,
            )
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "tags":
            return _cmd_tags(args.benchmark, args.scale)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "attribute":
            return _cmd_attribute(
                args.benchmark, args.config, args.scale, args.top
            )
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "cache":
            return _cmd_cache(args.action, args.max_bytes)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "corpus":
            return _cmd_corpus(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    except ReproError as error:
        # Stable machine-readable code first (the same codes the serve
        # API returns in its JSON error bodies), never a bare traceback.
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager that quit early (e.g. `| head`).
        return 0
