"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figures
    List every reproducible figure and extension study.
run FIGURE [...]
    Regenerate one or more figures (``run all`` for the whole battery).
simulate
    Run a benchmark trace through one or all cache configurations.
tags
    Show the section 2.3 locality tags of a benchmark's loop nests.
trace
    Generate a benchmark trace and save it to an ``.npz`` file.
attribute
    Per-instruction miss attribution of a benchmark (top offenders).
cache
    Inspect or clear the on-disk result cache.
bench
    Measure simulation throughput per engine (writes BENCH_sim.json).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .core.spec import CacheSpec
from .errors import ReproError
from .harness.parallel import ResultCache, cache_enabled, default_cache_dir
from .harness.runner import run_sweep
from .harness.tables import format_table
from .memtrace.io import save_trace
from .metrics.attribution import attribute as attribute_misses
from .presets import SPECS, build_config
from .workloads.registry import BENCHMARK_ORDER, build_program, get_trace

#: Cache configurations selectable from the command line.  The name is
#: kept for backwards compatibility; the values are now declarative
#: :class:`~repro.core.spec.CacheSpec` objects from :mod:`repro.presets`.
CONFIGS: Dict[str, CacheSpec] = SPECS

SCALES = ("tiny", "test", "paper")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweeps (0 = all cores; "
        "default: $REPRO_JOBS or 1)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    from .sim.engine import ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="simulation engine (default: $REPRO_ENGINE or auto; "
        "'auto' uses the fast batch kernels whenever they are provably "
        "equivalent to the reference loop)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Software Assistance for Data Caches' "
        "(Temam & Drach, HPCA 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures and studies")

    run = sub.add_parser("run", help="regenerate figures")
    run.add_argument("names", nargs="+", help="figure ids, or 'all'")
    run.add_argument("--scale", choices=SCALES, default="paper")
    run.add_argument("--chart", action="store_true",
                     help="render ASCII bar charts instead of tables")
    _add_jobs_argument(run)
    _add_engine_argument(run)

    sim = sub.add_parser("simulate", help="simulate a benchmark")
    sim.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    sim.add_argument(
        "--config", default="all", choices=list(CONFIGS) + ["all"]
    )
    sim.add_argument("--scale", choices=SCALES, default="paper")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--cross-validate",
        action="store_true",
        help="run both engines on every eligible cell and assert "
        "identical counters (configs with no fast path just run the "
        "reference engine)",
    )
    _add_jobs_argument(sim)
    _add_engine_argument(sim)

    bench = sub.add_parser(
        "bench", help="measure simulation throughput per engine"
    )
    bench.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="trace length (default 400000)",
    )
    bench.add_argument("--repeat", type=int, default=3, metavar="K",
                       help="timing repetitions, best taken (default 3)")
    bench.add_argument(
        "--out", default="BENCH_sim.json",
        help="output JSON path (default BENCH_sim.json; '-' = stdout only)",
    )

    tags = sub.add_parser("tags", help="show compiler locality tags")
    tags.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    tags.add_argument("--scale", choices=SCALES, default="paper")

    trace = sub.add_parser("trace", help="generate and save a trace")
    trace.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    trace.add_argument("--scale", choices=SCALES, default="paper")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True, help="output .npz path")

    attr = sub.add_parser("attribute", help="per-instruction miss profile")
    attr.add_argument("--benchmark", required=True, choices=BENCHMARK_ORDER)
    attr.add_argument("--config", default="standard", choices=list(CONFIGS))
    attr.add_argument("--scale", choices=SCALES, default="paper")
    attr.add_argument("--top", type=int, default=10)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "action", nargs="?", default="info", choices=("info", "clear")
    )
    return parser


def _cmd_figures() -> int:
    from .experiments import ALL_FIGURES, EXTENSION_STUDIES

    print("Paper figures:")
    for name in ALL_FIGURES:
        print(f"  {name}")
    print("Extension studies:")
    for name in EXTENSION_STUDIES:
        print(f"  {name}")
    return 0


def _cmd_run(
    names: List[str], scale: str, chart: bool = False,
    jobs: Optional[int] = None, engine: Optional[str] = None,
) -> int:
    from .experiments import ALL_FIGURES, EXTENSION_STUDIES

    if jobs is not None:
        # Figure drivers have heterogeneous signatures; the environment
        # knob reaches every run_sweep call they make.
        os.environ["REPRO_JOBS"] = str(jobs)
    if engine is not None:
        # Same channel as --jobs: every simulate/run_sweep call the
        # figure drivers make honours $REPRO_ENGINE.
        os.environ["REPRO_ENGINE"] = engine
    battery = {**ALL_FIGURES, **EXTENSION_STUDIES}
    wanted = list(battery) if names == ["all"] else names
    unknown = [n for n in wanted if n not in battery]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in wanted:
        result = battery[name](scale=scale)
        print(result.chart() if chart else result.table())
        print()
    return 0


def _cmd_simulate(
    benchmark: str, config: str, scale: str, seed: int,
    jobs: Optional[int] = None, engine: Optional[str] = None,
    cross_validate: bool = False,
) -> int:
    trace = get_trace(benchmark, scale, seed)
    chosen = dict(CONFIGS) if config == "all" else {config: CONFIGS[config]}
    if cross_validate:
        from .sim.engine import cross_validate as check_engines
        from .sim.engine import fast_refusal

        validated = 0
        for label, spec in chosen.items():
            if fast_refusal(spec.build()) is None:
                check_engines(spec.build, trace)
                validated += 1
        print(
            f"cross-validated {validated}/{len(chosen)} configs: "
            "fast and reference engines agree on every counter"
        )
    sweep = run_sweep({benchmark: trace}, chosen, jobs=jobs, engine=engine)
    rows = {}
    for label, r in sweep.results[benchmark].items():
        rows[label] = {
            "AMAT": r.amat,
            "miss %": 100 * r.miss_ratio,
            "words/ref": r.traffic,
            "main hit %": 100 * r.main_hit_fraction,
        }
    print(f"{benchmark} ({len(trace)} references, scale={scale})")
    print(format_table(["AMAT", "miss %", "words/ref", "main hit %"], rows))
    return 0


def _cmd_bench(refs: Optional[int], repeat: int, out: str) -> int:
    from .harness.bench import DEFAULT_REFS, format_bench, run_bench, write_bench

    payload = run_bench(refs=refs or DEFAULT_REFS, repeat=repeat)
    print(format_bench(payload))
    if out != "-":
        write_bench(payload, out)
        print(f"wrote {out}")
    return 0


def _cmd_tags(benchmark: str, scale: str) -> int:
    from .compiler import analyze_program
    from .compiler.pretty import format_program

    program = build_program(benchmark, scale)
    print(format_program(program, analyze_program(program)))
    return 0


def _cmd_trace(benchmark: str, scale: str, seed: int, out: str) -> int:
    trace = get_trace(benchmark, scale, seed)
    save_trace(trace, out)
    print(f"wrote {len(trace)} references to {out}")
    return 0


def _cmd_attribute(benchmark: str, config: str, scale: str, top: int) -> int:
    trace = get_trace(benchmark, scale)
    result = attribute_misses(build_config(config), trace)
    print(
        f"{benchmark} on {config}: {result.total_misses} misses from "
        f"{result.static_instructions} static load/stores; "
        f"{result.instructions_covering(0.9)} cover 90%"
    )
    rows = {
        f"ref_id={p.ref_id}": {
            "refs": p.refs,
            "misses": p.misses,
            "miss %": 100 * p.miss_ratio,
            "cycles": p.cycles,
        }
        for p in result.top(top)
    }
    print(format_table(["refs", "misses", "miss %", "cycles"], rows))
    return 0


def _cmd_cache(action: str) -> int:
    cache = ResultCache(default_cache_dir())
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    state = "enabled" if cache_enabled() else "disabled (REPRO_CACHE=0)"
    print(f"result cache: {cache.root} ({len(cache)} entries, {state})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures()
        if args.command == "run":
            return _cmd_run(
                args.names, args.scale, args.chart, args.jobs, args.engine
            )
        if args.command == "simulate":
            return _cmd_simulate(
                args.benchmark, args.config, args.scale, args.seed,
                args.jobs, args.engine, args.cross_validate,
            )
        if args.command == "bench":
            return _cmd_bench(args.refs, args.repeat, args.out)
        if args.command == "tags":
            return _cmd_tags(args.benchmark, args.scale)
        if args.command == "trace":
            return _cmd_trace(args.benchmark, args.scale, args.seed, args.out)
        if args.command == "attribute":
            return _cmd_attribute(
                args.benchmark, args.config, args.scale, args.top
            )
        if args.command == "cache":
            return _cmd_cache(args.action)
        raise AssertionError(f"unhandled command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager that quit early (e.g. `| head`).
        return 0
