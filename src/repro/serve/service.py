"""The asynchronous simulation service behind ``repro serve``.

:class:`SimulationService` owns the two-tier result store, an in-flight
table that coalesces duplicate requests, a bounded admission queue
providing backpressure, and a process worker pool (the same
``simulate_cell`` work unit the sweep engine ships to its pool).  The
HTTP layer (:mod:`repro.serve.http`) is a thin JSON adapter over it; the
service itself is transport-agnostic and directly testable.

Request lifecycle for one cell::

    resolve  -> (trace, spec, engine) -> content-addressed key
    lookup   -> hot tier (no disk, no locks beyond one set mutex)
             -> disk tier (read-through, re-admitted to hot)
    coalesce -> an identical cell already simulating?  await the same
                task: N concurrent requests, exactly ONE simulation
    admit    -> in-flight table full?  QueueFullError (HTTP 429) for
                external submissions; internal batch (sweep) cells wait
    simulate -> process pool via run_in_executor; publish disk-then-hot

Everything that mutates service state runs on the event-loop thread;
the store tiers are additionally thread-safe in their own right.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import secrets
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.spec import CacheSpec
from ..errors import ConfigError, ReproError
from ..harness.parallel import (
    ResultCache,
    cache_enabled,
    resolve_jobs,
    result_to_payload,
    simulate_cell,
)
from ..sim.engine import ENGINES, resolve_engine
from ..sim.result import SimResult
from .store import DEFAULT_SETS, DEFAULT_WAYS, HotResultStore, TieredResultStore

#: Default bound on concurrently-admitted distinct simulations; beyond
#: it, external submissions are rejected (429) rather than queued.
DEFAULT_QUEUE_DEPTH = 64

#: Jobs retained for /status //result after completion.
MAX_RETAINED_JOBS = 256

#: Per-request latency samples retained for the /metrics percentiles.
LATENCY_WINDOW = 8192

_SCALES = ("tiny", "test", "paper")


class QueueFullError(ReproError):
    """The bounded submission queue is full (backpressure; HTTP 429)."""

    code = "queue-full"


class JobNotDoneError(ReproError):
    """A job's result was requested before it finished (HTTP 409)."""

    code = "job-running"


class UnknownJobError(ReproError):
    """No such job id (HTTP 404)."""

    code = "unknown-job"


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 <= q <= 100)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one server instance (all also CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8714
    #: hot-tier geometry (sets x ways resident results).
    sets: int = DEFAULT_SETS
    ways: int = DEFAULT_WAYS
    #: bound on concurrently-admitted distinct simulations.
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    #: simulation worker processes (None = $REPRO_JOBS or 1; 0 = CPUs).
    workers: Union[int, str, None] = None
    #: default engine for cells that do not pin one.
    engine: Optional[str] = None
    #: durable tier: "auto" (default store unless $REPRO_CACHE disables),
    #: a directory path, or None/False for a memory-only server.
    cache: Union[str, None, bool] = "auto"


@dataclass
class ServeMetrics:
    """Per-request serving counters, exported verbatim by /metrics."""

    requests: Dict[str, int] = field(default_factory=dict)
    served: Dict[str, int] = field(
        default_factory=lambda: {
            "hot": 0, "disk": 0, "simulated": 0, "coalesced": 0,
        }
    )
    simulations: int = 0
    coalesced: int = 0
    rejected: int = 0
    errors: int = 0
    latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    def count_request(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def latency_summary(self) -> Dict[str, float]:
        sample = list(self.latencies_ms)
        return {
            "count": len(sample),
            "p50_ms": round(percentile(sample, 50), 3),
            "p90_ms": round(percentile(sample, 90), 3),
            "p99_ms": round(percentile(sample, 99), 3),
            "max_ms": round(max(sample), 3) if sample else 0.0,
        }


@dataclass
class Job:
    """One asynchronous sweep submission."""

    id: str
    total: int
    cells: List[Optional[Dict[str, Any]]]
    done: int = 0
    status: str = "running"
    error: Optional[Dict[str, str]] = None
    created_s: float = field(default_factory=time.time)

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job": self.id,
            "status": self.status,
            "total": self.total,
            "done": self.done,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class _Cell:
    """A resolved submission: concrete trace + spec + engine + key."""

    __slots__ = ("trace", "spec", "engine", "key", "trace_label")

    def __init__(self, trace, spec, engine, key, trace_label):
        self.trace = trace
        self.spec = spec
        self.engine = engine
        self.key = key
        self.trace_label = trace_label


class SimulationService:
    """Transport-agnostic core of ``repro serve``."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config if config is not None else ServeConfig()
        self.engine = resolve_engine(self.config.engine)
        disk = self._open_disk(self.config.cache)
        self.store = TieredResultStore(
            HotResultStore(sets=self.config.sets, ways=self.config.ways),
            disk,
        )
        self.metrics = ServeMetrics()
        self.started_monotonic = time.monotonic()
        self._inflight: Dict[str, asyncio.Task] = {}
        self._slot_freed: Optional[asyncio.Condition] = None
        self._pool = None
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._job_counter = itertools.count(1)
        #: resolved trace cache: token -> (trace object, fingerprint).
        self._traces: Dict[str, Tuple[Any, str]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _open_disk(cache) -> Optional[ResultCache]:
        if cache is None or cache is False:
            return None
        if isinstance(cache, ResultCache):
            return cache
        if cache == "auto":
            return ResultCache() if cache_enabled() else None
        return ResultCache(cache)

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=resolve_jobs(self.config.workers)
            )
        return self._pool

    def _condition(self) -> asyncio.Condition:
        # Created lazily so the Condition binds the running loop.
        if self._slot_freed is None:
            self._slot_freed = asyncio.Condition()
        return self._slot_freed

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Request resolution (everything raises ConfigError with a stable
    # machine-readable .code on bad input)
    # ------------------------------------------------------------------
    def resolve_cell(self, payload: Mapping[str, Any]) -> _Cell:
        """Validate one submission and bind it to concrete objects."""
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"submission must be a JSON object, got {type(payload).__name__}"
            )
        trace, trace_label, trace_fp = self._resolve_trace(payload.get("trace"))
        spec = self._resolve_config(payload.get("config"))
        engine = payload.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {engine!r}; known: {list(ENGINES)}"
            )
        engine = engine if engine is not None else self.engine
        key = ResultCache.key(trace_fp, spec.fingerprint(), engine)
        return _Cell(trace, spec, engine, key, trace_label)

    def _resolve_trace(self, ref) -> Tuple[Any, str, str]:
        if not isinstance(ref, Mapping):
            raise ConfigError(
                "submission needs a 'trace' object: "
                '{"benchmark": NAME, "scale": S, "seed": N} or {"path": P}'
            )
        token = json.dumps(dict(ref), sort_keys=True)
        cached = self._traces.get(token)
        if cached is not None:
            trace, fingerprint = cached
            return trace, self._trace_label(ref), fingerprint
        if "benchmark" in ref:
            from ..workloads.registry import BENCHMARK_ORDER, get_trace

            name = ref["benchmark"]
            if name not in BENCHMARK_ORDER:
                raise ConfigError(
                    f"unknown benchmark {name!r}; known: {list(BENCHMARK_ORDER)}"
                )
            scale = ref.get("scale", "test")
            if scale not in _SCALES:
                raise ConfigError(
                    f"unknown scale {scale!r}; known: {list(_SCALES)}"
                )
            seed = ref.get("seed", 0)
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigError(f"trace seed must be an integer: {seed!r}")
            trace = get_trace(name, scale, seed)
        elif "corpus" in ref:
            from ..stream import TraceStream
            from ..stream.corpus import Corpus

            entry = ref.get("entry")
            if not isinstance(entry, str):
                raise ConfigError(
                    "corpus trace objects need an 'entry' name: "
                    '{"corpus": MANIFEST_PATH, "entry": NAME}'
                )
            corpus = Corpus.load(str(ref["corpus"]))
            trace = TraceStream.from_store(corpus.fetch(entry))
        elif "path" in ref:
            from ..stream import open_trace

            trace = open_trace(str(ref["path"]))
        else:
            raise ConfigError(
                "trace object needs 'benchmark' (+ optional scale/seed), "
                "'corpus' (+ 'entry') or 'path'"
            )
        fingerprint = trace.fingerprint()
        self._traces[token] = (trace, fingerprint)
        return trace, self._trace_label(ref), fingerprint

    @staticmethod
    def _trace_label(ref: Mapping[str, Any]) -> str:
        if "benchmark" in ref:
            scale = ref.get("scale", "test")
            seed = ref.get("seed", 0)
            return f"{ref['benchmark']}@{scale}#{seed}"
        if "corpus" in ref:
            return f"{ref['corpus']}::{ref.get('entry')}"
        return str(ref.get("path"))

    @staticmethod
    def _resolve_config(ref) -> CacheSpec:
        if isinstance(ref, str):
            from .. import presets

            return presets.spec(ref)
        if isinstance(ref, Mapping):
            return CacheSpec.from_dict(dict(ref))
        raise ConfigError(
            "submission needs a 'config': a preset name or a "
            '{"kind": ..., "params": {...}} spec object'
        )

    # ------------------------------------------------------------------
    # The serving path
    # ------------------------------------------------------------------
    async def submit(
        self, payload: Mapping[str, Any], *, wait_for_slot: bool = False
    ) -> Dict[str, Any]:
        """Serve one cell; returns the JSON-safe response payload.

        ``wait_for_slot`` selects the admission policy when the bounded
        in-flight table is full: external single submissions reject
        (:class:`QueueFullError`, HTTP 429), internal batch cells (sweep
        expansion) wait for a slot instead of bouncing their own job.
        """
        begin = time.perf_counter()
        cell = self.resolve_cell(payload)
        result, tier = self.store.get(cell.key)
        if result is None:
            task = self._inflight.get(cell.key)
            if task is not None:
                self.metrics.coalesced += 1
                tier = "coalesced"
                result = await asyncio.shield(task)
            else:
                task, tier = await self._admit(cell, wait_for_slot)
                result = await asyncio.shield(task)
        self.metrics.served[tier] += 1
        elapsed_ms = (time.perf_counter() - begin) * 1000.0
        self.metrics.latencies_ms.append(elapsed_ms)
        return {
            "key": cell.key,
            "served": tier,
            "trace": cell.trace_label,
            "config": cell.spec.label(),
            "engine": result.engine or cell.engine,
            "result": result_to_payload(result),
            "amat": result.amat,
            "miss_ratio": result.miss_ratio,
            "elapsed_ms": round(elapsed_ms, 3),
        }

    async def _admit(
        self, cell: _Cell, wait_for_slot: bool
    ) -> Tuple[asyncio.Task, str]:
        """Reserve an in-flight slot for the cell and start simulating.

        The fast path installs the in-flight entry without awaiting, so
        every later request for the same key (scheduled in the same loop
        tick or any time before completion) coalesces instead of
        double-admitting.  When a batch cell waits for a slot, another
        waiter may have admitted the same key meanwhile — re-checked
        after the wait.
        """
        while len(self._inflight) >= self.config.queue_depth:
            if not wait_for_slot:
                self.metrics.rejected += 1
                raise QueueFullError(
                    f"submission queue full "
                    f"({self.config.queue_depth} simulations in flight); "
                    f"retry later"
                )
            condition = self._condition()
            async with condition:
                await condition.wait_for(
                    lambda: len(self._inflight) < self.config.queue_depth
                )
            existing = self._inflight.get(cell.key)
            if existing is not None:  # a peer admitted it while we waited
                self.metrics.coalesced += 1
                return existing, "coalesced"
        self.metrics.simulations += 1
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._run_cell(cell))
        self._inflight[cell.key] = task
        return task, "simulated"

    async def _run_cell(self, cell: _Cell) -> SimResult:
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor(),
                simulate_cell,
                (cell.trace, cell.spec, cell.engine),
            )
            # Durable publish first, then hot admission: a hot entry is
            # always backed by a published disk entry.
            self.store.put(cell.key, result)
            return result
        finally:
            self._inflight.pop(cell.key, None)
            if self._slot_freed is not None:
                async with self._slot_freed:
                    self._slot_freed.notify_all()

    # ------------------------------------------------------------------
    # Sweeps (batch submissions become jobs)
    # ------------------------------------------------------------------
    async def submit_sweep(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Expand a sweep into cells and run them (one job).

        Body: ``{"traces": [traceref...], "configs": [configref...],
        "engine": ..., "wait": bool}``.  ``wait`` (default true) returns
        the finished grid inline; ``false`` returns the job id
        immediately for /status + /result polling.
        """
        if not isinstance(payload, Mapping):
            raise ConfigError("sweep submission must be a JSON object")
        traces = payload.get("traces")
        configs = payload.get("configs")
        if not isinstance(traces, (list, tuple)) or not traces:
            raise ConfigError("sweep needs a non-empty 'traces' array")
        if not isinstance(configs, (list, tuple)) or not configs:
            raise ConfigError("sweep needs a non-empty 'configs' array")
        engine = payload.get("engine")
        cells = [
            {"trace": trace, "config": config, "engine": engine}
            for trace in traces
            for config in configs
        ]
        # Validate eagerly so malformed sweeps fail the submission with
        # a 4xx instead of a half-run job.
        for cell in cells:
            self.resolve_cell(cell)
        job = Job(
            id=f"job-{next(self._job_counter):06d}-{secrets.token_hex(4)}",
            total=len(cells),
            cells=[None] * len(cells),
        )
        self._jobs[job.id] = job
        while len(self._jobs) > MAX_RETAINED_JOBS:
            oldest = next(iter(self._jobs))
            if self._jobs[oldest].status == "running":
                break  # never drop a live job
            self._jobs.pop(oldest)
        runner = asyncio.get_running_loop().create_task(
            self._run_job(job, cells)
        )
        if payload.get("wait", True):
            await runner
            return self.job_result(job.id)
        return job.summary()

    async def _run_job(self, job: Job, cells: List[Dict[str, Any]]) -> None:
        async def one(index: int, cell: Dict[str, Any]) -> None:
            job.cells[index] = await self.submit(cell, wait_for_slot=True)
            job.done += 1

        try:
            await asyncio.gather(
                *(one(i, cell) for i, cell in enumerate(cells))
            )
            job.status = "done"
        except ReproError as error:
            job.status = "failed"
            job.error = {"code": error.code, "message": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            job.status = "failed"
            job.error = {"code": "internal-error", "message": str(error)}

    def job_status(self, job_id: str) -> Dict[str, Any]:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job.summary()

    def job_result(self, job_id: str) -> Dict[str, Any]:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        if job.status == "running":
            raise JobNotDoneError(
                f"job {job_id} still running ({job.done}/{job.total} cells)"
            )
        payload = job.summary()
        payload["cells"] = job.cells
        return payload

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        from .. import __version__

        return {
            "status": "ok",
            "version": __version__,
            "engine": self.engine,
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "inflight": len(self._inflight),
            "queue_depth": self.config.queue_depth,
        }

    def metrics_payload(self) -> Dict[str, Any]:
        jobs_running = sum(
            1 for job in self._jobs.values() if job.status == "running"
        )
        return {
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "requests": dict(self.metrics.requests),
            "served": dict(self.metrics.served),
            "simulations": self.metrics.simulations,
            "coalesced": self.metrics.coalesced,
            "rejected": self.metrics.rejected,
            "errors": self.metrics.errors,
            "inflight": len(self._inflight),
            "queue_depth": self.config.queue_depth,
            "store": self.store.stats(),
            "latency": self.metrics.latency_summary(),
            "jobs": {"retained": len(self._jobs), "running": jobs_running},
        }
