"""End-to-end self-test: ``repro serve --smoke``.

Starts a real server on an ephemeral port with a throwaway result-cache
directory, submits a small (benchmarks x configs) sweep twice over HTTP,
and asserts the serving contract the subsystem exists for:

* pass 1 simulates every cell exactly once (no duplicates);
* pass 2 is served **entirely** from the hot/disk tiers — zero
  re-simulations (the simulation counter does not move);
* single-cell resubmission is a hot-tier hit that never touches disk.

Exit status 0 on success, 1 with a diagnostic on any violation — which
makes it a one-line CI job needing nothing but a Python and numpy.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Sequence, Tuple

from .client import ServeClient
from .http import ServerThread
from .service import ServeConfig

DEFAULT_BENCHMARKS = ("MV", "SpMV")
DEFAULT_CONFIGS = ("standard", "soft")
DEFAULT_SCALE = "tiny"


def run_smoke(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    scale: str = DEFAULT_SCALE,
) -> Tuple[bool, List[str], Dict]:
    """Run the smoke sequence; returns ``(ok, problems, summary)``."""
    problems: List[str] = []
    summary: Dict = {}
    sweep_body = {
        "traces": [{"benchmark": name, "scale": scale} for name in benchmarks],
        "configs": list(configs),
        "wait": True,
    }
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        config = ServeConfig(port=0, cache=tmp)
        with ServerThread(config) as server:
            with ServeClient(server.host, server.port) as client:
                health = client.healthz()
                if health.get("status") != "ok":
                    problems.append(f"healthz not ok: {health}")

                first = client.sweep(sweep_body)
                after_first = client.metrics()
                second = client.sweep(sweep_body)
                after_second = client.metrics()

                total = len(benchmarks) * len(configs)
                if first.get("status") != "done":
                    problems.append(f"first sweep not done: {first}")
                first_served = [c["served"] for c in first.get("cells", [])]
                if after_first["simulations"] != total:
                    problems.append(
                        f"first pass should simulate each of the {total} "
                        f"cells exactly once, simulations="
                        f"{after_first['simulations']} (served {first_served})"
                    )
                second_served = [c["served"] for c in second.get("cells", [])]
                not_cached = [
                    tier for tier in second_served
                    if tier not in ("hot", "disk")
                ]
                if not_cached:
                    problems.append(
                        f"second pass must be all hot/disk hits, "
                        f"got {second_served}"
                    )
                resimulated = (
                    after_second["simulations"] - after_first["simulations"]
                )
                if resimulated != 0:
                    problems.append(
                        f"second pass re-simulated {resimulated} cells "
                        f"(must be zero)"
                    )

                # A third touch of one cell must be a pure hot hit: the
                # disk tier's hit counter must not move.
                disk_hits_before = after_second["store"]["disk_hits"]
                single = client.submit(
                    {
                        "trace": {"benchmark": benchmarks[0], "scale": scale},
                        "config": configs[0],
                    }
                )
                final = client.metrics()
                if single.get("served") != "hot":
                    problems.append(
                        f"warm single-cell resubmission should be served "
                        f"from the hot tier, got {single.get('served')!r}"
                    )
                if final["store"]["disk_hits"] != disk_hits_before:
                    problems.append(
                        "hot-tier hit touched the disk tier "
                        f"(disk_hits {disk_hits_before} -> "
                        f"{final['store']['disk_hits']})"
                    )

                summary = {
                    "cells": total,
                    "first_pass": first_served,
                    "second_pass": second_served,
                    "simulations": final["simulations"],
                    "hot_hits": final["store"]["hot_hits"],
                    "disk_hits": final["store"]["disk_hits"],
                    "rejected": final["rejected"],
                    "errors": final["errors"],
                }
                if final["errors"]:
                    problems.append(
                        f"server recorded {final['errors']} errors"
                    )
    return not problems, problems, summary


def main(argv=None) -> int:
    """CLI entry: print a verdict, exit 0/1."""
    ok, problems, summary = run_smoke()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if ok:
        print(
            "serve smoke OK: second pass served entirely from the "
            "hot/disk tiers with zero re-simulations"
        )
        return 0
    for problem in problems:
        print(f"serve smoke FAIL: {problem}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
