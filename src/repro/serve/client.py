"""Stdlib HTTP client for ``repro serve`` (tests, bench, smoke).

A thin keep-alive JSON wrapper over :mod:`http.client`.  One
:class:`ServeClient` owns one persistent connection — exactly the shape
of a closed-loop bench client — and reconnects transparently if the
server closed the socket between requests.

:class:`ServeHTTPError` carries the server's machine-readable error
``code`` alongside the HTTP status, so callers branch on stable strings
(``queue-full``, ``config-error``...), never on message text.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError


class ServeHTTPError(ReproError):
    """A non-2xx response from the serve API."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServeClient:
    """Persistent-connection JSON client for one server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request_raw(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One request; returns ``(status, decoded body)``.

        Retries once on a stale keep-alive socket (server restarted or
        closed the connection idle); never retries a live error.
        """
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (
                ConnectionError,
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                BrokenPipeError,
            ):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        return response.status, decoded

    def request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict[str, Any]:
        """One request; raises :class:`ServeHTTPError` on non-2xx."""
        status, decoded = self.request_raw(method, path, payload)
        if status >= 300:
            error = decoded.get("error", {})
            raise ServeHTTPError(
                status,
                error.get("code", "unknown"),
                error.get("message", str(decoded)),
            )
        return decoded

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def submit(self, cell: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/submit", cell)

    def sweep(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/sweep", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/status/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/result/{job_id}")
