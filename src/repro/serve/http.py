"""Minimal asyncio HTTP/1.1 JSON layer for ``repro serve``.

Stdlib only (``asyncio.start_server`` + hand-rolled request parsing) —
the serving subsystem adds **no dependencies**.  The surface is small
and fully JSON:

=======  =================  ==========================================
method   path               behaviour
=======  =================  ==========================================
GET      /healthz           liveness + version + uptime
GET      /metrics           per-request serving counters + store stats
POST     /submit            one cell; body ``{"trace": ..., "config":
                            ..., "engine": ...}``; 200 with the result,
                            400 on bad input, 429 when the bounded
                            queue is full
POST     /sweep             traces x configs batch; ``"wait": false``
                            returns a job id for polling
GET      /status/<job>      job progress
GET      /result/<job>      finished job grid (409 while running)
=======  =================  ==========================================

Every error body is machine-readable: ``{"error": {"code": <stable
code>, "message": ...}}`` — the codes come from the
:class:`~repro.errors.ReproError` hierarchy (``config-error``,
``queue-full``, ``unknown-job``...), never a traceback.

Connections are keep-alive (HTTP/1.1 default), which matters for the
closed-loop bench clients: the hit path costs one request/response on a
warm socket, no reconnect.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import ReproError
from .service import (
    JobNotDoneError,
    QueueFullError,
    ServeConfig,
    SimulationService,
    UnknownJobError,
)

#: Request bodies beyond this are rejected with 413 (a sweep of every
#: preset x benchmark is ~2 kB; this is pure DoS hygiene).
MAX_BODY_BYTES = 8 << 20
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(
                f"request body is not valid JSON: {error}"
            ) from error

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class _BadRequest(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[_Request]:
    """Parse one request off the stream; None on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest(f"malformed request line: {line!r}") from None
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many header lines")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _BadRequest(f"bad Content-Length: {length!r}") from None
        if n > MAX_BODY_BYTES:
            raise _BadRequest(f"body too large ({n} bytes)")
        if n:
            body = await reader.readexactly(n)
    parts = urlsplit(target)
    query = {}
    if parts.query:
        for pair in parts.query.split("&"):
            name, _, value = pair.partition("=")
            query[name] = value
    return _Request(method.upper(), parts.path, query, headers, body)


def _error_payload(code: str, message: str) -> Dict[str, Any]:
    return {"error": {"code": code, "message": message}}


class ServeApp:
    """Routes HTTP requests onto a :class:`SimulationService`."""

    def __init__(self, service: SimulationService):
        self.service = service
        #: Live connection-handler tasks; cancelled at shutdown so the
        #: event loop closes without pending keep-alive readers.
        self._connections: set = set()

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as error:
                    await self._respond(
                        writer, 400,
                        _error_payload("bad-request", str(error)),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                status, payload = await self.dispatch(request)
                await self._respond(
                    writer, status, payload, keep_alive=request.keep_alive
                )
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            # Shutdown cancelled this handler.  End *normally*: the
            # 3.11 streams callback calls task.exception() on the
            # handler task, which would re-raise a cancelled state
            # into the loop's exception handler.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def aclose(self) -> None:
        """Cancel outstanding keep-alive connection handlers."""
        tasks = [t for t in self._connections if not t.done()]
        for pending in tasks:
            pending.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    async def dispatch(
        self, request: _Request
    ) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        try:
            if request.path == "/healthz":
                if request.method != "GET":
                    return self._method_not_allowed(request)
                service.metrics.count_request("healthz")
                return 200, service.health_payload()
            if request.path == "/metrics":
                if request.method != "GET":
                    return self._method_not_allowed(request)
                service.metrics.count_request("metrics")
                return 200, service.metrics_payload()
            if request.path == "/submit":
                if request.method != "POST":
                    return self._method_not_allowed(request)
                service.metrics.count_request("submit")
                return 200, await service.submit(request.json())
            if request.path == "/sweep":
                if request.method != "POST":
                    return self._method_not_allowed(request)
                service.metrics.count_request("sweep")
                return 200, await service.submit_sweep(request.json())
            if request.path.startswith("/status/"):
                if request.method != "GET":
                    return self._method_not_allowed(request)
                service.metrics.count_request("status")
                return 200, service.job_status(request.path[len("/status/"):])
            if request.path.startswith("/result/"):
                if request.method != "GET":
                    return self._method_not_allowed(request)
                service.metrics.count_request("result")
                return 200, service.job_result(request.path[len("/result/"):])
            return 404, _error_payload(
                "not-found", f"no such endpoint: {request.path}"
            )
        except _BadRequest as error:
            service.metrics.errors += 1
            return 400, _error_payload("bad-request", str(error))
        except QueueFullError as error:
            # Deliberately NOT counted in metrics.errors: rejection is
            # backpressure working as intended (it has its own counter).
            return 429, _error_payload(error.code, str(error))
        except UnknownJobError as error:
            service.metrics.errors += 1
            return 404, _error_payload(error.code, str(error))
        except JobNotDoneError as error:
            return 409, _error_payload(error.code, str(error))
        except ReproError as error:
            service.metrics.errors += 1
            return 400, _error_payload(error.code, str(error))
        except Exception as error:  # noqa: BLE001 - boundary
            service.metrics.errors += 1
            print(
                f"serve: internal error on {request.method} "
                f"{request.path}: {type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 500, _error_payload(
                "internal-error",
                f"{type(error).__name__} (details logged server-side)",
            )

    @staticmethod
    def _method_not_allowed(request: _Request) -> Tuple[int, Dict[str, Any]]:
        return 405, _error_payload(
            "method-not-allowed",
            f"{request.method} not supported on {request.path}",
        )


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
async def serve_async(
    config: Optional[ServeConfig] = None,
    service: Optional[SimulationService] = None,
    *,
    ready: Optional["asyncio.Future"] = None,
    shutdown: Optional[asyncio.Event] = None,
) -> None:
    """Bind and serve until ``shutdown`` is set (or cancelled)."""
    config = config if config is not None else ServeConfig()
    service = service if service is not None else SimulationService(config)
    app = ServeApp(service)
    server = await asyncio.start_server(
        app.handle_connection, host=config.host, port=config.port
    )
    try:
        bound = server.sockets[0].getsockname()
        if ready is not None and not ready.done():
            ready.set_result((bound[0], bound[1]))
        if shutdown is None:
            async with server:
                await server.serve_forever()
        else:
            await shutdown.wait()
    finally:
        # Close the listener, then cancel live keep-alive handlers
        # BEFORE wait_closed(): on 3.12+ wait_closed blocks until every
        # handler finishes, and idle keep-alive readers never would.
        server.close()
        await app.aclose()
        try:
            await server.wait_closed()
        except asyncio.CancelledError:
            pass
        service.close()


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Foreground entry point (``repro serve``); Ctrl-C to stop."""
    config = config if config is not None else ServeConfig()

    async def main() -> None:
        loop = asyncio.get_running_loop()
        ready: asyncio.Future = loop.create_future()

        async def announce() -> None:
            # Printed after the bind so --port 0 reports the actual
            # ephemeral port, not the configured 0.
            host, port = await ready
            print(f"repro serve: listening on http://{host}:{port}")

        announcer = loop.create_task(announce())
        try:
            await serve_async(config, ready=ready)
        finally:
            announcer.cancel()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: shutting down")


class ServerThread:
    """Run a server on a background thread (tests, bench, smoke).

    Binds an ephemeral port when ``config.port == 0``; :meth:`start`
    returns the actual ``(host, port)``.  The service object is exposed
    for white-box assertions.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        service: Optional[SimulationService] = None,
    ):
        self.config = config if config is not None else ServeConfig(port=0)
        self.service = (
            service if service is not None else SimulationService(self.config)
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"serve thread failed to bind: {self._error}"
            ) from self._error
        assert self.host is not None and self.port is not None
        return self.host, self.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # pragma: no cover - defensive
            if not self._started.is_set():
                self._error = error
                self._started.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    async def _main(self) -> None:
        self._shutdown = asyncio.Event()
        ready: asyncio.Future = asyncio.get_running_loop().create_future()

        async def announce() -> None:
            self.host, self.port = await ready
            self._started.set()

        announcer = asyncio.get_running_loop().create_task(announce())
        try:
            await serve_async(
                self.config,
                self.service,
                ready=ready,
                shutdown=self._shutdown,
            )
        finally:
            announcer.cancel()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout)
        self.service.close()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
