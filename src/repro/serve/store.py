"""The two-tier concurrent result store behind ``repro serve``.

The serving layer's design target is the millions-of-users regime: the
overwhelming majority of requests name a (trace, spec, engine) cell that
has already been simulated, so the store must answer them without
touching a simulator — and the *hot* majority of those without touching
disk.  Two tiers:

* :class:`HotResultStore` — an in-process **lossy k-way set-associative
  table** in the spirit of "Limited Associativity Makes Concurrent
  Software Caches a Breeze" (PAPERS.md): the key hashes to one of
  ``sets`` fixed-size sets, each holding at most ``ways`` entries with
  CLOCK (second-chance) eviction inside the set.  There is **no global
  lock** — each set has its own tiny mutex guarding an at-most-``ways``
  scan, so concurrent hits on different sets never contend and the
  worst case is bounded by the associativity, not the table size.
  Admission is *lossy* by design: a full set evicts; nothing is pinned;
  correctness never depends on residency because every entry is also
  published to the durable tier.

* :class:`~repro.harness.parallel.ResultCache` — the existing
  content-addressed on-disk cache (atomic ``mkstemp`` + ``rename``
  publish, sharded namespace directories), shared by every server
  process and by offline sweeps.

:class:`TieredResultStore` composes the two read-through: a miss in the
hot tier falls to disk and, on a disk hit, re-admits the entry so the
next request is served from memory.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..harness.parallel import ResultCache
from ..sim.result import SimResult

#: Default geometry: 512 sets x 8 ways = 4096 resident results.  A
#: SimResult is a few hundred bytes, so the full table is ~1-2 MB.
DEFAULT_SETS = 512
DEFAULT_WAYS = 8


class HotResultStore:
    """Lossy fixed-associativity in-process cache of finished cells.

    Keys are the result-cache hex digests (any string works); values are
    arbitrary objects (:class:`SimResult` in production).  ``get`` and
    ``put`` are thread-safe; the critical section is one set — a scan of
    at most ``ways`` entries — so there is no global hit-path lock.

    Per-set CLOCK eviction: every resident entry has a reference bit,
    set on hit (and on admission).  A full set sweeps its clock hand,
    clearing bits until it finds a clear one, and replaces that victim —
    recently-touched entries survive, cold ones go first.
    """

    def __init__(self, sets: int = DEFAULT_SETS, ways: int = DEFAULT_WAYS):
        if sets < 1 or ways < 1:
            raise ConfigError(
                f"hot store needs sets >= 1 and ways >= 1, "
                f"got sets={sets} ways={ways}"
            )
        self.n_sets = int(sets)
        self.ways = int(ways)
        #: per-set entry lists; an entry is ``[key, value, ref_bit]``.
        self._sets: List[List[list]] = [[] for _ in range(self.n_sets)]
        self._hands = [0] * self.n_sets
        self._locks = [threading.Lock() for _ in range(self.n_sets)]
        #: per-set counters [hits, misses, admissions, evictions,
        #: updates], aggregated under the owning set lock so totals are
        #: exact even under concurrent access.
        self._counts = [[0, 0, 0, 0, 0] for _ in range(self.n_sets)]

    # ------------------------------------------------------------------
    def _set_index(self, key: str) -> int:
        # crc32 is deterministic across processes and runs (unlike
        # hash()), which keeps set-conflict behaviour testable.
        return zlib.crc32(key.encode()) % self.n_sets

    def get(self, key: str) -> Optional[object]:
        index = self._set_index(key)
        with self._locks[index]:
            for entry in self._sets[index]:
                if entry[0] == key:
                    entry[2] = 1
                    self._counts[index][0] += 1
                    return entry[1]
            self._counts[index][1] += 1
            return None

    def put(self, key: str, value: object) -> Optional[str]:
        """Admit (or refresh) ``key``; returns the evicted key, if any."""
        index = self._set_index(key)
        with self._locks[index]:
            lines = self._sets[index]
            for entry in lines:
                if entry[0] == key:
                    entry[1] = value
                    entry[2] = 1
                    self._counts[index][4] += 1
                    return None
            if len(lines) < self.ways:
                lines.append([key, value, 1])
                self._counts[index][2] += 1
                return None
            # CLOCK: sweep the hand, clearing reference bits; the first
            # clear entry is the victim.  Bounded: after one full sweep
            # every bit is clear, so the second pass always stops.
            hand = self._hands[index]
            for _ in range(2 * self.ways):
                if lines[hand][2] == 0:
                    break
                lines[hand][2] = 0
                hand = (hand + 1) % self.ways
            victim = lines[hand][0]
            lines[hand] = [key, value, 1]
            self._hands[index] = (hand + 1) % self.ways
            self._counts[index][2] += 1
            self._counts[index][3] += 1
            return victim

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def clear(self) -> None:
        for index in range(self.n_sets):
            with self._locks[index]:
                self._sets[index].clear()
                self._hands[index] = 0

    def stats(self) -> Dict[str, int]:
        """Aggregate counters (exact: summed under the set locks)."""
        totals = [0, 0, 0, 0, 0]
        resident = 0
        for index in range(self.n_sets):
            with self._locks[index]:
                for slot, value in enumerate(self._counts[index]):
                    totals[slot] += value
                resident += len(self._sets[index])
        return {
            "sets": self.n_sets,
            "ways": self.ways,
            "capacity": self.n_sets * self.ways,
            "resident": resident,
            "hits": totals[0],
            "misses": totals[1],
            "admissions": totals[2],
            "evictions": totals[3],
            "updates": totals[4],
        }


class TieredResultStore:
    """Read-through composition of the hot tier over the disk cache.

    ``get`` answers from the hot tier when possible (never touching
    disk), else reads through the durable :class:`ResultCache` and
    re-admits the entry.  ``put`` publishes durably *first* (atomic
    rename on disk), then admits to the hot tier — so a hot entry is
    always backed by a published one and lossy eviction loses nothing.

    ``disk`` may be ``None`` (cacheless server): the hot tier then is
    the only memory between simulations.
    """

    def __init__(
        self,
        hot: Optional[HotResultStore] = None,
        disk: Optional[ResultCache] = None,
    ):
        self.hot = hot if hot is not None else HotResultStore()
        self.disk = disk
        self._lock = threading.Lock()
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def get(self, key: str) -> Tuple[Optional[SimResult], Optional[str]]:
        """Look up ``key``; returns ``(result, tier)`` with ``tier`` one
        of ``"hot"``, ``"disk"`` or ``None`` on a full miss."""
        result = self.hot.get(key)
        if result is not None:
            with self._lock:
                self.hot_hits += 1
            return result, "hot"
        if self.disk is not None:
            result = self.disk.get(key)
            if result is not None:
                self.hot.put(key, result)
                with self._lock:
                    self.disk_hits += 1
                return result, "disk"
        with self._lock:
            self.misses += 1
        return None, None

    def put(self, key: str, result: SimResult) -> None:
        if self.disk is not None:
            self.disk.put(key, result)
        self.hot.put(key, result)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            tiers = {
                "hot_hits": self.hot_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
            }
        payload: Dict[str, object] = dict(tiers)
        payload["hot"] = self.hot.stats()
        payload["disk"] = (
            None
            if self.disk is None
            else {"root": str(self.disk.root)}
        )
        return payload
