"""``repro serve`` — the async simulation service (see docs/serve.md).

The serving subsystem turns the spec -> cache -> result pipeline into a
long-running service: an asyncio HTTP/JSON API over a two-tier
concurrent result store (a lossy k-way set-associative in-process hot
tier over the durable content-addressed
:class:`~repro.harness.parallel.ResultCache`), with in-flight request
coalescing, bounded-queue backpressure and a process worker pool.

Quick start::

    from repro.serve import ServeConfig, ServerThread, ServeClient

    with ServerThread(ServeConfig(port=0)) as server:
        with ServeClient(server.host, server.port) as client:
            out = client.submit({
                "trace": {"benchmark": "MV", "scale": "test"},
                "config": "soft",
            })
            print(out["served"], out["amat"])

Or from the shell: ``python -m repro serve`` (and ``--smoke`` for the
end-to-end self-test).
"""

from .client import ServeClient, ServeHTTPError
from .http import ServeApp, ServerThread, run_server, serve_async
from .service import (
    DEFAULT_QUEUE_DEPTH,
    JobNotDoneError,
    QueueFullError,
    ServeConfig,
    ServeMetrics,
    SimulationService,
    UnknownJobError,
    percentile,
)
from .store import (
    DEFAULT_SETS,
    DEFAULT_WAYS,
    HotResultStore,
    TieredResultStore,
)

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SETS",
    "DEFAULT_WAYS",
    "HotResultStore",
    "JobNotDoneError",
    "QueueFullError",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeHTTPError",
    "ServeMetrics",
    "ServerThread",
    "SimulationService",
    "TieredResultStore",
    "UnknownJobError",
    "percentile",
    "run_server",
    "serve_async",
]
