"""Configuration of the software-assisted cache.

The full mechanism of the paper ("Soft.") is: 8 KB direct-mapped main
cache, 32-byte physical lines, 64-byte virtual lines, 256-byte (8-line)
fully-associative bounce-back cache, on top of the section 3.1 timing.
Every mechanism can be disabled independently, which is how all the
paper's configurations are expressed:

===============================  =============================================
paper configuration              flags
===============================  =============================================
Standard                         ``bounce_back_lines=0, virtual_line_size=None``
Standard + victim cache          ``use_temporal=False, virtual_line_size=None``
Soft. for Temporal only          ``virtual_line_size=None``
Soft. for Spatial only           ``use_temporal=False``
Soft. (full)                     defaults
simplified Soft. (fig 9b)        ``bounce_back_lines=0, temporal_priority=True``
Stand./Soft. + prefetching       ``prefetch="on-miss"`` / ``prefetch="software"``
===============================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError
from ..sim.geometry import CacheGeometry
from ..sim.timing import MemoryTiming

#: Valid prefetch modes: disabled, software-assisted (only spatial-tagged
#: misses prefetch, section 4.4) or blind prefetch-on-every-miss.
PREFETCH_MODES = ("off", "software", "on-miss")


@dataclass(frozen=True)
class SoftCacheConfig:
    """Complete parameterisation of :class:`SoftwareAssistedCache`."""

    size_bytes: int = 8 * 1024
    line_size: int = 32
    ways: int = 1
    bounce_back_lines: int = 8
    bounce_back_ways: int = 0  # 0 = fully associative
    virtual_line_size: Optional[int] = 64  # None = virtual lines disabled
    use_temporal: bool = True
    temporal_priority: bool = False
    reset_temporal_on_bounce: bool = True
    #: Admit every main-cache victim into the bounce-back cache (the
    #: paper's choice: it then doubles as a victim cache for spatial
    #: interferences).  False = only temporal-tagged victims enter (the
    #: "more natural" variant the paper measured to be globally worse).
    admit_non_temporal: bool = True
    prefetch: str = "off"
    max_prefetched: int = 4
    timing: MemoryTiming = field(default_factory=MemoryTiming)

    def __post_init__(self) -> None:
        # Geometry constructor validates size/line/ways coherence.
        _ = self.geometry
        if self.bounce_back_lines < 0:
            raise ConfigError("bounce_back_lines must be >= 0")
        if self.bounce_back_ways < 0:
            raise ConfigError("bounce_back_ways must be >= 0")
        if (
            self.bounce_back_ways
            and self.bounce_back_lines % self.bounce_back_ways != 0
        ):
            raise ConfigError(
                f"{self.bounce_back_lines} bounce-back lines do not divide "
                f"into {self.bounce_back_ways}-way sets"
            )
        vl = self.virtual_line_size
        if vl is not None:
            if vl < self.line_size or vl % self.line_size != 0:
                raise ConfigError(
                    f"virtual line ({vl} B) must be a multiple of the "
                    f"physical line ({self.line_size} B)"
                )
            if vl & (vl - 1):
                raise ConfigError(f"virtual line must be a power of two: {vl}")
            if vl > self.size_bytes:
                raise ConfigError("virtual line cannot exceed the cache size")
        if self.prefetch not in PREFETCH_MODES:
            raise ConfigError(
                f"prefetch mode {self.prefetch!r} not in {PREFETCH_MODES}"
            )
        if self.prefetch != "off" and self.bounce_back_lines == 0:
            raise ConfigError(
                "prefetching uses the bounce-back cache as prefetch buffer; "
                "bounce_back_lines must be > 0"
            )
        if self.max_prefetched < 1:
            raise ConfigError("max_prefetched must be >= 1")
        if self.use_temporal is False and self.temporal_priority:
            raise ConfigError(
                "temporal_priority replacement needs the temporal tags"
            )

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(self.size_bytes, self.line_size, self.ways)

    @property
    def virtual_lines_per_fetch(self) -> int:
        """Physical lines per virtual line (1 when disabled)."""
        if self.virtual_line_size is None:
            return 1
        return self.virtual_line_size // self.line_size

    def derive(self, **changes) -> "SoftCacheConfig":
        """A modified copy (sweeps change one knob at a time)."""
        return replace(self, **changes)

    def label(self) -> str:
        """Short human-readable description for result tables."""
        parts = [f"{self.size_bytes // 1024}KB/{self.line_size}B"]
        if self.ways > 1:
            parts.append(f"{self.ways}-way")
        if self.virtual_line_size:
            parts.append(f"VL{self.virtual_line_size}")
        if self.bounce_back_lines:
            kind = "BB" if self.use_temporal else "victim"
            parts.append(f"{kind}{self.bounce_back_lines}")
        if self.temporal_priority:
            parts.append("Tprio")
        if self.prefetch != "off":
            parts.append(f"pf:{self.prefetch}")
        return " ".join(parts)


#: The paper's full "Soft." configuration.
PAPER_SOFT = SoftCacheConfig()

#: The paper's "Standard" configuration (Alpha / R4000 / Pentium data cache).
PAPER_STANDARD = SoftCacheConfig(
    bounce_back_lines=0, virtual_line_size=None, use_temporal=False
)
