"""The software-assisted data cache (paper sections 2.1, 2.2, 4.4).

One model implements the whole design space of the paper:

* a set-associative (default direct-mapped) write-back **main cache**
  whose lines carry a *temporal bit*, set whenever a load/store with a
  set temporal tag touches the line (hit or miss) and never cleared by
  untagged references;
* **virtual lines**: a miss by a spatial-tagged reference fetches the
  whole aligned virtual line (n physical lines) at penalty
  ``t_lat + n*LS/w_b``; physical lines already in the main cache are not
  re-fetched (the 1-cycle tag checks hide under the request pipeline);
  lines found in the bounce-back cache *are* fetched (the request cannot
  be aborted once sent) but their main-cache slot is tagged invalid;
* a **bounce-back cache**: every main-cache victim enters it; when the
  buffer's LRU entry is evicted it bounces back into the main cache iff
  its temporal bit is set (reset after bouncing — the dynamic
  adjustment), otherwise it is discarded (write buffer if dirty).  Hits
  in the buffer swap with the conflicting main line: data after
  ``assist_hit_time`` cycles, both caches locked ``swap_lock`` more;
* optional **temporal-priority replacement** (figure 9b's simplified
  variant): the main cache preferentially evicts lines whose temporal
  bit is unset, no bounce-back cache required;
* optional **prefetching** (section 4.4): the bounce-back cache doubles
  as prefetch buffer.  ``software`` mode prefetches the next physical
  line only on spatial-tagged misses, progressively (a hit on a
  prefetched line transfers it to main and prefetches the next);
  ``on-miss`` mode prefetches blindly on every miss (the hardware
  baseline).

Timing rules follow section 2.2: the bounce-back transfer itself hides
under the miss latency; dirty transfers hide in the write buffer unless
it is full; a bounce-back displacing a dirty line while the write buffer
is full is aborted.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..sim.result import SimResult
from ..sim.write_buffer import WriteBuffer
from .bounce_back import (
    ADDR,
    ARRIVAL,
    DIRTY,
    PREFETCHED,
    TEMPORAL,
    BounceBackBuffer,
    make_entry,
)
from .config import SoftCacheConfig


class SoftwareAssistedCache:
    """Main cache + bounce-back cache + virtual lines + temporal bits."""

    #: Per-line state carries a temporal bit; read by the fast engine
    #: when materialising final cache contents.
    _entry_has_temporal = True

    def __init__(self, config: SoftCacheConfig, name: str = "") -> None:
        self.config = config
        self.timing = config.timing
        self.name = name or config.label()
        geometry = config.geometry
        self.geometry = geometry

        self.bounce_back = BounceBackBuffer(
            config.bounce_back_lines, config.bounce_back_ways
        )
        line_transfer = self.timing.transfer_cycles(config.line_size)
        self.write_buffer = WriteBuffer(
            self.timing.write_buffer_entries, line_transfer
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        #: Line addresses fetched from the next level by the most recent
        #: access, including prefetch issues (consumed by the two-level
        #: hierarchy wrapper).
        self.last_fetch: List[int] = []
        # Absolute time at which the memory bus finishes its current
        # transfer.  Demand fetches and prefetches share it, so useless
        # prefetches delay later demand misses (the "additional memory
        # traffic" cost of hardware prefetching the paper cites).
        self._bus_free_at = 0

        # Hot-path constants.
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._vl_lines = config.virtual_lines_per_fetch
        self._line_transfer = line_transfer
        self._latency = self.timing.latency
        self._hit_time = self.timing.hit_time
        self._assist_hit = self.timing.assist_hit_time
        self._swap_lock = self.timing.swap_lock
        self._words_per_line = config.line_size // 8
        self._use_bb = config.bounce_back_lines > 0
        self._use_temporal = config.use_temporal and self._use_bb
        self._temporal_priority = config.temporal_priority
        self._reset_on_bounce = config.reset_temporal_on_bounce
        self._admit_non_temporal = config.admit_non_temporal
        self._prefetch_mode = config.prefetch
        self._max_prefetched = config.max_prefetched
        self._init_state()

    def _init_state(self) -> None:
        if self._ways == 1:
            # Flat array-backed direct-mapped main cache (-1 = empty):
            # one line per set makes the MRU list pure overhead, and the
            # paper's default geometry is direct-mapped.
            self._tags: Optional[List[int]] = [-1] * self._n_sets
            self._dirty: List[bool] = [False] * self._n_sets
            self._temporal: List[bool] = [False] * self._n_sets
            self._sets: Optional[List[List[List]]] = None
            # Shadow the class-level dispatcher: the per-reference loop
            # calls straight into the right backend.
            self.access = self._access_direct
        else:
            # Per-set MRU-first lists of [addr, dirty, temporal].
            self._tags = None
            self._dirty = []
            self._temporal = []
            self._sets = [[] for _ in range(self._n_sets)]
            self.access = self._access_assoc

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._init_state()
        self.bounce_back.reset()
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._bus_free_at = 0
        self.last_fetch = []

    def fast_engine_refusal(self):
        """Why the batch kernels are not equivalent (None = they are).

        The assisted-path kernels (:mod:`repro.sim.fast_soft`) model
        the full software-assisted design space — bounce-back cache,
        virtual lines, temporal bits, temporal-priority replacement —
        exactly.  Only prefetching remains outside the fast engine:
        prefetch arrival times couple the bus into hit/miss behaviour,
        which breaks the kernels' timing decoupling.  The degenerate
        case of a miss penalty below the pipelined hit time breaks the
        closed-form wait reconstruction and is also refused.
        """
        from ..sim.engine import EngineRefusal

        if self._prefetch_mode != "off":
            return EngineRefusal(
                "prefetch",
                f"prefetch mode {self._prefetch_mode!r} couples bus "
                "arrival times into hit/miss behaviour",
            )
        if self._latency + self._line_transfer < self._hit_time:
            return EngineRefusal(
                "degenerate-timing",
                "miss penalty below the pipelined hit time",
            )
        return None

    def in_main(self, address: int) -> bool:
        """Presence in the main cache (testing hook)."""
        la = address >> self._line_shift
        if self._tags is not None:
            return self._tags[la % self._n_sets] == la
        return any(e[ADDR] == la for e in self._sets[la % self._n_sets])

    def in_assist(self, address: int) -> bool:
        """Presence in the bounce-back cache (testing hook)."""
        return (address >> self._line_shift) in self.bounce_back

    def contains(self, address: int) -> bool:
        return self.in_main(address) or self.in_assist(address)

    def temporal_bit(self, address: int) -> Optional[bool]:
        """The temporal bit of the line holding ``address``, if cached."""
        la = address >> self._line_shift
        if self._tags is not None:
            if self._tags[la % self._n_sets] == la:
                return bool(self._temporal[la % self._n_sets])
        else:
            for entry in self._sets[la % self._n_sets]:
                if entry[ADDR] == la:
                    return bool(entry[TEMPORAL])
        found = self.bounce_back.find(la)
        return bool(found[TEMPORAL]) if found is not None else None

    def check_exclusive(self) -> None:
        """Assert structural invariants: no line lives in both caches, no
        set exceeds its associativity, no set holds duplicates."""
        if self._tags is not None:
            # A line maps to exactly one slot: duplicates/overflow are
            # impossible by construction in the direct-mapped backend.
            main = {tag for tag in self._tags if tag != -1}
        else:
            main = {e[ADDR] for s in self._sets for e in s}
            for s in self._sets:
                addrs = [e[ADDR] for e in s]
                assert len(addrs) == len(set(addrs)), "duplicate line in a set"
                assert len(addrs) <= self._ways, "set exceeds its associativity"
        assist = {e[ADDR] for e in self.bounce_back.entries()}
        overlap = main & assist
        assert not overlap, f"lines duplicated across caches: {overlap}"

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _victim_index(self, entries: List[List]) -> int:
        """Way to replace: plain LRU, or LRU-among-non-temporal when
        temporal-priority replacement is on (fig 9b)."""
        if self._temporal_priority:
            for i in range(len(entries) - 1, -1, -1):
                if not entries[i][TEMPORAL]:
                    return i
        return len(entries) - 1

    # ------------------------------------------------------------------
    # Bounce-back machinery
    # ------------------------------------------------------------------
    def _discard_line(self, dirty: bool, start: int) -> int:
        """Drop a line; dirty data goes through the write buffer."""
        if dirty:
            self.stats.writebacks += 1
            stall = self.write_buffer.push(start)
            self.stats.write_buffer_stalls += stall
            return stall
        return 0

    def _discard(self, entry: List, start: int) -> int:
        return self._discard_line(entry[DIRTY], start)

    def _handle_bb_eviction(
        self, entry: List, start: int, blocked_sets: Set[int]
    ) -> int:
        """A line fell out of the bounce-back cache: bounce or discard."""
        stats = self.stats
        if not (self._use_temporal and entry[TEMPORAL] and not entry[PREFETCHED]):
            return self._discard(entry, start)

        target_set = entry[ADDR] % self._n_sets
        if target_set in blocked_sets:
            # The bounced line maps to a slot the ongoing miss is filling:
            # it would be overwritten when the requested line arrives, so
            # the bounce is pointless (dirty data still saved).
            stats.bounce_aborts += 1
            return self._discard(entry, start)

        tags = self._tags
        if tags is not None:
            stall = 0
            if tags[target_set] != -1:
                if self._dirty[target_set] and self.write_buffer.is_full(start):
                    # Write buffer full: abort the transfer (section 2.2).
                    stats.bounce_aborts += 1
                    return self._discard(entry, start)
                stall = self._discard_line(self._dirty[target_set], start)
            tags[target_set] = entry[ADDR]
            self._dirty[target_set] = entry[DIRTY]
            self._temporal[target_set] = (
                entry[TEMPORAL] and not self._reset_on_bounce
            )
            stats.bounce_backs += 1
            return stall

        entries = self._sets[target_set]
        stall = 0
        if len(entries) >= self._ways:
            occupant_index = self._victim_index(entries)
            occupant = entries[occupant_index]
            if occupant[DIRTY] and self.write_buffer.is_full(start):
                # Write buffer full: abort the transfer (section 2.2).
                stats.bounce_aborts += 1
                return self._discard(entry, start)
            del entries[occupant_index]
            stall = self._discard(occupant, start)
        temporal = entry[TEMPORAL] and not self._reset_on_bounce
        entries.insert(0, [entry[ADDR], entry[DIRTY], temporal])
        stats.bounce_backs += 1
        return stall

    def _victim_to_bb(
        self, victim: List, start: int, blocked_sets: Set[int]
    ) -> int:
        """Send a main-cache victim to the bounce-back cache."""
        if not self._use_bb:
            return self._discard(victim, start)
        if not self._admit_non_temporal and not victim[TEMPORAL]:
            return self._discard(victim, start)
        entry = make_entry(
            victim[ADDR], victim[DIRTY], victim[TEMPORAL], False, 0
        )
        evicted = self.bounce_back.insert(entry)
        if evicted is None:
            return 0
        return self._handle_bb_eviction(evicted, start, blocked_sets)

    # ------------------------------------------------------------------
    # Prefetch machinery (section 4.4)
    # ------------------------------------------------------------------
    def _issue_prefetch(self, line_address: int, issued_at: int) -> None:
        """Queue a prefetched line into the bounce-back cache.

        The prefetch request leaves at ``issued_at``; its line arrives
        after the memory latency plus whatever time the bus is still
        busy with earlier transfers.
        """
        stats = self.stats
        la = line_address
        if self._tags is not None:
            if self._tags[la % self._n_sets] == la:
                return  # already cached: the software info makes this rare
        elif any(e[ADDR] == la for e in self._sets[la % self._n_sets]):
            return  # already cached: the software info makes this rare
        if la in self.bounce_back:
            return
        begin = max(issued_at + self._latency, self._bus_free_at)
        arrival = begin + self._line_transfer
        self._bus_free_at = arrival
        entry = make_entry(la, False, False, True, arrival)
        if self.bounce_back.prefetched_count() >= self._max_prefetched:
            # Prefetched lines preferably replace other prefetched lines.
            dropped = self.bounce_back.evict_lru_prefetched(la)
            if dropped is None:  # pragma: no cover - count>0 implies found
                return
        evicted = self.bounce_back.insert(entry)
        if evicted is not None:
            # Prefetch insertion must not trigger a bounce-back storm:
            # the evicted line follows the normal eviction rules.
            self._handle_bb_eviction(evicted, arrival, set())
        stats.prefetches_issued += 1
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        self.last_fetch.append(la)

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        # Class-level fallback; instances bind ``access`` directly to a
        # backend in _init_state.
        if self._tags is not None:
            return self._access_direct(
                address, is_write, temporal=temporal, spatial=spatial, now=now
            )
        return self._access_assoc(
            address, is_write, temporal=temporal, spatial=spatial, now=now
        )

    def _access_direct(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        """Direct-mapped hot path over the flat tag/dirty/temporal arrays.

        Step-for-step identical to :meth:`_access_assoc` with single-entry
        sets; only the set representation differs.
        """
        stats = self.stats
        stats.refs += 1
        self.last_fetch = []
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        index = la % self._n_sets
        tags = self._tags

        # ---- main-cache hit -------------------------------------------
        if tags[index] == la:
            if is_write:
                self._dirty[index] = True
            if temporal:
                self._temporal[index] = True
            stats.hits_main += 1
            self._ready_at = start + self._hit_time
            return wait + self._hit_time

        # ---- bounce-back-cache hit: swap ------------------------------
        if self._use_bb:
            found = self.bounce_back.lookup_remove(la)
            if found is not None:
                stats.hits_assist += 1
                stats.swaps += 1
                extra = 0
                if found[PREFETCHED]:
                    if found[ARRIVAL] > start:
                        # Prefetch still in flight: wait for the data.
                        extra = found[ARRIVAL] - start
                    if self._prefetch_mode != "off":
                        stats.prefetch_hits += 1
                        # Progressive prefetching: fetch the next line.
                        self._issue_prefetch(la + 1, start + extra)
                if is_write:
                    found[DIRTY] = True
                if temporal:
                    found[TEMPORAL] = True
                stall = 0
                if tags[index] != -1:
                    # Swap: the main victim takes the buffer slot the hit
                    # line just freed (see _access_assoc for the blocked
                    # set rationale).
                    entry = make_entry(
                        tags[index], self._dirty[index],
                        self._temporal[index], False, 0,
                    )
                    evicted = self.bounce_back.insert(entry)
                    if evicted is not None:
                        stall = self._handle_bb_eviction(
                            evicted, start, {index}
                        )
                tags[index] = la
                self._dirty[index] = found[DIRTY]
                self._temporal[index] = found[TEMPORAL]
                cycles = wait + extra + stall + self._assist_hit
                self._ready_at = (
                    start + extra + stall + self._assist_hit + self._swap_lock
                )
                return cycles

        # ---- miss ------------------------------------------------------
        stats.misses += 1
        vl = self._vl_lines
        if not (spatial and vl > 1):
            # Single-line fetch: the common case, with the victim path
            # inlined (a hit in the bounce-back cache was already handled
            # above, so the incoming line cannot be in the buffer).
            bus_delay = self._bus_free_at - (start + self._latency)
            if bus_delay < 0:
                bus_delay = 0
            penalty = self._latency + bus_delay + self._line_transfer
            self._bus_free_at = start + penalty
            stats.lines_fetched += 1
            stats.words_fetched += self._words_per_line
            self.last_fetch = [la]

            stall = 0
            occupant = tags[index]
            if occupant != -1:
                occ_dirty = self._dirty[index]
                occ_temporal = self._temporal[index]
                if self._use_bb and (self._admit_non_temporal or occ_temporal):
                    entry = make_entry(
                        occupant, occ_dirty, occ_temporal, False, 0
                    )
                    evicted = self.bounce_back.insert(entry)
                    if evicted is not None:
                        stall = self._handle_bb_eviction(
                            evicted, start, {index}
                        )
                elif occ_dirty:
                    stats.writebacks += 1
                    stall = self.write_buffer.push(start)
                    stats.write_buffer_stalls += stall
            tags[index] = la
            self._dirty[index] = is_write
            self._temporal[index] = temporal

            if self._prefetch_mode == "software" and spatial:
                self._issue_prefetch(la + 1, start)
            elif self._prefetch_mode == "on-miss":
                self._issue_prefetch(la + 1, start)

            cycles = wait + stall + penalty
            self._ready_at = start + stall + penalty
            return cycles

        base = la - (la % vl)
        candidates: Tuple[int, ...] = tuple(range(base, base + vl))

        # Coherence checks against the main cache hide under the request
        # pipeline: lines already present are simply not requested.
        to_fetch: List[int] = [
            line
            for line in candidates
            if line == la or tags[line % self._n_sets] != line
        ]

        n = len(to_fetch)
        # The bus may still be draining an earlier prefetch when this
        # miss's data comes back from memory.
        bus_delay = self._bus_free_at - (start + self._latency)
        if bus_delay < 0:
            bus_delay = 0
        penalty = self._latency + bus_delay + n * self._line_transfer
        self._bus_free_at = start + penalty
        stats.lines_fetched += n
        stats.words_fetched += n * self._words_per_line
        self.last_fetch = list(to_fetch)

        blocked_sets = {line % self._n_sets for line in to_fetch}
        stall = 0
        for line in to_fetch:
            line_index = line % self._n_sets
            occupant = tags[line_index]
            if (
                self._use_bb
                and self.bounce_back.find(line) is not None
            ):
                # Checked only after the requests were sent: the fetch
                # happened, but the buffer's copy is the live one.  The
                # slot the incoming line was written to is tagged invalid,
                # which costs the would-be victim its place.
                stats.invalidations += 1
                if occupant != -1:
                    victim = [
                        occupant, self._dirty[line_index],
                        self._temporal[line_index],
                    ]
                    tags[line_index] = -1
                    self._dirty[line_index] = False
                    self._temporal[line_index] = False
                    stall += self._victim_to_bb(victim, start, blocked_sets)
                continue
            victim = None
            if occupant != -1:
                victim = [
                    occupant, self._dirty[line_index],
                    self._temporal[line_index],
                ]
            tags[line_index] = line
            self._dirty[line_index] = is_write and line == la
            self._temporal[line_index] = temporal and line == la
            if victim is not None:
                stall += self._victim_to_bb(victim, start, blocked_sets)

        if self._prefetch_mode == "software" and spatial:
            next_line = (candidates[-1] if vl > 1 else la) + 1
            self._issue_prefetch(next_line, start)
        elif self._prefetch_mode == "on-miss":
            self._issue_prefetch(la + 1, start)

        cycles = wait + stall + penalty
        self._ready_at = start + stall + penalty
        return cycles

    def _access_assoc(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        self.last_fetch = []
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]

        # ---- main-cache hit -------------------------------------------
        for i, entry in enumerate(entries):
            if entry[ADDR] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                if is_write:
                    entry[DIRTY] = True
                if temporal:
                    entry[TEMPORAL] = True
                stats.hits_main += 1
                self._ready_at = start + self._hit_time
                return wait + self._hit_time

        # ---- bounce-back-cache hit: swap ------------------------------
        if self._use_bb:
            found = self.bounce_back.lookup_remove(la)
            if found is not None:
                stats.hits_assist += 1
                stats.swaps += 1
                extra = 0
                if found[PREFETCHED]:
                    if found[ARRIVAL] > start:
                        # Prefetch still in flight: wait for the data.
                        extra = found[ARRIVAL] - start
                    if self._prefetch_mode != "off":
                        stats.prefetch_hits += 1
                        # Progressive prefetching: fetch the next line.
                        self._issue_prefetch(la + 1, start + extra)
                if is_write:
                    found[DIRTY] = True
                if temporal:
                    found[TEMPORAL] = True
                stall = 0
                if len(entries) >= self._ways:
                    victim_index = self._victim_index(entries)
                    victim = entries.pop(victim_index)
                    # Swap: the main victim takes the buffer slot the hit
                    # line just freed.  With a set-associative buffer the
                    # victim may land in a *different* buffer set and
                    # trigger an eviction there; a bounce aimed at the
                    # main set we are swapping into would overflow it,
                    # so that set is blocked (its slot is reserved for
                    # the incoming line).
                    entry = make_entry(
                        victim[ADDR], victim[DIRTY], victim[TEMPORAL], False, 0
                    )
                    evicted = self.bounce_back.insert(entry)
                    if evicted is not None:
                        stall = self._handle_bb_eviction(
                            evicted, start, {la % self._n_sets}
                        )
                entries.insert(0, [la, found[DIRTY], found[TEMPORAL]])
                cycles = wait + extra + stall + self._assist_hit
                self._ready_at = start + extra + stall + self._assist_hit + self._swap_lock
                return cycles

        # ---- miss ------------------------------------------------------
        stats.misses += 1
        vl = self._vl_lines
        if spatial and vl > 1:
            base = la - (la % vl)
            candidates: Tuple[int, ...] = tuple(range(base, base + vl))
        else:
            candidates = (la,)

        # Coherence checks against the main cache hide under the request
        # pipeline: lines already present are simply not requested.
        to_fetch: List[int] = []
        for line in candidates:
            if line == la:
                to_fetch.append(line)
                continue
            line_set = self._sets[line % self._n_sets]
            if any(e[ADDR] == line for e in line_set):
                continue
            to_fetch.append(line)

        n = len(to_fetch)
        # The bus may still be draining an earlier prefetch when this
        # miss's data comes back from memory.
        bus_delay = self._bus_free_at - (start + self._latency)
        if bus_delay < 0:
            bus_delay = 0
        penalty = self._latency + bus_delay + n * self._line_transfer
        self._bus_free_at = start + penalty
        stats.lines_fetched += n
        stats.words_fetched += n * self._words_per_line
        self.last_fetch = list(to_fetch)

        blocked_sets = {line % self._n_sets for line in to_fetch}
        stall = 0
        for line in to_fetch:
            in_bb = self._use_bb and self.bounce_back.find(line) is not None
            line_set = self._sets[line % self._n_sets]
            if in_bb:
                # Checked only after the requests were sent: the fetch
                # happened, but the buffer's copy is the live one.  The
                # slot the incoming line was written to is tagged invalid,
                # which costs the would-be victim its place.
                stats.invalidations += 1
                if len(line_set) >= self._ways:
                    victim = line_set.pop(self._victim_index(line_set))
                    stall += self._victim_to_bb(victim, start, blocked_sets)
                continue
            victim = None
            if len(line_set) >= self._ways:
                victim = line_set.pop(self._victim_index(line_set))
            line_set.insert(
                0,
                [
                    line,
                    is_write and line == la,
                    temporal and line == la,
                ],
            )
            if victim is not None:
                stall += self._victim_to_bb(victim, start, blocked_sets)

        if self._prefetch_mode == "software" and spatial:
            next_line = (candidates[-1] if vl > 1 else la) + 1
            self._issue_prefetch(next_line, start)
        elif self._prefetch_mode == "on-miss":
            self._issue_prefetch(la + 1, start)

        cycles = wait + stall + penalty
        self._ready_at = start + stall + penalty
        return cycles
