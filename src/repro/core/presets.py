"""Factory functions for every cache configuration the paper evaluates.

Each function returns a fresh model; all accept the shared knobs
(``size_bytes``, ``line_size``, ``ways``, ``timing``) so the sweeps of
figures 8-10 are one-liners.

Every factory here is also registered as a :class:`~repro.core.spec
.CacheSpec` *kind* (see the bottom of this module), which is the
picklable, cache-fingerprintable form the sweep engine works with.
Prefer building models through specs (``CacheSpec.of("soft").build()``
or the named registry in :mod:`repro.presets`) in new code.
"""

from __future__ import annotations

from typing import Optional

from ..sim.bypass import BypassCache
from ..sim.column_assoc import ColumnAssociativeCache
from ..sim.geometry import CacheGeometry
from ..sim.standard import StandardCache
from ..sim.stream_buffer import StreamBufferCache
from ..sim.subblock import SubBlockCache
from ..sim.timing import MemoryTiming
from .assist_hp import HPAssistCache
from .config import SoftCacheConfig
from .software_cache import SoftwareAssistedCache
from .spec import register_kind

__all__ = [
    "standard",
    "standard_cache",
    "victim",
    "soft",
    "soft_temporal_only",
    "soft_spatial_only",
    "bypass",
    "bypass_buffered",
    "temporal_priority",
    "soft_prefetch",
    "standard_prefetch",
    "soft_config",
    "column_assoc",
    "stream_buffer",
    "hp_assist",
    "subblock",
    "with_l2",
]


def _timing(timing: Optional[MemoryTiming]) -> MemoryTiming:
    return timing if timing is not None else MemoryTiming()


def standard_cache(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    write_policy: str = "write-back",
    write_allocate: bool = True,
    timing: Optional[MemoryTiming] = None,
) -> StandardCache:
    """The independently implemented Standard baseline (cross-validation)."""
    return StandardCache(
        CacheGeometry(size_bytes, line_size, ways),
        _timing(timing),
        write_policy=write_policy,
        write_allocate=write_allocate,
    )


def standard(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Standard": plain cache, no assistance (fig 3, 6-10 baseline)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=0,
        virtual_line_size=None,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand. {config.label()}")


def victim(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    victim_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Stand.+Victim": the bounce-back buffer demoted to a victim cache
    (no temporal information, no virtual lines) — figure 3b / 9b."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=victim_lines,
        virtual_line_size=None,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand.+Victim {config.label()}")


def soft(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft.": the full mechanism (virtual lines + bounce-back cache)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft. {config.label()}")


def soft_temporal_only(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft. for Temp. only": bounce-back cache, no virtual lines."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=None,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft-Temp {config.label()}")


def soft_spatial_only(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft. for Spat. only": virtual lines; the buffer stays a plain
    victim cache (temporal bits ignored)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft-Spat {config.label()}")


def bypass(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    timing: Optional[MemoryTiming] = None,
) -> BypassCache:
    """Pure software bypassing (fig 3a): non-temporal misses fetch one
    word and are never cached."""
    return BypassCache(
        CacheGeometry(size_bytes, line_size, ways), _timing(timing)
    )


def bypass_buffered(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    buffer_lines: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> BypassCache:
    """Bypassing through a small buffer (fig 3a): the i860-style scheme
    that recovers spatial locality of bypassed streams."""
    return BypassCache(
        CacheGeometry(size_bytes, line_size, ways),
        _timing(timing),
        buffer_lines=buffer_lines,
    )


def temporal_priority(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 2,
    virtual_line_size: int = 64,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """The simplified set-associative variant of figure 9b: LRU
    preferentially replaces non-temporal lines; no bounce-back cache."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=0,
        virtual_line_size=virtual_line_size,
        temporal_priority=True,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(
        config, name=f"Simplified Soft {config.label()}"
    )


def soft_prefetch(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    max_prefetched: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft.+Prefetching" (fig 12): progressive software-assisted
    prefetch through the bounce-back cache."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        prefetch="software",
        max_prefetched=max_prefetched,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft+Pf {config.label()}")


def standard_prefetch(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    buffer_lines: int = 8,
    max_prefetched: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Stand.+Prefetching" (fig 12): blind prefetch-on-miss into a
    prefetch buffer, no software information."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=buffer_lines,
        virtual_line_size=None,
        use_temporal=False,
        prefetch="on-miss",
        max_prefetched=max_prefetched,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand+Pf {config.label()}")


def soft_config(**params) -> SoftwareAssistedCache:
    """Raw :class:`SoftCacheConfig` passthrough (the ablation sweeps)."""
    return SoftwareAssistedCache(SoftCacheConfig(**params))


def column_assoc(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    timing: Optional[MemoryTiming] = None,
) -> ColumnAssociativeCache:
    """Column-associative cache (Agarwal & Pudar, paper section 5)."""
    return ColumnAssociativeCache(
        CacheGeometry(size_bytes, line_size, 1), _timing(timing)
    )


def stream_buffer(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    n_buffers: int = 4,
    depth: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> StreamBufferCache:
    """Jouppi stream buffers in front of a plain cache (section 5)."""
    return StreamBufferCache(
        CacheGeometry(size_bytes, line_size, ways),
        _timing(timing),
        n_buffers=n_buffers,
        depth=depth,
    )


def hp_assist(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    assist_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> HPAssistCache:
    """HP-7200 style assist cache (buffer *before* the main cache)."""
    return HPAssistCache(
        CacheGeometry(size_bytes, line_size, ways),
        _timing(timing),
        assist_lines=assist_lines,
    )


def with_l2(
    inner: str = "standard",
    l2_size: int = 256 * 1024,
    l2_line: int = 64,
    l2_ways: int = 4,
    l2_hit_latency: int = 4,
    memory_extra: int = 16,
):
    """An L1 built by the ``inner`` factory, backed by a unified L2.

    The L1 sees the L2 hit latency as its "memory"; an L2 miss adds
    ``memory_extra`` cycles for the full DRAM trip (hierarchy study).
    """
    from ..sim.hierarchy import TwoLevelCache

    factory = globals()[inner]
    l1 = factory(timing=MemoryTiming(latency=l2_hit_latency))
    return TwoLevelCache(
        l1, CacheGeometry(l2_size, l2_line, l2_ways), memory_extra
    )


def subblock(
    size_bytes: int = 8 * 1024,
    line_size: int = 64,
    ways: int = 1,
    sub_block: int = 32,
    timing: Optional[MemoryTiming] = None,
) -> SubBlockCache:
    """Sectored (sub-block placement) cache, the section 2.1 contrast."""
    return SubBlockCache(
        CacheGeometry(size_bytes, line_size, ways),
        sub_block=sub_block,
        timing=_timing(timing),
    )


# ----------------------------------------------------------------------
# Spec kinds: every factory above, addressable by name so sweeps can
# ship picklable CacheSpec objects to worker processes.
# ----------------------------------------------------------------------
for _name in __all__:
    register_kind(_name, globals()[_name])
del _name
