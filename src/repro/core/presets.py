"""Factory functions for every cache configuration the paper evaluates.

Each function returns a fresh model; all accept the shared knobs
(``size_bytes``, ``line_size``, ``ways``, ``timing``) so the sweeps of
figures 8-10 are one-liners.
"""

from __future__ import annotations

from typing import Optional

from ..sim.bypass import BypassCache
from ..sim.geometry import CacheGeometry
from ..sim.standard import StandardCache
from ..sim.timing import MemoryTiming
from .config import SoftCacheConfig
from .software_cache import SoftwareAssistedCache

__all__ = [
    "standard",
    "standard_cache",
    "victim",
    "soft",
    "soft_temporal_only",
    "soft_spatial_only",
    "bypass",
    "bypass_buffered",
    "temporal_priority",
    "soft_prefetch",
    "standard_prefetch",
]


def _timing(timing: Optional[MemoryTiming]) -> MemoryTiming:
    return timing if timing is not None else MemoryTiming()


def standard_cache(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    timing: Optional[MemoryTiming] = None,
) -> StandardCache:
    """The independently implemented Standard baseline (cross-validation)."""
    return StandardCache(
        CacheGeometry(size_bytes, line_size, ways), _timing(timing)
    )


def standard(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Standard": plain cache, no assistance (fig 3, 6-10 baseline)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=0,
        virtual_line_size=None,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand. {config.label()}")


def victim(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    victim_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Stand.+Victim": the bounce-back buffer demoted to a victim cache
    (no temporal information, no virtual lines) — figure 3b / 9b."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=victim_lines,
        virtual_line_size=None,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand.+Victim {config.label()}")


def soft(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft.": the full mechanism (virtual lines + bounce-back cache)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft. {config.label()}")


def soft_temporal_only(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft. for Temp. only": bounce-back cache, no virtual lines."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=None,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft-Temp {config.label()}")


def soft_spatial_only(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft. for Spat. only": virtual lines; the buffer stays a plain
    victim cache (temporal bits ignored)."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        use_temporal=False,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft-Spat {config.label()}")


def bypass(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    timing: Optional[MemoryTiming] = None,
) -> BypassCache:
    """Pure software bypassing (fig 3a): non-temporal misses fetch one
    word and are never cached."""
    return BypassCache(
        CacheGeometry(size_bytes, line_size, ways), _timing(timing)
    )


def bypass_buffered(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    buffer_lines: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> BypassCache:
    """Bypassing through a small buffer (fig 3a): the i860-style scheme
    that recovers spatial locality of bypassed streams."""
    return BypassCache(
        CacheGeometry(size_bytes, line_size, ways),
        _timing(timing),
        buffer_lines=buffer_lines,
    )


def temporal_priority(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 2,
    virtual_line_size: int = 64,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """The simplified set-associative variant of figure 9b: LRU
    preferentially replaces non-temporal lines; no bounce-back cache."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=0,
        virtual_line_size=virtual_line_size,
        temporal_priority=True,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(
        config, name=f"Simplified Soft {config.label()}"
    )


def soft_prefetch(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    virtual_line_size: int = 64,
    bounce_back_lines: int = 8,
    max_prefetched: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Soft.+Prefetching" (fig 12): progressive software-assisted
    prefetch through the bounce-back cache."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=bounce_back_lines,
        virtual_line_size=virtual_line_size,
        prefetch="software",
        max_prefetched=max_prefetched,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Soft+Pf {config.label()}")


def standard_prefetch(
    size_bytes: int = 8 * 1024,
    line_size: int = 32,
    ways: int = 1,
    buffer_lines: int = 8,
    max_prefetched: int = 4,
    timing: Optional[MemoryTiming] = None,
) -> SoftwareAssistedCache:
    """"Stand.+Prefetching" (fig 12): blind prefetch-on-miss into a
    prefetch buffer, no software information."""
    config = SoftCacheConfig(
        size_bytes=size_bytes,
        line_size=line_size,
        ways=ways,
        bounce_back_lines=buffer_lines,
        virtual_line_size=None,
        use_temporal=False,
        prefetch="on-miss",
        max_prefetched=max_prefetched,
        timing=_timing(timing),
    )
    return SoftwareAssistedCache(config, name=f"Stand+Pf {config.label()}")
