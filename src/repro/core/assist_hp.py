"""HP PA-7200-style Assist Cache (paper section 5).

The design the authors discovered after submission: a small
fully-associative FIFO buffer placed *before* the main cache.  Every
missed line is first placed in the assist cache; when it reaches the end
of the FIFO it is promoted into the main cache — unless the referencing
load/store carried the *spatial-only* hint (i.e. data without temporal
locality), in which case it is discarded and never pollutes the main
cache.  Both structures are probed in parallel (HP used aggressive
circuitry for this; the paper deliberately did *not* assume that was
possible, which is why its bounce-back cache pays 3 cycles).

Differences from the bounce-back design, as the paper lists them:

* buffer before vs after the main cache;
* parallel probe (1-cycle assist hit) vs 3-cycle sequential probe;
* no virtual-line mechanism for spatial locality.

The spatial-only hint maps to the complement of our temporal tag.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..errors import ConfigError
from ..sim.geometry import CacheGeometry
from ..sim.result import SimResult
from ..sim.timing import MemoryTiming
from ..sim.write_buffer import WriteBuffer


class HPAssistCache:
    """Main cache plus a FIFO assist buffer probed in parallel."""

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        assist_lines: int = 8,
        name: str = "",
    ) -> None:
        if assist_lines < 1:
            raise ConfigError("the assist cache needs at least one line")
        self.geometry = geometry
        self.timing = timing
        self.assist_lines = assist_lines
        self.name = name or f"hp-assist({assist_lines}) {geometry}"
        self._sets: List[List[List]] = [[] for _ in range(geometry.n_sets)]
        # FIFO of [line_address, dirty, spatial_only] entries.
        self._assist: Deque[List] = deque()
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._penalty = timing.miss_penalty(1, geometry.line_size)
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self._assist = deque()
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def in_main(self, address: int) -> bool:
        la = address >> self._line_shift
        return any(e[0] == la for e in self._sets[la % self._n_sets])

    def in_assist(self, address: int) -> bool:
        la = address >> self._line_shift
        return any(e[0] == la for e in self._assist)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _discard(self, dirty: bool, start: int) -> int:
        if dirty:
            self.stats.writebacks += 1
            stall = self.write_buffer.push(start)
            self.stats.write_buffer_stalls += stall
            return stall
        return 0

    def _promote(self, entry: List, start: int) -> int:
        """Move a FIFO-aged assist line into the main cache."""
        la = entry[0]
        entries = self._sets[la % self._n_sets]
        stall = 0
        if len(entries) >= self._ways:
            victim = entries.pop()
            stall = self._discard(victim[1], start)
        entries.insert(0, [la, entry[1]])
        return stall

    def _assist_insert(self, entry: List, start: int) -> int:
        """Push a fetched line into the FIFO; age out the oldest."""
        stall = 0
        if len(self._assist) >= self.assist_lines:
            oldest = self._assist.popleft()
            if oldest[2]:
                # Spatial-only data never reaches the main cache.
                stall += self._discard(oldest[1], start)
            else:
                stall += self._promote(oldest, start)
                self.stats.bounce_backs += 1  # promotion counter
        self._assist.append(entry)
        return stall

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                if is_write:
                    entry[1] = True
                stats.hits_main += 1
                self._ready_at = start + self._hit_time
                return wait + self._hit_time

        # Parallel probe: an assist hit costs the same as a main hit.
        for entry in self._assist:
            if entry[0] == la:
                if is_write:
                    entry[1] = True
                if temporal:
                    entry[2] = False  # a temporal touch clears the hint
                stats.hits_assist += 1
                self._ready_at = start + self._hit_time
                return wait + self._hit_time

        # Miss: the line enters the assist cache, never the main cache
        # directly.  The HP hint is *spatial-only*: it is asserted only
        # for references the compiler positively knows to be streams
        # (spatial tag without temporal tag); unhinted data promotes
        # normally.
        stats.misses += 1
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        spatial_only = spatial and not temporal
        stall = self._assist_insert([la, is_write, spatial_only], start)
        cycles = wait + stall + self._penalty
        self._ready_at = start + stall + self._penalty
        return cycles
