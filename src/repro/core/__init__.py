"""The paper's contribution: the software-assisted data cache."""

from . import presets
from .assist_hp import HPAssistCache
from .bounce_back import BounceBackBuffer, make_entry
from .config import PAPER_SOFT, PAPER_STANDARD, SoftCacheConfig
from .software_cache import SoftwareAssistedCache
from .spec import CacheSpec, register_kind, registered_kinds

__all__ = [
    "SoftCacheConfig",
    "PAPER_SOFT",
    "PAPER_STANDARD",
    "SoftwareAssistedCache",
    "HPAssistCache",
    "BounceBackBuffer",
    "make_entry",
    "presets",
    "CacheSpec",
    "register_kind",
    "registered_kinds",
]
