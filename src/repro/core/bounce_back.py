"""The bounce-back cache structure (paper section 2.2).

A small buffer behind the main cache that receives *every* line evicted
from it (so it doubles as Jouppi's victim cache when software control is
inactive).  Replacement is LRU; on eviction the software-assisted cache
decides whether the line bounces back to the main cache (temporal bit
set) or is discarded.  The same structure doubles as the prefetch buffer
of section 4.4: prefetched lines carry a flag and an arrival time.

Entries are small mutable lists for hot-path speed::

    [line_address, dirty, temporal_bit, prefetched, arrival_time]

The buffer is fully associative by default; the paper notes a 4-way
version "performs reasonably well", so ``ways`` is configurable.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError

#: Entry field indices.
ADDR, DIRTY, TEMPORAL, PREFETCHED, ARRIVAL = range(5)

Entry = List  # [line_address, dirty, temporal, prefetched, arrival]


def make_entry(
    line_address: int,
    dirty: bool = False,
    temporal: bool = False,
    prefetched: bool = False,
    arrival: int = 0,
) -> Entry:
    """Build a buffer entry."""
    return [line_address, dirty, temporal, prefetched, arrival]


class BounceBackBuffer:
    """Set-associative (default: fully associative) LRU victim store."""

    def __init__(self, lines: int, ways: int = 0) -> None:
        if lines < 0:
            raise ConfigError(f"buffer size must be >= 0 lines: {lines}")
        if ways < 0:
            raise ConfigError(f"buffer associativity must be >= 0: {ways}")
        if ways == 0 or ways >= lines:
            ways = max(lines, 1)
        if lines and lines % ways != 0:
            raise ConfigError(
                f"{lines} lines do not divide into {ways}-way sets"
            )
        self.lines = lines
        self.ways = ways
        self.n_sets = max(1, lines // ways) if lines else 1
        # MRU-first entry lists.
        self._sets: List[List[Entry]] = [[] for _ in range(self.n_sets)]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _set_of(self, line_address: int) -> List[Entry]:
        return self._sets[line_address % self.n_sets]

    def find(self, line_address: int) -> Optional[Entry]:
        """Presence probe without LRU update (coherence checks)."""
        for entry in self._set_of(line_address):
            if entry[ADDR] == line_address:
                return entry
        return None

    def lookup_remove(self, line_address: int) -> Optional[Entry]:
        """Find and remove an entry (the swap path of a hit)."""
        entries = self._set_of(line_address)
        for i, entry in enumerate(entries):
            if entry[ADDR] == line_address:
                del entries[i]
                return entry
        return None

    # ------------------------------------------------------------------
    # Insertion / eviction
    # ------------------------------------------------------------------
    def insert(self, entry: Entry) -> Optional[Entry]:
        """Insert at MRU; returns the evicted LRU entry when full.

        With ``lines == 0`` the buffer is absent: the entry itself is
        returned, i.e. "evicted immediately".
        """
        if self.lines == 0:
            return entry
        entries = self._set_of(entry[ADDR])
        evicted = entries.pop() if len(entries) >= self.ways else None
        entries.insert(0, entry)
        return evicted

    def evict_lru_prefetched(self, set_hint: int) -> Optional[Entry]:
        """Remove the LRU *prefetched* entry (prefetch admission rule).

        Section 4.4: once the maximum number of prefetched lines is
        reached, "a prefetched line preferably replaces other prefetched
        lines".  ``set_hint`` selects the set for set-associative buffers.
        """
        entries = self._sets[set_hint % self.n_sets]
        for i in range(len(entries) - 1, -1, -1):
            if entries[i][PREFETCHED]:
                return entries.pop(i)
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, line_address: int) -> bool:
        return self.find(line_address) is not None

    def prefetched_count(self) -> int:
        return sum(
            1 for s in self._sets for entry in s if entry[PREFETCHED]
        )

    def entries(self) -> List[Entry]:
        """All entries (testing hook, no particular global order)."""
        return [entry for s in self._sets for entry in s]

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
