"""Declarative cache configuration specs.

A :class:`CacheSpec` is a frozen, picklable, hashable *description* of a
cache configuration: a registered ``kind`` (the name of a builder in
:mod:`repro.core.presets`) plus a canonicalised tuple of keyword
parameters.  Specs are what the sweep engine ships to worker processes
(closures and ``functools.partial`` objects over local state do not
pickle reliably) and what the on-disk result cache keys on (a spec has a
stable :meth:`fingerprint`, a callable does not).

Construction goes through :meth:`CacheSpec.of`, which validates the kind
and parameter names eagerly::

    spec = CacheSpec.of("soft", virtual_line_size=128)
    model = spec.build()          # a fresh SoftwareAssistedCache

``to_dict``/``from_dict`` give a JSON-safe round-trip (``MemoryTiming``
values are encoded structurally), used by the result cache and by tests.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Dict, Tuple

from ..errors import ConfigError
from ..sim.timing import MemoryTiming

#: kind name -> builder callable (populated by repro.core.presets).
_BUILDERS: Dict[str, Callable[..., Any]] = {}


def stable_fingerprint(payload: Dict[str, Any]) -> str:
    """sha256 hex of the canonical JSON encoding of ``payload``.

    The one fingerprinting convention shared by every content-addressed
    key in the project (cache specs, telemetry specs): sorted keys, no
    whitespace, so logically equal payloads hash identically.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def register_kind(kind: str, builder: Callable[..., Any]) -> None:
    """Register a spec kind; ``builder(**params)`` must return a model."""
    if not kind:
        raise ConfigError("spec kind must be a non-empty string")
    _BUILDERS[kind] = builder


def registered_kinds() -> Tuple[str, ...]:
    """All registered kinds, sorted (ensures presets are loaded)."""
    _ensure_builders()
    return tuple(sorted(_BUILDERS))


def _ensure_builders() -> None:
    # The builders live in repro.core.presets, which imports this module
    # to register them — so the import must stay lazy.
    if not _BUILDERS:
        from . import presets  # noqa: F401  (import registers the kinds)


def _builder(kind: str) -> Callable[..., Any]:
    _ensure_builders()
    try:
        return _BUILDERS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown cache spec kind {kind!r}; known: {sorted(_BUILDERS)}"
        ) from None


@dataclass(frozen=True)
class CacheSpec:
    """Frozen description of one cache configuration."""

    kind: str
    #: Canonical (sorted) tuple of ``(name, value)`` parameter pairs.
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Canonicalise so equality/hash/fingerprint ignore keyword order.
        object.__setattr__(
            self, "params", tuple(sorted(tuple(p) for p in self.params))
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, kind: str, **params: Any) -> "CacheSpec":
        """Validated construction: the kind and every parameter name must
        exist in the builder's signature."""
        builder = _builder(kind)
        signature = inspect.signature(builder)
        accepts_any = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        unknown = [p for p in params if p not in signature.parameters]
        if unknown and not accepts_any:
            raise ConfigError(
                f"spec kind {kind!r} has no parameter(s) {sorted(unknown)}; "
                f"accepts: {sorted(signature.parameters)}"
            )
        return cls(kind, tuple(params.items()))

    def derive(self, **changes: Any) -> "CacheSpec":
        """A modified copy (sweeps change one knob at a time)."""
        merged = dict(self.params)
        merged.update(changes)
        return CacheSpec.of(self.kind, **merged)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self):
        """Construct a fresh cache model from this spec."""
        return _builder(self.kind)(**self.param_dict())

    def label(self) -> str:
        """Short human-readable description."""
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"

    # ------------------------------------------------------------------
    # Serialisation / fingerprinting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary form (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "params": {k: _encode_value(v) for k, v in self.params},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CacheSpec":
        try:
            kind = payload["kind"]
            params = payload.get("params", {})
        except (TypeError, KeyError) as error:
            raise ConfigError(f"malformed cache spec payload: {payload!r}") from error
        return cls.of(
            kind, **{k: _decode_value(v) for k, v in params.items()}
        )

    def fingerprint(self) -> str:
        """Stable content hash (hex) — the result-cache key component."""
        return stable_fingerprint(self.to_dict())

    def __str__(self) -> str:
        return self.label()


def _encode_value(value: Any) -> Any:
    if isinstance(value, MemoryTiming):
        return {
            "__type__": "MemoryTiming",
            **{f.name: getattr(value, f.name) for f in dataclass_fields(value)},
        }
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise ConfigError(
        f"cache spec parameter value {value!r} is not JSON-serialisable"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get("__type__") != "MemoryTiming":
            raise ConfigError(f"unknown encoded spec value: {value!r}")
        kwargs = {k: v for k, v in value.items() if k != "__type__"}
        return MemoryTiming(**kwargs)
    return value
