"""Pipelined multi-process streaming engine.

The serial streamed fast path (:func:`repro.sim.fast
.simulate_fast_stream`) runs chunk read → decode → sort/scan → carry →
timing in one process.  Only the *carry* steps are inherently
sequential: the functional carry (per-set residency) and the timing
carry (write buffer, clock) each need the previous chunk's outcome.
Everything upstream of them is per-chunk pure — and that is where the
time goes (store read, fingerprint verify, zlib decode, the stable
argsort and the group-by scan).

This module splits the batch kernels at exactly that seam
(:func:`repro.sim.fast._dm_chunk_scan` / ``_dm_apply_carry`` for
direct-mapped geometries, ``_assoc_chunk_scan`` / ``_assoc_apply_carry``
for k-way LRU — the serial path composes the same two halves, so every
existing parity test exercises the split):

.. code-block:: text

    task queue (chunk indices, bounded)
        │
        ├── worker 0 ─┐  read → verify → decode → argsort → scan
        ├── worker 1 ─┤  (carry-free; no ordering constraint)
        └── worker N ─┘
        │
    result queue + shared-memory slabs (bounded ⇒ backpressure)
        │
    main process, chunks reassembled in trace order:
        apply carry → chunk timing → counters / telemetry
        (the sequential critical path)

Workers receive chunk *indices*, never chunk data: the stream is
picklable (store-backed workers page their own chunks in; trace-backed
streams ride fork's copy-on-write).  Results travel through a pool of
main-owned :class:`~multiprocessing.shared_memory.SharedMemory` slabs —
a worker blocks for a free slab, which, together with the bounded
queues, caps in-flight chunks at O(workers) regardless of how far the
pool runs ahead.  Payloads that outgrow their slab (or platforms
without shared memory) fall back to plain queue pickling.

Reassembly is strictly in chunk order, and the main process applies the
identical carry/timing code the serial path uses — so counters, final
model state and per-reference telemetry are bit-identical to the serial
engines for every accepted config.  :func:`pipeline_refusal` mirrors
``fast_refusal``: configurations whose kernels have no carry-free half
(the assisted models, whose walkers are event-sequential) refuse with
the stable ``pipeline-assisted`` code.  (Set-associative plain
write-back configs used to refuse as ``pipeline-assoc``; their scan is
now split like the direct-mapped one and the code is retired.)

``REPRO_PIPELINE_WORKERS`` supplies the ambient worker count
(:func:`resolve_workers` mirrors ``resolve_jobs``); a worker raising or
dying mid-chunk surfaces as :class:`PipelineError` in the caller.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import traceback
from typing import Optional

import numpy as np

from ..errors import ConfigError, ReproError

__all__ = [
    "MAX_PIPELINE_WORKERS",
    "PipelineError",
    "pipeline_refusal",
    "resolve_workers",
    "simulate_pipeline",
]

#: Hard ceiling on the worker count (mirrors the read-ahead clamp).
MAX_PIPELINE_WORKERS = 64

#: Slabs per worker: one being filled, one in flight to the main loop.
_SLABS_PER_WORKER = 2

#: Main-loop poll interval while waiting on results (liveness checks).
_POLL_SECONDS = 1.0


class PipelineError(ReproError):
    """A pipeline worker failed (raised, or died without reporting)."""


def resolve_workers(workers=None) -> int:
    """Resolve the pipeline worker count.

    Explicit argument > ``REPRO_PIPELINE_WORKERS`` > 1 (serial).
    ``0`` or ``"auto"`` means one worker per CPU; values are clamped to
    :data:`MAX_PIPELINE_WORKERS`.  Worker counts <= 1 mean the serial
    streamed path.
    """
    if workers is None:
        raw = os.environ.get("REPRO_PIPELINE_WORKERS", "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            workers = 0
        else:
            try:
                workers = int(text)
            except ValueError:
                raise ConfigError(
                    f"pipeline workers must be an integer >= 0 or "
                    f"'auto': {workers!r}"
                ) from None
    if workers < 0:
        raise ConfigError(f"pipeline workers must be >= 0: {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return min(workers, MAX_PIPELINE_WORKERS)


def pipeline_refusal(model, reset: bool = True, warmup_refs: int = 0):
    """Why the pipelined engine cannot run this simulation (None = can).

    Strictly stricter than :func:`repro.sim.engine.fast_refusal`: any
    fast-engine refusal applies verbatim, and on top of it the kernels
    must have a carry-free worker half — true of every plain write-back
    geometry (direct-mapped and k-way LRU alike), but not of the
    assisted walkers, which are event-sequential.
    """
    from ..sim.engine import EngineRefusal, fast_refusal
    from ..sim.fast_soft import is_assisted

    refusal = fast_refusal(model, reset=reset, warmup_refs=warmup_refs)
    if refusal is not None:
        return refusal
    if is_assisted(model):
        return EngineRefusal(
            "pipeline-assisted",
            "assisted configurations walk assist events sequentially",
        )
    return None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _chunk_payload(stream, index, line_shift, n_sets, ways, probed):
    """Everything the main loop needs about one chunk, carry-free.

    Runs on a worker: pages the chunk in (store read + verify + decode)
    and performs the stable sort and the geometry's group-by scan
    (direct-mapped or set-associative).  The payload is a plain
    picklable dict of numpy arrays.
    """
    from ..sim.fast import _assoc_chunk_scan, _dm_chunk_scan

    chunk = stream.chunk(index)
    n = len(chunk)
    if n == 0:
        return {"n": 0}
    la = chunk.addresses >> line_shift
    sets = la % n_sets
    scan = (
        _dm_chunk_scan(la, sets, chunk.is_write, chunk.temporal)
        if ways == 1
        else _assoc_chunk_scan(la, sets, chunk.is_write, chunk.temporal)
    )
    payload = {
        "n": n,
        "scan": scan,
        "gaps": chunk.gaps,
        "tail_la": int(la[-1]),
    }
    if probed:
        payload["columns"] = (
            chunk.addresses, chunk.is_write, chunk.temporal,
            chunk.spatial, chunk.ref_ids,
        )
    return payload


def _attach_slab(name):
    """Attach to a main-owned shared-memory slab (fork context: the
    resource tracker is shared with the parent, so attaching here never
    double-registers cleanup)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_loop(
    stream, line_shift, n_sets, ways, probed,
    task_queue, result_queue, slab_queue, slab_bytes,
):
    """Worker process body: pull chunk indices until the sentinel.

    Results ship through a shared-memory slab when one is configured
    and the payload fits, else straight through the result queue.
    Failures are reported as ``("error", index, traceback)`` — the main
    loop turns them into :class:`PipelineError`.
    """
    slabs = {}
    try:
        while True:
            index = task_queue.get()
            if index is None:
                break
            slab_name = None
            try:
                payload = _chunk_payload(
                    stream, index, line_shift, n_sets, ways, probed
                )
                blob = pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL
                )
                if slab_queue is not None:
                    slab_name = slab_queue.get()
                if slab_name is not None and len(blob) <= slab_bytes:
                    slab = slabs.get(slab_name)
                    if slab is None:
                        slab = slabs[slab_name] = _attach_slab(slab_name)
                    slab.buf[: len(blob)] = blob
                    result_queue.put(("shm", index, slab_name, len(blob)))
                    slab_name = None  # ownership passed to main
                else:
                    result_queue.put(("raw", index, blob))
            except Exception:
                result_queue.put(
                    ("error", index, traceback.format_exc())
                )
            finally:
                if slab_name is not None:
                    slab_queue.put(slab_name)
    finally:
        for slab in slabs.values():
            slab.close()


# ----------------------------------------------------------------------
# Main side
# ----------------------------------------------------------------------

def _slab_pool(n_slabs, slab_bytes):
    """Create the shared-memory slab pool, or None when unavailable.

    Slabs are created (and eventually unlinked) by the main process
    only; workers merely attach.  Any failure — no /dev/shm, exotic
    platform — degrades to queue pickling.
    """
    try:
        from multiprocessing import shared_memory

        slabs = {}
        for _ in range(n_slabs):
            slab = shared_memory.SharedMemory(create=True, size=slab_bytes)
            slabs[slab.name] = slab
        return slabs
    except Exception:
        return None


def _iter_payloads(
    stream, line_shift, n_sets, ways, probed, workers
):
    """Yield per-chunk payload dicts in strict trace order.

    The generator owns the pool: it spawns workers (fork where
    available — trace-backed streams then ride copy-on-write), feeds
    the task queue, reassembles out-of-order results, and tears
    everything down on exit or error.  Worker exceptions and silent
    worker deaths raise :class:`PipelineError`.  In-flight chunks stay
    O(workers): workers block for a free slab (or a result-queue slot
    on the fallback path) before scanning the next chunk.
    """
    n_chunks = stream.n_chunks
    if n_chunks == 0:
        return

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    workers = min(workers, n_chunks)
    # Generous per-chunk payload bound: scan arrays + gaps + group
    # metadata come to well under 64 bytes/ref, plus the probed columns.
    per_ref = 160 if probed else 80
    slab_bytes = stream.chunk_refs * per_ref + (1 << 16)
    slabs = _slab_pool(workers * _SLABS_PER_WORKER, slab_bytes)

    task_queue = ctx.Queue()
    result_queue = ctx.Queue(maxsize=workers * _SLABS_PER_WORKER + 2)
    slab_queue = None
    if slabs is not None:
        slab_queue = ctx.Queue()
        for name in slabs:
            slab_queue.put(name)

    for index in range(n_chunks):
        task_queue.put(index)
    for _ in range(workers):
        task_queue.put(None)

    processes = [
        ctx.Process(
            target=_worker_loop,
            args=(
                stream, line_shift, n_sets, ways, probed,
                task_queue, result_queue, slab_queue, slab_bytes,
            ),
            daemon=True,
        )
        for _ in range(workers)
    ]
    try:
        for process in processes:
            process.start()

        pending = {}
        next_index = 0
        while next_index < n_chunks:
            if next_index in pending:
                yield pending.pop(next_index)
                next_index += 1
                continue
            try:
                message = result_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                dead = [
                    process for process in processes
                    if not process.is_alive() and process.exitcode
                ]
                if dead:
                    raise PipelineError(
                        f"pipeline worker died with exit code "
                        f"{dead[0].exitcode} before chunk {next_index} "
                        f"arrived"
                    ) from None
                continue
            kind = message[0]
            if kind == "error":
                _, index, text = message
                raise PipelineError(
                    f"pipeline worker failed on chunk {index}:\n{text}"
                )
            if kind == "shm":
                _, index, slab_name, size = message
                slab = slabs[slab_name]
                payload = pickle.loads(slab.buf[:size])
                slab_queue.put(slab_name)
            else:
                _, index, blob = message
                payload = pickle.loads(blob)
            pending[index] = payload
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
        for q in (task_queue, result_queue, slab_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        if slabs is not None:
            for slab in slabs.values():
                slab.close()
                try:
                    slab.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


def simulate_pipeline(model, stream, workers: int, probes=None):
    """Run a stream through the pipelined fast engine.

    The caller (``driver.simulate_stream``) has already checked
    :func:`pipeline_refusal`; ``model`` is a cold plain write-back
    cache, direct-mapped or k-way LRU.  Counters, final model state and
    telemetry are bit-identical to :func:`repro.sim.fast
    .simulate_fast_stream` — the sequential consumption below *is* that
    function's loop, with the carry-free half of each chunk farmed out.
    """
    from ..sim.fast import (
        _assoc_apply_carry, _chunk_timing, _dm_apply_carry,
        _per_ref_cycles,
    )
    from ..sim.write_buffer import WriteBuffer

    model.reset()
    stats = model.stats
    stats.trace = stream.name
    stats.engine = "fast"

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    line_shift = geometry.line_shift
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8
    tracks_temporal = model._entry_has_temporal
    temporal_priority = bool(getattr(model, "_temporal_priority", False))

    tags = np.full(n_sets, -1, dtype=np.int64)
    dirty = np.zeros(n_sets, dtype=bool)
    temporal_bits = np.zeros(n_sets, dtype=bool)
    sets_state = [[] for _ in range(n_sets)] if ways != 1 else None

    write_buffer = WriteBuffer(
        model.write_buffer.entries, model.write_buffer.drain_cycles
    )
    first = True
    prev_base = 0
    prev_miss = False
    cycles = 0
    stalls = 0
    refs = 0
    hits_total = 0
    writebacks = 0
    ready_at = 0
    bus_free_at = 0
    last_hit = True
    last_la = 0

    for payload in _iter_payloads(
        stream, line_shift, n_sets, ways, probes is not None, workers
    ):
        n = payload["n"]
        if n == 0:
            continue
        gaps = payload["gaps"]
        if ways == 1:
            hits, victim_dirty = _dm_apply_carry(
                payload["scan"], tags, dirty, temporal_bits
            )
        else:
            hits, victim_dirty = _assoc_apply_carry(
                payload["scan"], ways, temporal_priority, sets_state
            )
        per_ref_stalls = (
            np.zeros(n, dtype=np.int64) if probes is not None else None
        )
        timed = _chunk_timing(
            gaps, hits, victim_dirty, hit_time, penalty,
            write_buffer, first, prev_base, prev_miss,
            per_ref_stalls=per_ref_stalls,
        )
        chunk_cycles, chunk_stalls, prev_base, ready_at, chunk_bus = timed
        if probes is not None:
            from ..telemetry.events import TelemetryBatch

            addresses, is_write, temporal, spatial, ref_ids = (
                payload["columns"]
            )
            miss = ~hits
            cycles_col = _per_ref_cycles(
                gaps, hits, per_ref_stalls, hit_time, penalty, first=first,
            )
            assert int(cycles_col.sum()) == chunk_cycles, (
                "per-reference cycle reconstruction disagrees with the "
                "chunk timing pass"
            )
            probes.on_batch(
                TelemetryBatch(
                    start=refs,
                    addresses=addresses,
                    is_write=is_write,
                    temporal=temporal,
                    spatial=spatial,
                    gaps=gaps,
                    miss=miss,
                    assist_hit=np.zeros(n, dtype=bool),
                    cycles=cycles_col,
                    words=miss.astype(np.int64) * words_per_line,
                    wb_stall=per_ref_stalls,
                    ref_ids=ref_ids,
                )
            )
        cycles += chunk_cycles
        stalls += chunk_stalls
        if chunk_bus is not None:
            bus_free_at = chunk_bus
        refs += n
        hits_total += int(hits.sum())
        writebacks += int(victim_dirty.sum())
        first = False
        last_hit = bool(hits[-1])
        prev_miss = not last_hit
        last_la = payload["tail_la"]

    stats.refs = refs
    stats.hits_main = hits_total
    stats.misses = refs - hits_total
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = writebacks
    stats.write_buffer_stalls = stalls
    stats.cycles = cycles

    model.write_buffer = write_buffer
    model._ready_at = ready_at
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = bus_free_at
    if refs:
        model.last_fetch = [] if last_hit else [last_la]
    if ways == 1:
        model._tags = tags.tolist()
        model._dirty = dirty.tolist()
        if tracks_temporal:
            model._temporal = temporal_bits.tolist()
    else:
        model._sets = [
            [
                entry if tracks_temporal else entry[:2]
                for entry in entries
            ]
            for entries in sets_state
        ]
    stats.check()
    if probes is not None:
        probes.finish(stats)
    return stats
