"""Trace-corpus registry: fingerprinted workloads as first-class inputs.

Scenario diversity was bounded by the seven synthetic kernels in
:mod:`repro.workloads`; this module makes *corpora* of traces a managed
input instead (the "Limited Associativity Makes Concurrent Software
Caches a Breeze" pattern of treating workload sets as fingerprinted,
registry-managed artefacts).  A corpus is a manifest file naming two
kinds of entries:

``external``
    A din/bin address trace on disk (``path`` relative to the manifest).
    Its identity is the SHA-256 of the **source bytes** plus the
    ingestion parameters (format, gap, tag annotation) — re-ingesting
    the same file with the same parameters can never yield a different
    workload, and a silently modified source file fails ``verify``.
``synthetic``
    A generator from the analytic-oracle registry
    (:data:`repro.metrics.analytic.DISTRIBUTIONS`: ``irm``, ``scan``,
    ``blocked``) plus its parameters.  Identity is the generated trace's
    content fingerprint (generation is seeded and deterministic), which
    also means every synthetic corpus entry carries closed-form expected
    counters for free.

Manifests are written as canonical JSON; TOML manifests are *read* when
the interpreter ships :mod:`tomllib` (3.11+) — older interpreters get a
clear error naming the JSON alternative rather than an ImportError.

Entries materialise lazily into chunked v2 stores
(:class:`~repro.memtrace.store.TraceStore`) under the result-cache root
at ``<cache_root>/corpus/stores/<fingerprint12>-<name>/``.  Publication
is atomic (build in a ``.tmp-*`` sibling, ``os.replace`` into place), so
concurrent fetchers race benignly; a fetch hit refreshes the store's
mtime the same way :meth:`ResultCache.get <repro.harness.parallel
.ResultCache.get>` refreshes entry mtimes.  The result cache's
prune/clear enumeration deliberately skips the ``corpus/`` subtree
(see ``ResultCache._entries``), so ``repro cache prune`` can never evict
a chunk out from under a registered store.

Corpus-wide sweeps (:func:`run_corpus`, ``repro corpus run``) stream
every entry through the ordinary sweep machinery — the same
``simulate_cell`` worker path and :class:`ResultCache` keying that
``repro run`` and ``repro serve`` use — and aggregate per-trace rows
into geometric-mean summary rows via the degeneracy-tolerant
:func:`~repro.metrics.summary.geomean`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ConfigError, TraceError
from ..memtrace.store import TraceStore
from . import TraceStream, is_store

MANIFEST_VERSION = 1

#: Ingestion parameters an external entry may carry (fingerprinted).
_EXTERNAL_PARAMS = ("format", "gap", "annotate")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ConfigError(
            f"corpus entry name {name!r} must be alphanumeric with "
            "._- separators (it becomes a directory name)"
        )
    return name


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def corpus_root(cache_root: Union[str, os.PathLike, None] = None) -> Path:
    """The corpus area under the result-cache root (never pruned)."""
    from ..harness.parallel import default_cache_dir

    base = Path(cache_root) if cache_root is not None else default_cache_dir()
    return base / "corpus"


class CorpusEntry:
    """One registered trace: definition plus content fingerprint."""

    def __init__(self, name: str, payload: Dict) -> None:
        self.name = _check_name(name)
        kind = payload.get("kind")
        if kind not in ("external", "synthetic"):
            raise ConfigError(
                f"corpus entry {name!r} has unknown kind {kind!r} "
                "(expected 'external' or 'synthetic')"
            )
        self.kind = kind
        self.payload = dict(payload)
        if kind == "external" and not payload.get("path"):
            raise ConfigError(f"external entry {name!r} needs a 'path'")
        if kind == "synthetic" and not payload.get("generator"):
            raise ConfigError(f"synthetic entry {name!r} needs a 'generator'")

    # -- identity ------------------------------------------------------
    @property
    def sha256(self) -> Optional[str]:
        return self.payload.get("sha256")

    def source_path(self, base: Path) -> Path:
        raw = Path(self.payload["path"])
        return raw if raw.is_absolute() else base / raw

    def distribution(self):
        """The analytic distribution behind a synthetic entry."""
        from ..metrics.analytic import make_distribution

        if self.kind != "synthetic":
            raise ConfigError(f"entry {self.name!r} is not synthetic")
        params = dict(self.payload.get("params", {}))
        return make_distribution(self.payload["generator"], **params)

    def fingerprint(self, base: Path) -> str:
        """Recompute the content fingerprint from first principles.

        External: SHA-256 over the source bytes and the canonical
        ingestion parameters.  Synthetic: the deterministic generated
        trace's own content fingerprint.
        """
        if self.kind == "synthetic":
            return self.distribution().trace().fingerprint()
        source = self.source_path(base)
        if not source.is_file():
            raise TraceError(
                f"entry {self.name!r}: source trace {source!s} is missing"
            )
        params = {
            key: self.payload[key]
            for key in _EXTERNAL_PARAMS
            if key in self.payload
        }
        material = (
            f"{_sha256_file(source)}\n"
            f"{json.dumps(params, sort_keys=True)}"
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def as_manifest(self) -> Dict:
        return dict(self.payload)


class Corpus:
    """A manifest of registered traces plus its lazy store area."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        entries: Optional[Dict[str, CorpusEntry]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.base = self.path.resolve().parent
        self.name = name or self.path.stem
        self.entries: Dict[str, CorpusEntry] = entries or {}

    # -- manifest I/O --------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Corpus":
        path = Path(path)
        if not path.is_file():
            raise ConfigError(f"corpus manifest not found: {path!s}")
        if path.suffix.lower() == ".toml":
            payload = cls._load_toml(path)
        else:
            try:
                payload = json.loads(path.read_text())
            except ValueError as error:
                raise ConfigError(
                    f"corpus manifest {path!s} is not valid JSON: {error}"
                ) from None
        if not isinstance(payload, dict):
            raise ConfigError(
                f"corpus manifest {path!s} must be an object/table"
            )
        version = payload.get("version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"corpus manifest {path!s} has version {version!r}; this "
                f"build reads version {MANIFEST_VERSION}"
            )
        traces = payload.get("traces", {})
        if not isinstance(traces, dict):
            raise ConfigError(
                f"corpus manifest {path!s}: 'traces' must be a table"
            )
        entries = {
            name: CorpusEntry(name, entry) for name, entry in traces.items()
        }
        return cls(path, entries=entries, name=payload.get("name"))

    @staticmethod
    def _load_toml(path: Path) -> Dict:
        try:
            import tomllib  # Python 3.11+
        except ImportError:
            raise ConfigError(
                f"reading TOML manifest {path!s} needs Python 3.11+ "
                "(tomllib); use the JSON manifest format instead"
            ) from None
        try:
            with open(path, "rb") as handle:
                return tomllib.load(handle)
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(
                f"corpus manifest {path!s} is not valid TOML: {error}"
            ) from None

    def save(self) -> None:
        """Write the canonical JSON manifest (atomic replace)."""
        if self.path.suffix.lower() == ".toml":
            raise ConfigError(
                "corpus manifests are written as JSON; TOML is read-only "
                f"(save {self.path.with_suffix('.json')!s} instead)"
            )
        payload = {
            "version": MANIFEST_VERSION,
            "name": self.name,
            "traces": {
                name: entry.as_manifest()
                for name, entry in sorted(self.entries.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-", suffix=".json"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    # -- registration --------------------------------------------------
    def _register(self, entry: CorpusEntry) -> CorpusEntry:
        if entry.name in self.entries:
            raise ConfigError(
                f"corpus already has an entry named {entry.name!r} "
                "(remove it from the manifest first to re-register)"
            )
        entry.payload["sha256"] = entry.fingerprint(self.base)
        self.entries[entry.name] = entry
        return entry

    def add_external(
        self,
        name: str,
        source: Union[str, os.PathLike],
        fmt: Optional[str] = None,
        gap: int = 1,
        annotate: bool = False,
    ) -> CorpusEntry:
        """Register a din/bin trace file (stored relative when possible)."""
        source = Path(source)
        try:
            recorded = str(source.resolve().relative_to(self.base))
        except ValueError:
            recorded = str(source.resolve())
        payload: Dict = {"kind": "external", "path": recorded}
        if fmt is not None:
            payload["format"] = fmt
        if gap != 1:
            payload["gap"] = gap
        if annotate:
            payload["annotate"] = True
        return self._register(CorpusEntry(name, payload))

    def add_synthetic(self, name: str, generator: str, **params) -> CorpusEntry:
        """Register a distribution from the analytic-oracle registry."""
        entry = CorpusEntry(
            name,
            {"kind": "synthetic", "generator": generator, "params": params},
        )
        entry.distribution()  # validate generator + params before recording
        return self._register(entry)

    def _get(self, name: str) -> CorpusEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise ConfigError(
                f"corpus {self.name!r} has no entry {name!r}; "
                f"known: {sorted(self.entries)}"
            ) from None

    # -- stores --------------------------------------------------------
    def store_dir(
        self, name: str, cache_root: Union[str, os.PathLike, None] = None
    ) -> Path:
        entry = self._get(name)
        if not entry.sha256:
            raise ConfigError(
                f"entry {name!r} has no recorded fingerprint; "
                "re-add it or run verify to diagnose"
            )
        return (
            corpus_root(cache_root)
            / "stores"
            / f"{entry.sha256[:12]}-{entry.name}"
        )

    def fetch(
        self,
        name: str,
        cache_root: Union[str, os.PathLike, None] = None,
        chunk_refs: Optional[int] = None,
    ) -> TraceStore:
        """Materialise one entry as a chunked store (lazy, atomic).

        A present store is a hit: its manifest mtime is refreshed (so
        any age-based housekeeping tracks *use*) and it is opened
        as-is — the fingerprint in the directory name guarantees it
        matches the manifest entry.  Otherwise the trace is ingested or
        generated into a ``.tmp-*`` sibling and atomically renamed into
        place; a concurrent fetcher that wins the race is detected and
        its store used.
        """
        entry = self._get(name)
        dest = self.store_dir(name, cache_root)
        if is_store(dest):
            try:
                os.utime(dest / "manifest.json")
            except OSError:
                pass
            return TraceStore.open(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(dir=dest.parent, prefix=f".tmp-{entry.name}-")
        )
        try:
            self._materialise(entry, tmp, chunk_refs)
            try:
                os.replace(tmp, dest)
            except OSError:
                # A concurrent fetcher published first; use its store.
                if not is_store(dest):
                    raise
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return TraceStore.open(dest)

    def _materialise(
        self, entry: CorpusEntry, out: Path, chunk_refs: Optional[int]
    ) -> None:
        from .ingest import DEFAULT_CHUNK_REFS, ingest_trace

        refs = chunk_refs or DEFAULT_CHUNK_REFS
        if entry.kind == "synthetic":
            trace = entry.distribution().trace()
            TraceStore.save(trace, out, chunk_refs=refs)
            return
        ingest_trace(
            entry.source_path(self.base),
            out,
            fmt=entry.payload.get("format"),
            name=entry.name,
            gap=entry.payload.get("gap", 1),
            annotate=bool(entry.payload.get("annotate", False)),
            chunk_refs=refs,
        )

    def open_stream(
        self,
        name: str,
        cache_root: Union[str, os.PathLike, None] = None,
    ) -> TraceStream:
        """Fetch (if needed) and open one entry as a TraceStream."""
        return TraceStream.from_store(self.fetch(name, cache_root))

    # -- verification --------------------------------------------------
    def verify(
        self,
        names: Optional[Sequence[str]] = None,
        cache_root: Union[str, os.PathLike, None] = None,
    ) -> List[Dict]:
        """Recompute every fingerprint and audit materialised stores.

        Returns one row per entry: ``{"name", "kind", "ok", "fetched",
        "problems": [...]}``.  Never raises on content problems — the
        CLI turns any ``ok=False`` row into a nonzero exit — but does
        raise :class:`~repro.errors.ConfigError` for unknown ``names``.
        """
        rows = []
        for name in names or sorted(self.entries):
            entry = self._get(name)
            problems = []
            recorded = entry.sha256
            if not recorded:
                problems.append("no recorded sha256 (incomplete manifest)")
            try:
                actual = entry.fingerprint(self.base)
            except (ConfigError, TraceError) as error:
                actual = None
                problems.append(str(error))
            if recorded and actual and recorded != actual:
                problems.append(
                    f"fingerprint drift: manifest {recorded[:12]} vs "
                    f"recomputed {actual[:12]} (source modified?)"
                )
            fetched = False
            if recorded:
                dest = (
                    corpus_root(cache_root)
                    / "stores"
                    / f"{recorded[:12]}-{entry.name}"
                )
                if is_store(dest):
                    fetched = True
                    try:
                        store = TraceStore.open(dest)
                        for _ in store.chunks(verify=True):
                            pass
                    except (TraceError, OSError, ValueError) as error:
                        problems.append(f"store corrupt: {error}")
            rows.append(
                {
                    "name": name,
                    "kind": entry.kind,
                    "ok": not problems,
                    "fetched": fetched,
                    "problems": problems,
                }
            )
        return rows


# ----------------------------------------------------------------------
# Corpus-wide sweeps
# ----------------------------------------------------------------------
def run_corpus(
    corpus: Corpus,
    presets: Sequence[str],
    jobs: Union[int, str, None] = None,
    engine: Optional[str] = None,
    cache: Union[str, os.PathLike, None, bool] = "auto",
    cache_root: Union[str, os.PathLike, None] = None,
    names: Optional[Sequence[str]] = None,
) -> Dict:
    """Sweep every corpus entry against every preset; summarise.

    Entries stream out-of-core through the ordinary sweep machinery —
    the same ``simulate_cell`` workers and result-cache keys as ``repro
    run`` and ``repro serve`` — so a repeated corpus run is all cache
    hits.  Returns the artifact payload: per-(trace, config) rows plus
    per-config geometric means over the corpus (degenerate metrics
    aggregate to ``None`` rather than aborting the report).
    """
    from ..harness.runner import run_sweep
    from ..metrics.summary import geomean
    from ..presets import spec as preset_spec

    if not presets:
        raise ConfigError("corpus run needs at least one preset")
    if not corpus.entries:
        raise ConfigError(f"corpus {corpus.name!r} has no entries")
    configs = {name: preset_spec(name) for name in presets}
    selected = list(names or sorted(corpus.entries))
    streams = {
        name: corpus.open_stream(name, cache_root) for name in selected
    }
    fingerprints = {
        name: stream.fingerprint() for name, stream in streams.items()
    }
    sweep = run_sweep(
        streams, configs, jobs=jobs, cache=cache, engine=engine
    )
    rows = []
    for trace_name in selected:
        for config_name in sweep.config_order:
            result = sweep.results[trace_name][config_name]
            rows.append(
                {
                    "trace": trace_name,
                    "fingerprint": fingerprints[trace_name],
                    "config": config_name,
                    "engine": result.engine,
                    "refs": result.refs,
                    "misses": result.misses,
                    "amat": result.amat,
                    "miss_ratio": result.miss_ratio,
                    "traffic": result.traffic,
                    "line_utilization": result.line_utilization,
                }
            )
    summary = {}
    for config_name in sweep.config_order:
        per_config = [row for row in rows if row["config"] == config_name]
        summary[config_name] = {
            metric: geomean(row[metric] for row in per_config)
            for metric in ("amat", "miss_ratio", "traffic")
        }
    return {
        "corpus": corpus.name,
        "manifest": str(corpus.path),
        "traces": selected,
        "configs": list(sweep.config_order),
        "rows": rows,
        "geomean": summary,
    }
