"""Streaming trace pipeline: bounded-memory trace iteration.

The simulation layers historically consumed a whole in-memory
:class:`~repro.memtrace.trace.Trace`.  :class:`TraceStream` is the
O(chunk) alternative both engines understand
(:func:`repro.sim.driver.simulate_stream`): a restartable iterator of
column-chunk ``Trace`` windows plus the trace-level metadata the
harness needs (name, length, content fingerprint).

A stream is backed either by

* a chunked on-disk :class:`~repro.memtrace.store.TraceStore` (the
  out-of-core case — chunks are read, verified and decoded one at a
  time, with an optional read-ahead thread overlapping decompression
  with simulation), or
* an in-memory ``Trace`` (windowed zero-copy views — useful for
  chunked/monolithic parity testing and for feeding the same code path
  everywhere).

Streams are picklable (the store backend ships only its path and
manifest), so sweep cells carrying a stream cross process-pool
boundaries without serialising trace data; each worker pages chunks in
itself.  ``TraceStream.fingerprint()`` equals the materialised trace's
``Trace.fingerprint()``, so the content-addressed result cache never
distinguishes a streamed trace from an in-memory one.

:mod:`repro.stream.ingest` converts external address traces (``din``
text and raw binary records) into v2 stores.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Iterator, Optional, Union

from ..errors import TraceError
from ..memtrace.store import DEFAULT_CHUNK_REFS, TraceStore, is_store
from ..memtrace.trace import Trace
from .pipeline import (
    MAX_PIPELINE_WORKERS,
    PipelineError,
    resolve_workers,
    simulate_pipeline,
)

__all__ = [
    "DEFAULT_CHUNK_REFS",
    "MAX_PIPELINE_WORKERS",
    "MAX_READAHEAD",
    "PipelineError",
    "TraceStream",
    "open_trace",
    "resolve_readahead",
    "resolve_workers",
    "simulate_pipeline",
]

#: Hard ceiling on the read-ahead queue depth.  Each buffered chunk
#: costs O(chunk_refs) memory, so an accidental ``REPRO_READAHEAD=1e9``
#: must not turn the bounded-memory path into an unbounded one.
MAX_READAHEAD = 64


def resolve_readahead(prefetch: Optional[int] = None) -> int:
    """Resolve the read-ahead depth: explicit > ``REPRO_READAHEAD`` > 1.

    ``0`` disables the read-ahead thread entirely; values are clamped to
    :data:`MAX_READAHEAD` so the queue stays bounded.
    """
    if prefetch is None:
        raw = os.environ.get("REPRO_READAHEAD", "").strip()
        if not raw:
            return 1
        try:
            prefetch = int(raw)
        except ValueError:
            raise TraceError(
                f"REPRO_READAHEAD must be an integer >= 0: {raw!r}"
            ) from None
    if prefetch < 0:
        raise TraceError(f"read-ahead depth must be >= 0: {prefetch}")
    return min(prefetch, MAX_READAHEAD)


class TraceStream:
    """A restartable, bounded-memory sequence of trace chunks.

    Construct with :meth:`from_store`, :meth:`from_trace` or
    :meth:`open`.  Iterating (or calling :meth:`chunks`) yields
    in-memory ``Trace`` windows in trace order; every call starts a
    fresh pass, so one stream can drive several simulations.
    """

    def __init__(
        self,
        store: Optional[TraceStore] = None,
        trace: Optional[Trace] = None,
        chunk_refs: int = DEFAULT_CHUNK_REFS,
    ) -> None:
        if (store is None) == (trace is None):
            raise TraceError(
                "TraceStream needs exactly one backend (store or trace)"
            )
        if chunk_refs < 1:
            raise TraceError(f"chunk_refs must be >= 1: {chunk_refs}")
        self._store = store
        self._trace = trace
        self._chunk_refs = store.chunk_refs if store is not None else chunk_refs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store: Union[TraceStore, str, os.PathLike]
    ) -> "TraceStream":
        """Stream an on-disk chunked store (path or open store)."""
        if not isinstance(store, TraceStore):
            store = TraceStore.open(store)
        return cls(store=store)

    @classmethod
    def from_trace(
        cls, trace: Trace, chunk_refs: int = DEFAULT_CHUNK_REFS
    ) -> "TraceStream":
        """Stream an in-memory trace as zero-copy windows."""
        return cls(trace=trace, chunk_refs=chunk_refs)

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "TraceStream":
        """Open any trace artefact as a stream.

        A v2 store directory streams out-of-core; a v1 ``.npz`` archive
        is materialised (that format cannot be read partially) and then
        windowed.
        """
        if is_store(path):
            return cls.from_store(path)
        from ..memtrace.io import load_trace

        return cls.from_trace(load_trace(path))

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        backend = self._store if self._store is not None else self._trace
        return backend.name

    @property
    def chunk_refs(self) -> int:
        return self._chunk_refs

    @property
    def n_chunks(self) -> int:
        if self._store is not None:
            return self._store.n_chunks
        n = len(self._trace)
        return (n + self._chunk_refs - 1) // self._chunk_refs

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._trace)

    def fingerprint(self) -> str:
        """Content hash of the full trace (== ``Trace.fingerprint()``)."""
        backend = self._store if self._store is not None else self._trace
        return backend.fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        source = (
            f"store={self._store.path}"
            if self._store is not None
            else "trace=in-memory"
        )
        return (
            f"TraceStream(name={self.name!r}, refs={len(self)}, "
            f"chunks={self.n_chunks}, {source})"
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _window(self, index: int) -> Trace:
        lo = index * self._chunk_refs
        hi = min(lo + self._chunk_refs, len(self._trace))
        trace = self._trace
        return Trace(
            trace.addresses[lo:hi],
            trace.is_write[lo:hi],
            trace.temporal[lo:hi],
            trace.spatial[lo:hi],
            trace.gaps[lo:hi],
            name=f"{trace.name}[{index}]",
            ref_ids=None if trace.ref_ids is None else trace.ref_ids[lo:hi],
        )

    def chunk(self, index: int, verify: bool = True) -> Trace:
        """Random access to one chunk window (store- or trace-backed).

        The pipelined streaming engine uses this to hand workers chunk
        *indices* instead of chunk data; each worker pages its own chunk
        in.  Equivalent to the ``index``-th item of :meth:`chunks`.
        """
        if not 0 <= index < self.n_chunks:
            raise TraceError(
                f"chunk index out of range: {index} (of {self.n_chunks})"
            )
        if self._store is None:
            return self._window(index)
        return self._store.chunk(index, verify=verify)

    def chunks(
        self, verify: bool = True, prefetch: Optional[int] = None
    ) -> Iterator[Trace]:
        """Yield the trace as in-memory chunk windows, in order.

        For store-backed streams ``prefetch`` chunks are decoded on a
        read-ahead thread while the caller consumes the current one
        (decompression releases the GIL), hiding I/O under simulation
        time; memory stays O(1 + prefetch) chunks.  The queue is always
        bounded: ``prefetch`` defaults to ``$REPRO_READAHEAD`` (or 1)
        and is clamped to :data:`MAX_READAHEAD`.  ``verify`` checks
        every chunk against its manifest fingerprint.
        """
        if self._store is None:
            for index in range(self.n_chunks):
                yield self._window(index)
            return
        store = self._store
        n = store.n_chunks
        prefetch = resolve_readahead(prefetch)
        if prefetch <= 0 or n <= 1:
            yield from store.chunks(verify=verify)
            return
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            pending = deque()
            upcoming = 0
            while upcoming < n and len(pending) <= prefetch:
                pending.append(pool.submit(store.chunk, upcoming, verify))
                upcoming += 1
            while pending:
                chunk = pending.popleft().result()
                if upcoming < n:
                    pending.append(pool.submit(store.chunk, upcoming, verify))
                    upcoming += 1
                yield chunk

    def __iter__(self) -> Iterator[Trace]:
        return self.chunks()

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def load(self) -> Trace:
        """The whole trace in memory (O(trace) — the escape hatch)."""
        if self._store is not None:
            return self._store.load()
        return self._trace


def open_trace(path: Union[str, os.PathLike]) -> TraceStream:
    """Module-level alias of :meth:`TraceStream.open` (CLI entry)."""
    return TraceStream.open(path)
