"""The unified run surface: one ``simulate()`` for every path.

Historically callers picked an entry point by import: ``sim.simulate``
for in-memory traces, ``sim.simulate_stream`` for out-of-core streams,
``telemetry.analyze`` for probed runs.  :func:`simulate` subsumes all
three behind one signature and dispatches on what it is given:

==============================  =======================================
argument                        dispatch
==============================  =======================================
``config`` is a CacheSpec       a fresh model is built
``config`` is a preset name     looked up in :data:`repro.presets.SPECS`
``config`` is a model           used as-is (warm state allowed)
``trace`` is a Trace            in-memory simulation
``trace`` is a stream / path    chunked out-of-core simulation
``telemetry=`` given            probed run returning a TelemetryReport
==============================  =======================================

The specialised entry points remain importable and behave exactly as
before — they are what this facade delegates to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .core.spec import CacheSpec
from .memtrace.trace import Trace
from .sim.result import SimResult


def _resolve_model(config):
    if isinstance(config, CacheSpec):
        return config.build()
    if isinstance(config, str):
        from . import presets

        return presets.spec(config).build()
    return config


def simulate(
    config,
    trace,
    reset: bool = True,
    warmup_refs: int = 0,
    *,
    engine: Optional[str] = None,
    probes=None,
    telemetry=None,
    pipeline: Optional[int] = None,
) -> Union[SimResult, "TelemetryReport"]:
    """Run one simulation, whatever the config and trace delivery.

    ``config`` is a :class:`~repro.core.spec.CacheSpec`, a registered
    preset name (``"soft"``), or an already-built model.  ``trace`` is
    an in-memory :class:`~repro.memtrace.trace.Trace`, a
    :class:`~repro.stream.TraceStream` (or any object with ``chunks()``),
    or a path to a stored trace (opened as a stream).

    Returns a :class:`~repro.sim.result.SimResult` — or, when
    ``telemetry=`` is given (a
    :class:`~repro.telemetry.TelemetrySpec`, or ``True`` for the
    default spec), a :class:`~repro.telemetry.TelemetryReport` whose
    ``.result`` carries the same counters.

    ``engine`` picks the simulation engine (``auto``/``reference``/
    ``fast``/``native`` — native is the compiled-C tier, built on
    demand when a system C compiler exists); when ``auto`` passes over
    a higher tier, the structured refusal is recorded on
    ``result.engine_refusal``.  ``reset=False`` and
    ``warmup_refs`` behave as in the specialised entry points (and are
    incompatible with probed runs, which need the full cold trace).

    ``pipeline`` is a worker count for the multi-process pipelined
    streaming engine (:mod:`repro.stream.pipeline`; ``0`` or ``"auto"``
    means one worker per CPU, default ``$REPRO_PIPELINE_WORKERS``).
    In-memory traces are windowed into a stream first, so every trace
    delivery can be pipelined; counts <= 1 keep the serial paths.
    """
    from .sim import driver

    model = _resolve_model(config)
    if isinstance(trace, (str, Path)):
        from .stream import open_trace

        trace = open_trace(trace)

    if telemetry is not None:
        from .telemetry import TelemetrySpec, analyze

        if probes is not None:
            raise ValueError(
                "pass either telemetry= (a spec) or probes= (built "
                "probes), not both"
            )
        if not reset or warmup_refs:
            raise ValueError(
                "telemetry runs need the full cold trace: reset=False / "
                "warmup_refs are not supported with telemetry="
            )
        spec = None if telemetry is True else telemetry
        if spec is not None and not isinstance(spec, TelemetrySpec):
            raise TypeError(
                f"telemetry= expects a TelemetrySpec or True, "
                f"got {type(telemetry).__name__}"
            )
        return analyze(model, trace, telemetry=spec, engine=engine)

    if isinstance(trace, Trace):
        if pipeline is not None:
            from .stream import TraceStream

            trace = TraceStream.from_trace(trace)
        else:
            return driver.simulate(
                model, trace, reset=reset, warmup_refs=warmup_refs,
                engine=engine, probes=probes,
            )
    return driver.simulate_stream(
        model, trace, reset=reset, warmup_refs=warmup_refs,
        engine=engine, probes=probes, workers=pipeline,
    )
