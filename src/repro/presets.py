"""The one place cache configurations are registered by name.

``SPECS`` maps every configuration selectable from the command line (and
from ``benchmarks/``) to a frozen, picklable :class:`~repro.core.spec
.CacheSpec`.  The CLI, the benchmark conftest and the experiment drivers
all consume this registry instead of keeping their own dicts::

    from repro import presets

    model = presets.build_config("soft")            # fresh model
    spec = presets.spec("soft", virtual_line_size=128)  # derived spec

Legacy factory-style access (``presets.standard()`` returning a model)
was removed after two release cycles of :class:`DeprecationWarning`;
build models from specs, or import :mod:`repro.core.presets` directly.
"""

from __future__ import annotations

from typing import Dict, List

from .core import presets as _factories
from .core.spec import CacheSpec, register_kind, registered_kinds
from .errors import ConfigError

__all__ = [
    "SPECS",
    "CacheSpec",
    "spec",
    "build_config",
    "config_names",
    "register_kind",
    "registered_kinds",
]

#: CLI name -> spec, in the paper's presentation order.
SPECS: Dict[str, CacheSpec] = {
    "standard": CacheSpec.of("standard"),
    "victim": CacheSpec.of("victim"),
    "temporal": CacheSpec.of("soft_temporal_only"),
    "spatial": CacheSpec.of("soft_spatial_only"),
    "soft": CacheSpec.of("soft"),
    "bypass": CacheSpec.of("bypass"),
    "bypass-buffer": CacheSpec.of("bypass_buffered"),
    "standard-prefetch": CacheSpec.of("standard_prefetch"),
    "soft-prefetch": CacheSpec.of("soft_prefetch"),
    "temporal-priority": CacheSpec.of("temporal_priority"),
}


def config_names() -> List[str]:
    """Registered configuration names, in presentation order."""
    return list(SPECS)


def spec(name: str, **overrides) -> CacheSpec:
    """The registered spec for ``name``, optionally with knob overrides."""
    try:
        base = SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown configuration {name!r}; known: {config_names()}"
        ) from None
    return base.derive(**overrides) if overrides else base


def build_config(name: str, **overrides):
    """A fresh cache model for a registered configuration name."""
    return spec(name, **overrides).build()


def __getattr__(name: str):
    if name in _factories.__all__:
        raise AttributeError(
            f"repro.presets.{name} was a deprecated factory import, removed "
            f"after its warning period; build models from specs (repro."
            f"presets.SPECS / CacheSpec.of({name!r})) or import repro.core."
            f"presets.{name} directly"
        )
    raise AttributeError(f"module 'repro.presets' has no attribute {name!r}")
