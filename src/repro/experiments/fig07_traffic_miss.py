"""Figure 7: performance of software-assisted caches (II).

* Figure 7a — memory traffic in words fetched per reference.  Virtual
  lines alone increase traffic; combined with the bounce-back cache the
  increase all but disappears (except TRF, whose short unaligned rows
  genuinely waste part of each virtual line).
* Figure 7b — miss ratio.  Up to a 62% reduction for MV in the paper;
  Soft never exceeds Standard's miss ratio.
"""

from __future__ import annotations

from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult
from .fig06_summary import SOFTWARE_CONTROL_CONFIGS


def traffic(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 7a: words fetched per reference."""
    sweep = run_sweep(suite_traces(scale, seed), SOFTWARE_CONTROL_CONFIGS)
    result = FigureResult(
        figure="fig7a",
        title="Memory traffic",
        series=list(SOFTWARE_CONTROL_CONFIGS),
        metric="words fetched / references",
    )
    for bench, row in sweep.metric("traffic").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def miss_ratios(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 7b: miss ratio under each flavour of software control."""
    sweep = run_sweep(suite_traces(scale, seed), SOFTWARE_CONTROL_CONFIGS)
    result = FigureResult(
        figure="fig7b",
        title="Miss ratio",
        series=list(SOFTWARE_CONTROL_CONFIGS),
        metric="misses / references",
    )
    for bench, row in sweep.metric("miss_ratio").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(traffic(scale).table())
    print()
    print(miss_ratios(scale).table(precision=4))


if __name__ == "__main__":  # pragma: no cover
    main()
