"""Figure 7: performance of software-assisted caches (II).

* Figure 7a — memory traffic in words fetched per reference.  Virtual
  lines alone increase traffic; combined with the bounce-back cache the
  increase all but disappears (except TRF, whose short unaligned rows
  genuinely waste part of each virtual line).
* Figure 7b — miss ratio.  Up to a 62% reduction for MV in the paper;
  Soft never exceeds Standard's miss ratio.
"""

from __future__ import annotations

from .common import ExperimentSpec, FigureResult, run_experiment
from .fig06_summary import SOFTWARE_CONTROL_CONFIGS

FIG7A = ExperimentSpec.create(
    "fig7a",
    "Memory traffic",
    SOFTWARE_CONTROL_CONFIGS,
    metric="traffic",
    metric_label="words fetched / references",
)

FIG7B = ExperimentSpec.create(
    "fig7b",
    "Miss ratio",
    SOFTWARE_CONTROL_CONFIGS,
    metric="miss_ratio",
    metric_label="misses / references",
)


def traffic(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 7a: words fetched per reference."""
    return run_experiment(FIG7A, scale=scale, seed=seed)


def miss_ratios(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 7b: miss ratio under each flavour of software control."""
    return run_experiment(FIG7B, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(traffic(scale).table())
    print()
    print(miss_ratios(scale).table(precision=4))


if __name__ == "__main__":  # pragma: no cover
    main()
