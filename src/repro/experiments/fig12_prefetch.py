"""Figure 12: prefetching through the bounce-back cache (section 4.4).

Four configurations: Standard, Standard + blind prefetch-on-miss, Soft,
and Soft + software-assisted progressive prefetching (only spatial-tagged
misses prefetch; a hit on a prefetched line in the bounce-back cache
promotes it and prefetches the next physical line).  The software
information suppresses most wrong predictions, and prefetching on top of
the full mechanism hides the compulsory/capacity misses of vector
accesses that even virtual lines must pay once.
"""

from __future__ import annotations

from ..core import presets
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult

PREFETCH_CONFIGS = {
    "Standard": presets.standard,
    "Stand.+Prefetch": presets.standard_prefetch,
    "Soft": presets.soft,
    "Soft+Prefetch": presets.soft_prefetch,
}


def prefetch_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 12: AMAT with and without prefetching."""
    sweep = run_sweep(suite_traces(scale, seed), PREFETCH_CONFIGS)
    result = FigureResult(
        figure="fig12",
        title="Prefetching",
        series=list(PREFETCH_CONFIGS),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(prefetch_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
