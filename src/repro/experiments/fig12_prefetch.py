"""Figure 12: prefetching through the bounce-back cache (section 4.4).

Four configurations: Standard, Standard + blind prefetch-on-miss, Soft,
and Soft + software-assisted progressive prefetching (only spatial-tagged
misses prefetch; a hit on a prefetched line in the bounce-back cache
promotes it and prefetches the next physical line).  The software
information suppresses most wrong predictions, and prefetching on top of
the full mechanism hides the compulsory/capacity misses of vector
accesses that even virtual lines must pay once.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from .common import ExperimentSpec, FigureResult, run_experiment

PREFETCH_CONFIGS = {
    "Standard": CacheSpec.of("standard"),
    "Stand.+Prefetch": CacheSpec.of("standard_prefetch"),
    "Soft": CacheSpec.of("soft"),
    "Soft+Prefetch": CacheSpec.of("soft_prefetch"),
}

FIG12 = ExperimentSpec.create("fig12", "Prefetching", PREFETCH_CONFIGS)


def prefetch_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 12: AMAT with and without prefetching."""
    return run_experiment(FIG12, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(prefetch_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
