"""Figure 6: performance of software-assisted caches (I).

* Figure 6a — AMAT of Standard / Soft-temporal-only / Soft-spatial-only
  / full Soft.  Expected shape: the bounce-back mechanism alone profits
  DYF, LIV, MV, SpMV; virtual lines alone are stronger for BDN, TRF,
  NAS, Slalom, MV, SpMV; the combination is (essentially) always best,
  and Soft never loses to Standard.
* Figure 6b — repartition of cache hits between the main cache and the
  bounce-back cache: most hits must stay main-cache hits (1 cycle), or
  the 3-cycle assist path would eat the gains.
"""

from __future__ import annotations

from ..core import presets
from ..harness.runner import run_sweep
from ..sim.driver import simulate
from ..workloads.registry import suite_traces
from .common import FigureResult

#: The four configurations of figures 6a / 7a / 7b, in paper order.
SOFTWARE_CONTROL_CONFIGS = {
    "Standard": presets.standard,
    "Temp only": presets.soft_temporal_only,
    "Spat only": presets.soft_spatial_only,
    "Soft": presets.soft,
}


def amat_breakdown(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 6a: AMAT under each flavour of software control."""
    sweep = run_sweep(suite_traces(scale, seed), SOFTWARE_CONTROL_CONFIGS)
    result = FigureResult(
        figure="fig6a",
        title="Performance of software control",
        series=list(SOFTWARE_CONTROL_CONFIGS),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def hit_repartition(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 6b: fraction of hits served by main vs bounce-back cache."""
    result = FigureResult(
        figure="fig6b",
        title="Repartition of cache hits (Soft configuration)",
        series=["main cache", "bounce-back cache"],
        metric="fraction of hits",
    )
    for name, trace in suite_traces(scale, seed).items():
        r = simulate(presets.soft(), trace)
        result.add(name, "main cache", r.main_hit_fraction)
        result.add(name, "bounce-back cache", r.assist_hit_fraction)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(amat_breakdown(scale).table())
    print()
    print(hit_repartition(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
