"""Figure 6: performance of software-assisted caches (I).

* Figure 6a — AMAT of Standard / Soft-temporal-only / Soft-spatial-only
  / full Soft.  Expected shape: the bounce-back mechanism alone profits
  DYF, LIV, MV, SpMV; virtual lines alone are stronger for BDN, TRF,
  NAS, Slalom, MV, SpMV; the combination is (essentially) always best,
  and Soft never loses to Standard.
* Figure 6b — repartition of cache hits between the main cache and the
  bounce-back cache: most hits must stay main-cache hits (1 cycle), or
  the 3-cycle assist path would eat the gains.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import ExperimentSpec, FigureResult, run_experiment

#: The four configurations of figures 6a / 7a / 7b, in paper order.
SOFTWARE_CONTROL_CONFIGS = {
    "Standard": CacheSpec.of("standard"),
    "Temp only": CacheSpec.of("soft_temporal_only"),
    "Spat only": CacheSpec.of("soft_spatial_only"),
    "Soft": CacheSpec.of("soft"),
}

FIG6A = ExperimentSpec.create(
    "fig6a", "Performance of software control", SOFTWARE_CONTROL_CONFIGS
)


def amat_breakdown(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 6a: AMAT under each flavour of software control."""
    return run_experiment(FIG6A, scale=scale, seed=seed)


def hit_repartition(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 6b: fraction of hits served by main vs bounce-back cache."""
    sweep = run_sweep(
        suite_traces(scale, seed), {"Soft": CacheSpec.of("soft")}
    )
    result = FigureResult(
        figure="fig6b",
        title="Repartition of cache hits (Soft configuration)",
        series=["main cache", "bounce-back cache"],
        metric="fraction of hits",
    )
    for name, row in sweep.results.items():
        r = row["Soft"]
        result.add(name, "main cache", r.main_hit_fraction)
        result.add(name, "bounce-back cache", r.assist_hit_fraction)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(amat_breakdown(scale).table())
    print()
    print(hit_repartition(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
