"""Figure 4: what the software instrumentation actually tags.

* Figure 4a — fraction of trace entries per tag combination.  The
  paper's reading: Perfect Club codes carry many untagged references
  (outside-loop references, CALL bodies, dusty-deck subscripts); the
  temporal bit stays under 30% everywhere but DYF; spatial tags dominate
  the numerical kernels.
* Figure 4b — the inter-reference time distribution used to synthesise
  issue times (measured with Spa in the paper; approximated by
  :data:`repro.memtrace.timing.FIG4B_DISTRIBUTION` here).  The driver
  recovers the histogram from a generated trace, validating the timing
  model round-trip.
"""

from __future__ import annotations

from ..memtrace.stats import TAG_CATEGORIES, gap_histogram, tag_profile
from ..memtrace.timing import FIG4B_DISTRIBUTION
from ..workloads.registry import suite_traces
from .common import FigureResult


def tag_fractions(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 4a: tag combination shares per benchmark."""
    result = FigureResult(
        figure="fig4a",
        title="Fraction of references with temporal and/or spatial tags",
        series=list(TAG_CATEGORIES),
        metric="fraction of trace entries",
    )
    for name, trace in suite_traces(scale, seed).items():
        profile = tag_profile(trace)
        for category in TAG_CATEGORIES:
            result.add(name, category, profile.fractions[category])
    return result


def time_distribution(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 4b: inter-reference gap histogram (model vs generated)."""
    result = FigureResult(
        figure="fig4b",
        title="Time distribution of load/store instructions",
        series=["model", "generated"],
        metric="fraction of references",
    )
    for value, probability in zip(
        FIG4B_DISTRIBUTION.values, FIG4B_DISTRIBUTION.probabilities
    ):
        result.add(f"{value} cycles", "model", float(probability))
    # Pool the whole suite, as the paper pools its Spa measurements.
    totals = {v: 0.0 for v in FIG4B_DISTRIBUTION.values}
    traces = suite_traces(scale, seed)
    grand = 0
    for trace in traces.values():
        histogram = gap_histogram(trace, FIG4B_DISTRIBUTION)
        for value, fraction in histogram.items():
            totals[value] += fraction * len(trace)
        grand += len(trace)
    for value, weighted in totals.items():
        result.add(f"{value} cycles", "generated", weighted / max(1, grand))
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(tag_fractions(scale).table())
    print()
    print(time_distribution(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
