"""Per-figure experiment drivers: one module per paper figure.

Each driver regenerates the rows/series of its figure as a
:class:`~repro.experiments.common.FigureResult`; the ``benchmarks/``
directory wires them into pytest-benchmark targets, and
``python -m repro.experiments`` prints the whole battery.
"""

from . import (
    ablations,
    attribution_study,
    fig01_locality,
    fig03_pollution,
    fig04_instrumentation,
    fig06_summary,
    fig07_traffic_miss,
    fig08_line_size,
    fig09_size_assoc,
    fig10_latency,
    fig11_blocking,
    fig12_prefetch,
    headroom_study,
    hierarchy_study,
    policy_study,
    related_work,
    transforms_study,
)
from .common import FigureResult

#: Every figure driver, in paper order: name -> zero-config callable.
ALL_FIGURES = {
    "fig1a": fig01_locality.reuse_distances,
    "fig1b": fig01_locality.vector_lengths,
    "fig3a": fig03_pollution.bypass_study,
    "fig3b": fig03_pollution.victim_study,
    "fig4a": fig04_instrumentation.tag_fractions,
    "fig4b": fig04_instrumentation.time_distribution,
    "fig6a": fig06_summary.amat_breakdown,
    "fig6b": fig06_summary.hit_repartition,
    "fig7a": fig07_traffic_miss.traffic,
    "fig7b": fig07_traffic_miss.miss_ratios,
    "fig8a": fig08_line_size.virtual_sweep,
    "fig8b": fig08_line_size.physical_sweep,
    "fig9a": fig09_size_assoc.cache_size_study,
    "fig9b": fig09_size_assoc.associativity_study,
    "fig10a": fig10_latency.kernel_study,
    "fig10b": fig10_latency.latency_sweep,
    "fig11a": fig11_blocking.block_size_sweep,
    "fig11b": fig11_blocking.copying_study,
    "fig12": fig12_prefetch.prefetch_study,
}

#: Studies beyond the paper's figures: §5 related-work comparisons and
#: the prose-claim ablations.
EXTENSION_STUDIES = {
    "related-work": related_work.baseline_comparison,
    "related-work-traffic": related_work.baseline_traffic,
    "related-work-streams": related_work.stream_buffer_study,
    "related-work-placement": related_work.placement_study,
    "related-work-subblock": related_work.subblock_study,
    "transform-interchange": transforms_study.interchange_study,
    "transform-expansion": transforms_study.expansion_study,
    "attribution": attribution_study.miss_concentration,
    "policy": policy_study.policy_comparison,
    "headroom": headroom_study.headroom,
    "hierarchy": hierarchy_study.l2_retrospective,
    "ablation-bbsize": ablations.bounce_back_size,
    "ablation-bbassoc": ablations.bounce_back_associativity,
    "ablation-admission": ablations.admission_policy,
    "ablation-reset": ablations.temporal_reset,
    "ablation-physline": ablations.physical_line,
    "ablation-writepolicy": ablations.write_policy,
}

__all__ = ["FigureResult", "ALL_FIGURES", "EXTENSION_STUDIES"]
