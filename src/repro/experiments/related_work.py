"""Related-work comparison (paper section 5).

The paper positions the software-assisted cache against two published
hardware-only alternatives:

* **stream buffers** (Jouppi 1990) — prefetch regular streams, but "the
  mechanism does not work properly if the number of array references
  within the loop body that induce compulsory/capacity misses is larger
  than the number of stream buffers";
* the **column-associative cache** (Agarwal & Pudar 1993) — eliminates
  most conflict misses of a direct-mapped cache, but "does not deal with
  cache pollution".

Both are implemented in :mod:`repro.sim`; this module runs the suite
through all of them, plus a stream-count sensitivity study on a
many-stream kernel that exercises the paper's stream-buffer critique.
"""

from __future__ import annotations

from functools import lru_cache, partial

from ..compiler import Array, ArrayRef, Loop, Program, generate_trace, nest, var
from ..core import presets
from ..harness.runner import run_sweep
from ..sim.column_assoc import ColumnAssociativeCache
from ..sim.driver import simulate
from ..sim.geometry import CacheGeometry
from ..sim.stream_buffer import StreamBufferCache
from ..sim.timing import MemoryTiming
from ..workloads.registry import suite_traces
from .common import FigureResult


def _column_assoc() -> ColumnAssociativeCache:
    return ColumnAssociativeCache(CacheGeometry(8 * 1024, 32, 1))


def _stream_buffers(n_buffers: int = 4) -> StreamBufferCache:
    return StreamBufferCache(
        CacheGeometry(8 * 1024, 32, 1), MemoryTiming(), n_buffers=n_buffers
    )


def baseline_comparison(scale: str = "paper", seed: int = 0) -> FigureResult:
    """AMAT of the section 5 alternatives against the paper's design."""
    configs = {
        "Standard": presets.standard,
        "Column-assoc": _column_assoc,
        "Stream buffers": _stream_buffers,
        "Stand.+Victim": presets.victim,
        "Soft": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="related-work",
        title="Section 5 alternatives",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def baseline_traffic(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Words fetched per reference for the same comparison.

    This is the flip side of aggressive hardware prefetching the paper
    insists on: stream buffers reach low AMAT by speculatively fetching
    several lines ahead on *every* miss, multiplying memory traffic,
    while the software tags keep the assisted cache's traffic modest.
    """
    configs = {
        "Standard": presets.standard,
        "Column-assoc": _column_assoc,
        "Stream buffers": _stream_buffers,
        "Stand.+Victim": presets.victim,
        "Soft": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="related-work-traffic",
        title="Section 5 alternatives: memory traffic",
        series=list(configs),
        metric="words fetched / references",
    )
    for bench, row in sweep.metric("traffic").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


#: Streams in the many-stream kernel (one per array reference).
MANY_STREAM_COUNTS = (2, 4, 6, 8)


@lru_cache(maxsize=16)
def _many_stream_trace(n_streams: int, scale: str = "paper", seed: int = 0):
    """A loop body with ``n_streams`` interleaved compulsory-miss streams.

    Every reference walks its own array with stride one: exactly the
    workload shape the paper says breaks stream buffers once the stream
    count exceeds the buffer count.
    """
    length = {"tiny": 256, "test": 2000, "paper": 12000}.get(scale, 2000)
    i = var("i")
    arrays = [Array(f"S{k}", (length,)) for k in range(n_streams)]
    loop = nest(
        [Loop("i", 0, length)],
        body=[ArrayRef(f"S{k}", (i,)) for k in range(n_streams)],
        name=f"streams-{n_streams}",
    )
    program = Program(f"streams{n_streams}", arrays, [loop])
    return generate_trace(program, seed=seed)


def stream_buffer_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Stream-buffer count vs interleaved stream count (the §5 critique)."""
    result = FigureResult(
        figure="related-work-streams",
        title="Stream buffers vs interleaved stream count",
        series=[f"{n} buffers" for n in (2, 4, 8)] + ["Soft"],
        metric="AMAT (cycles)",
    )
    for n_streams in MANY_STREAM_COUNTS:
        trace = _many_stream_trace(n_streams, scale, seed)
        row = f"{n_streams} streams"
        for n_buffers in (2, 4, 8):
            r = simulate(_stream_buffers(n_buffers), trace)
            result.add(row, f"{n_buffers} buffers", r.amat)
        result.add(row, "Soft", simulate(presets.soft(), trace).amat)
    return result


def _hp_assist() -> "HPAssistCache":
    from ..core.assist_hp import HPAssistCache

    return HPAssistCache(CacheGeometry(8 * 1024, 32, 1), MemoryTiming())


def _subblock() -> "SubBlockCache":
    from ..sim.subblock import SubBlockCache

    # PowerPC-style sectoring: 64-byte lines, 32-byte sub-blocks.
    return SubBlockCache(CacheGeometry(8 * 1024, 64, 1), sub_block=32)


def placement_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Bounce-back (buffer *after* the cache, 3-cycle sequential probe)
    vs HP-7200 Assist Cache (buffer *before*, 1-cycle parallel probe).

    The HP design gets the faster probe the paper deliberately did not
    assume; the paper's design gets virtual lines.  The interesting
    outcome mirrors the paper's §2.2 critique of bypassing: the HP
    scheme *discards* spatial-only data after the assist FIFO, so any
    reuse the tags failed to predict (cross-loop reuse, dusty-deck
    aliasing) is lost — it can end up *worse than standard* on such
    codes — whereas the bounce-back design admits everything to the main
    cache and only biases eviction, which is why it is safe.
    """
    configs = {
        "Standard": presets.standard,
        "Bounce-back only": presets.soft_temporal_only,
        "HP assist": _hp_assist,
        "Soft (BB+VL)": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="related-work-placement",
        title="Buffer placement: bounce-back vs HP-7200 assist cache",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def subblock_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Sub-block placement (the §2.1 contrast) vs virtual lines.

    Sectoring shrinks the directory and the fill traffic but never
    prefetches the neighbouring sub-blocks, so stride-one streams still
    miss once per sector; virtual lines fetch the whole block on the
    first spatial-tagged miss.
    """
    configs = {
        "Standard 32B": presets.standard,
        "Subblock 64/32B": _subblock,
        "Soft (VL64)": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="related-work-subblock",
        title="Sub-block placement vs virtual lines",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(baseline_comparison(scale).table())
    print()
    print(baseline_traffic(scale).table())
    print()
    print(stream_buffer_study(scale).table())
    print()
    print(placement_study(scale).table())
    print()
    print(subblock_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
