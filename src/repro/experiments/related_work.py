"""Related-work comparison (paper section 5).

The paper positions the software-assisted cache against two published
hardware-only alternatives:

* **stream buffers** (Jouppi 1990) — prefetch regular streams, but "the
  mechanism does not work properly if the number of array references
  within the loop body that induce compulsory/capacity misses is larger
  than the number of stream buffers";
* the **column-associative cache** (Agarwal & Pudar 1993) — eliminates
  most conflict misses of a direct-mapped cache, but "does not deal with
  cache pollution".

Both are implemented in :mod:`repro.sim`; this module runs the suite
through all of them, plus a stream-count sensitivity study on a
many-stream kernel that exercises the paper's stream-buffer critique.
"""

from __future__ import annotations

from functools import lru_cache

from ..compiler import Array, ArrayRef, Loop, Program, generate_trace, nest, var
from ..core.spec import CacheSpec
from .common import ExperimentSpec, FigureResult, run_experiment

#: The section 5 comparison set, shared by the AMAT and traffic views.
BASELINE_CONFIGS = {
    "Standard": CacheSpec.of("standard"),
    "Column-assoc": CacheSpec.of("column_assoc"),
    "Stream buffers": CacheSpec.of("stream_buffer"),
    "Stand.+Victim": CacheSpec.of("victim"),
    "Soft": CacheSpec.of("soft"),
}

RELATED_WORK = ExperimentSpec.create(
    "related-work", "Section 5 alternatives", BASELINE_CONFIGS
)

RELATED_WORK_TRAFFIC = ExperimentSpec.create(
    "related-work-traffic",
    "Section 5 alternatives: memory traffic",
    BASELINE_CONFIGS,
    metric="traffic",
    metric_label="words fetched / references",
)


def baseline_comparison(scale: str = "paper", seed: int = 0) -> FigureResult:
    """AMAT of the section 5 alternatives against the paper's design."""
    return run_experiment(RELATED_WORK, scale=scale, seed=seed)


def baseline_traffic(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Words fetched per reference for the same comparison.

    This is the flip side of aggressive hardware prefetching the paper
    insists on: stream buffers reach low AMAT by speculatively fetching
    several lines ahead on *every* miss, multiplying memory traffic,
    while the software tags keep the assisted cache's traffic modest.
    """
    return run_experiment(RELATED_WORK_TRAFFIC, scale=scale, seed=seed)


#: Streams in the many-stream kernel (one per array reference).
MANY_STREAM_COUNTS = (2, 4, 6, 8)


@lru_cache(maxsize=16)
def _many_stream_trace(n_streams: int, scale: str = "paper", seed: int = 0):
    """A loop body with ``n_streams`` interleaved compulsory-miss streams.

    Every reference walks its own array with stride one: exactly the
    workload shape the paper says breaks stream buffers once the stream
    count exceeds the buffer count.
    """
    length = {"tiny": 256, "test": 2000, "paper": 12000}.get(scale, 2000)
    i = var("i")
    arrays = [Array(f"S{k}", (length,)) for k in range(n_streams)]
    loop = nest(
        [Loop("i", 0, length)],
        body=[ArrayRef(f"S{k}", (i,)) for k in range(n_streams)],
        name=f"streams-{n_streams}",
    )
    program = Program(f"streams{n_streams}", arrays, [loop])
    return generate_trace(program, seed=seed)


STREAM_STUDY = ExperimentSpec.create(
    "related-work-streams",
    "Stream buffers vs interleaved stream count",
    {
        **{
            f"{n} buffers": CacheSpec.of("stream_buffer", n_buffers=n)
            for n in (2, 4, 8)
        },
        "Soft": CacheSpec.of("soft"),
    },
)


def stream_buffer_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Stream-buffer count vs interleaved stream count (the §5 critique)."""
    traces = {
        f"{n} streams": _many_stream_trace(n, scale, seed)
        for n in MANY_STREAM_COUNTS
    }
    return run_experiment(STREAM_STUDY, scale=scale, seed=seed, traces=traces)


PLACEMENT_STUDY = ExperimentSpec.create(
    "related-work-placement",
    "Buffer placement: bounce-back vs HP-7200 assist cache",
    {
        "Standard": CacheSpec.of("standard"),
        "Bounce-back only": CacheSpec.of("soft_temporal_only"),
        "HP assist": CacheSpec.of("hp_assist"),
        "Soft (BB+VL)": CacheSpec.of("soft"),
    },
)

SUBBLOCK_STUDY = ExperimentSpec.create(
    "related-work-subblock",
    "Sub-block placement vs virtual lines",
    {
        "Standard 32B": CacheSpec.of("standard"),
        # PowerPC-style sectoring: 64-byte lines, 32-byte sub-blocks.
        "Subblock 64/32B": CacheSpec.of("subblock", line_size=64, sub_block=32),
        "Soft (VL64)": CacheSpec.of("soft"),
    },
)


def placement_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Bounce-back (buffer *after* the cache, 3-cycle sequential probe)
    vs HP-7200 Assist Cache (buffer *before*, 1-cycle parallel probe).

    The HP design gets the faster probe the paper deliberately did not
    assume; the paper's design gets virtual lines.  The interesting
    outcome mirrors the paper's §2.2 critique of bypassing: the HP
    scheme *discards* spatial-only data after the assist FIFO, so any
    reuse the tags failed to predict (cross-loop reuse, dusty-deck
    aliasing) is lost — it can end up *worse than standard* on such
    codes — whereas the bounce-back design admits everything to the main
    cache and only biases eviction, which is why it is safe.
    """
    return run_experiment(PLACEMENT_STUDY, scale=scale, seed=seed)


def subblock_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Sub-block placement (the §2.1 contrast) vs virtual lines.

    Sectoring shrinks the directory and the fill traffic but never
    prefetches the neighbouring sub-blocks, so stride-one streams still
    miss once per sector; virtual lines fetch the whole block on the
    first spatial-tagged miss.
    """
    return run_experiment(SUBBLOCK_STUDY, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(baseline_comparison(scale).table())
    print()
    print(baseline_traffic(scale).table())
    print()
    print(stream_buffer_study(scale).table())
    print()
    print(placement_study(scale).table())
    print()
    print(subblock_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
