"""Figure 9: influence of cache size and associativity.

* Figure 9a — percentage of the standard cache's misses removed by the
  full mechanism, for 8 KB (32 B lines) and 16/32/64 KB caches (64 B
  physical lines, as the paper uses for the larger caches — note this
  halves the virtual-line headroom).  Gains shrink with size and vanish
  once the working set fits (LIV at 16 KB+).
* Figure 9b — 2-way set-associative caches: plain, with a victim cache
  (largely redundant with associativity), full software assistance, and
  the *simplified* variant (temporal-priority replacement, no
  bounce-back cache) which performs nearly as well for far less
  hardware.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Tuple

from ..core import presets
from ..harness.runner import run_sweep
from ..sim.driver import simulate
from ..workloads.registry import suite_traces
from .common import FigureResult

#: Figure 9a's cache points: label -> (size_bytes, physical_line, virtual_line).
FIG9A_CACHES: Dict[str, Tuple[int, int, int]] = {
    "Cs=8k, Ls=32": (8 * 1024, 32, 64),
    "Cs=16k, Ls=64": (16 * 1024, 64, 128),
    "Cs=32k, Ls=64": (32 * 1024, 64, 128),
    "Cs=64k, Ls=64": (64 * 1024, 64, 128),
}


def cache_size_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 9a: % of misses removed, per cache size."""
    result = FigureResult(
        figure="fig9a",
        title="Software control for large caches",
        series=list(FIG9A_CACHES),
        metric="% of misses removed",
    )
    for name, trace in suite_traces(scale, seed).items():
        for label, (size, line, vline) in FIG9A_CACHES.items():
            base = simulate(
                presets.standard(size_bytes=size, line_size=line), trace
            )
            soft = simulate(
                presets.soft(
                    size_bytes=size, line_size=line, virtual_line_size=vline
                ),
                trace,
            )
            result.add(name, label, soft.misses_removed_vs(base))
    return result


def associativity_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 9b: AMAT of the 2-way variants."""
    configs = {
        "2-way": partial(presets.standard, ways=2),
        "2-way+victim": partial(presets.victim, ways=2),
        "Soft 2-way": partial(presets.soft, ways=2),
        "Simplified Soft 2-way": presets.temporal_priority,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig9b",
        title="Software control for set-associative caches",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(cache_size_study(scale).table(precision=1))
    print()
    print(associativity_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
