"""Figure 9: influence of cache size and associativity.

* Figure 9a — percentage of the standard cache's misses removed by the
  full mechanism, for 8 KB (32 B lines) and 16/32/64 KB caches (64 B
  physical lines, as the paper uses for the larger caches — note this
  halves the virtual-line headroom).  Gains shrink with size and vanish
  once the working set fits (LIV at 16 KB+).
* Figure 9b — 2-way set-associative caches: plain, with a victim cache
  (largely redundant with associativity), full software assistance, and
  the *simplified* variant (temporal-priority replacement, no
  bounce-back cache) which performs nearly as well for far less
  hardware.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import ExperimentSpec, FigureResult, run_experiment

#: Figure 9a's cache points: label -> (size_bytes, physical_line, virtual_line).
FIG9A_CACHES: Dict[str, Tuple[int, int, int]] = {
    "Cs=8k, Ls=32": (8 * 1024, 32, 64),
    "Cs=16k, Ls=64": (16 * 1024, 64, 128),
    "Cs=32k, Ls=64": (32 * 1024, 64, 128),
    "Cs=64k, Ls=64": (64 * 1024, 64, 128),
}

FIG9B = ExperimentSpec.create(
    "fig9b",
    "Software control for set-associative caches",
    {
        "2-way": CacheSpec.of("standard", ways=2),
        "2-way+victim": CacheSpec.of("victim", ways=2),
        "Soft 2-way": CacheSpec.of("soft", ways=2),
        "Simplified Soft 2-way": CacheSpec.of("temporal_priority"),
    },
)


def cache_size_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 9a: % of misses removed, per cache size."""
    # Both columns of every cache point go through one sweep, so the
    # grid parallelises and caches like any other figure.
    configs = {}
    for label, (size, line, vline) in FIG9A_CACHES.items():
        configs[f"{label} base"] = CacheSpec.of(
            "standard", size_bytes=size, line_size=line
        )
        configs[f"{label} soft"] = CacheSpec.of(
            "soft", size_bytes=size, line_size=line, virtual_line_size=vline
        )
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig9a",
        title="Software control for large caches",
        series=list(FIG9A_CACHES),
        metric="% of misses removed",
    )
    for name, row in sweep.results.items():
        for label in FIG9A_CACHES:
            result.add(
                name,
                label,
                row[f"{label} soft"].misses_removed_vs(row[f"{label} base"]),
            )
    return result


def associativity_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 9b: AMAT of the 2-way variants."""
    return run_experiment(FIG9B, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(cache_size_study(scale).table(precision=1))
    print()
    print(associativity_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
