"""Figure 10: instrumentation quality and memory latency.

* Figure 10a — the most time-consuming Perfect Club subroutines,
  manually instrumented and traced alone (ADM, MDG, BDN, DYF, ARC, FLO,
  TRF).  With full tag coverage and no scalar/CALL noise, the gains are
  markedly larger than on the whole codes — the upside if the compiler
  limitations (no subscript expansion, no interprocedural analysis)
  were lifted.
* Figure 10b — AMAT(Standard) - AMAT(Soft) as the memory latency sweeps
  5..30 cycles.  Below ~10 cycles the extra transfer cycles of virtual
  lines eat the benefit; beyond that the gain grows steadily with
  latency.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..sim.timing import MemoryTiming
from ..workloads.registry import KERNEL_ORDER, get_kernel_trace, suite_traces
from .common import ExperimentSpec, FigureResult, run_experiment
from .fig06_summary import SOFTWARE_CONTROL_CONFIGS

#: Figure 10b's latency sweep, in cycles.
LATENCIES = (5, 10, 15, 20, 25, 30)

FIG10A = ExperimentSpec.create(
    "fig10a",
    "Software control on the most time-consuming Perfect Club subroutines",
    SOFTWARE_CONTROL_CONFIGS,
)


def kernel_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 10a: AMAT on manually instrumented Perfect Club kernels."""
    traces = {
        code: get_kernel_trace(code, scale, seed) for code in KERNEL_ORDER
    }
    return run_experiment(FIG10A, scale=scale, seed=seed, traces=traces)


def latency_sweep(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 10b: AMAT(Standard) - AMAT(Soft) vs memory latency."""
    # Both caches at every latency point run through one sweep grid, so
    # the study parallelises and caches like any other figure.
    configs = {}
    for latency in LATENCIES:
        timing = MemoryTiming(latency=latency)
        configs[f"Stand lat={latency}"] = CacheSpec.of("standard", timing=timing)
        configs[f"Soft lat={latency}"] = CacheSpec.of("soft", timing=timing)
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig10b",
        title="Influence of memory latency",
        series=[f"latency={lat}" for lat in LATENCIES],
        metric="AMAT(Stand.) - AMAT(Soft)",
    )
    for name, row in sweep.results.items():
        for latency in LATENCIES:
            base = row[f"Stand lat={latency}"]
            soft = row[f"Soft lat={latency}"]
            result.add(name, f"latency={latency}", soft.amat_gain_vs(base))
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(kernel_study(scale).table())
    print()
    print(latency_sweep(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
