"""Figure 11: software-assisted caches under blocking and data copying.

* Figure 11a — blocked matrix-vector multiply across block sizes.
  Data-locality algorithms assume the cache behaves like a local memory;
  in reality interference/pollution force block sizes far below the
  theoretical optimum.  Software assistance lets much larger blocks
  survive, flattening the AMAT curve.
* Figure 11b — blocked matrix-matrix multiply with and without copying
  the reused block to a contiguous local array, across leading
  dimensions 116-126.  Copying stabilises the standard cache but its
  overhead can exceed the benefit; under software assistance the local
  array is protected during the refill and copying becomes consistently
  worthwhile.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core import presets
from ..sim.driver import simulate
from ..workloads.blocked import FIG11B_LEADING_DIMS
from ..workloads.dense import FIG11A_BLOCK_SIZES
from ..workloads.registry import get_blocked_mm_trace, get_blocked_mv_trace
from .common import FigureResult


def block_size_sweep(
    scale: str = "paper",
    seed: int = 0,
    block_sizes: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 11a: AMAT of blocked MV vs block size, Standard vs Soft."""
    result = FigureResult(
        figure="fig11a",
        title="Optimal block size for blocked algorithms (blocked MV)",
        series=["Standard", "Soft"],
        metric="AMAT (cycles)",
    )
    for block in block_sizes or FIG11A_BLOCK_SIZES:
        trace = get_blocked_mv_trace(block, scale, seed)
        result.add(f"B={block}", "Standard", simulate(presets.standard(), trace).amat)
        result.add(f"B={block}", "Soft", simulate(presets.soft(), trace).amat)
    return result


def copying_study(
    scale: str = "paper",
    seed: int = 0,
    leading_dims: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 11b: data copying for blocked MM across leading dimensions."""
    result = FigureResult(
        figure="fig11b",
        title="Data copying (blocked matrix-matrix multiply)",
        series=[
            "No copy (stand.)",
            "Copy (stand.)",
            "No copy (soft)",
            "Copy (soft)",
        ],
        metric="AMAT (cycles)",
    )
    for ld in leading_dims or FIG11B_LEADING_DIMS:
        row = f"ld={ld}"
        for copying, label in ((False, "No copy"), (True, "Copy")):
            trace = get_blocked_mm_trace(ld, copying, scale, seed)
            result.add(
                row, f"{label} (stand.)", simulate(presets.standard(), trace).amat
            )
            result.add(
                row, f"{label} (soft)", simulate(presets.soft(), trace).amat
            )
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(block_size_sweep(scale).table())
    print()
    print(copying_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
