"""Figure 11: software-assisted caches under blocking and data copying.

* Figure 11a — blocked matrix-vector multiply across block sizes.
  Data-locality algorithms assume the cache behaves like a local memory;
  in reality interference/pollution force block sizes far below the
  theoretical optimum.  Software assistance lets much larger blocks
  survive, flattening the AMAT curve.
* Figure 11b — blocked matrix-matrix multiply with and without copying
  the reused block to a contiguous local array, across leading
  dimensions 116-126.  Copying stabilises the standard cache but its
  overhead can exceed the benefit; under software assistance the local
  array is protected during the refill and copying becomes consistently
  worthwhile.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.blocked import FIG11B_LEADING_DIMS
from ..workloads.dense import BLOCKED_MV_SCALES, FIG11A_BLOCK_SIZES
from ..workloads.registry import get_blocked_mm_trace, get_blocked_mv_trace
from .common import FigureResult

STANDARD_VS_SOFT = {
    "Standard": CacheSpec.of("standard"),
    "Soft": CacheSpec.of("soft"),
}


def block_size_sweep(
    scale: str = "paper",
    seed: int = 0,
    block_sizes: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 11a: AMAT of blocked MV vs block size, Standard vs Soft."""
    if block_sizes is None:
        # Keep only the x-axis points that tile this scale's vector
        # (all of them do at paper scale; reduced scales keep a prefix).
        n = BLOCKED_MV_SCALES[scale][0]
        block_sizes = [b for b in FIG11A_BLOCK_SIZES if b <= n and n % b == 0]
    traces = {
        f"B={block}": get_blocked_mv_trace(block, scale, seed)
        for block in block_sizes
    }
    sweep = run_sweep(traces, STANDARD_VS_SOFT)
    result = FigureResult(
        figure="fig11a",
        title="Optimal block size for blocked algorithms (blocked MV)",
        series=["Standard", "Soft"],
        metric="AMAT (cycles)",
    )
    for row, values in sweep.metric("amat").items():
        for config, value in values.items():
            result.add(row, config, value)
    return result


def copying_study(
    scale: str = "paper",
    seed: int = 0,
    leading_dims: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 11b: data copying for blocked MM across leading dimensions."""
    dims = list(leading_dims or FIG11B_LEADING_DIMS)
    variants = ((False, "No copy"), (True, "Copy"))
    traces = {
        f"ld={ld}|{label}": get_blocked_mm_trace(ld, copying, scale, seed)
        for ld in dims
        for copying, label in variants
    }
    sweep = run_sweep(traces, STANDARD_VS_SOFT)
    result = FigureResult(
        figure="fig11b",
        title="Data copying (blocked matrix-matrix multiply)",
        series=[
            "No copy (stand.)",
            "Copy (stand.)",
            "No copy (soft)",
            "Copy (soft)",
        ],
        metric="AMAT (cycles)",
    )
    for ld in dims:
        row = f"ld={ld}"
        for _, label in variants:
            cells = sweep.results[f"{row}|{label}"]
            result.add(row, f"{label} (stand.)", cells["Standard"].amat)
            result.add(row, f"{label} (soft)", cells["Soft"].amat)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(block_size_sweep(scale).table())
    print()
    print(copying_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
