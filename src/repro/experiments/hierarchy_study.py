"""Retrospective: does software assistance survive an L2?

The paper's figure 10b shows the mechanisms fading below ~10-cycle
latencies; a unified L2 turns most former memory accesses into exactly
such short-latency events.  This study re-runs Standard vs Soft with the
L1 backed by a 256 KB L2 (4-cycle hit — so an L1 miss costs ~6 cycles
when the L2 holds the line, and the full 20+ only on L2 misses) and
reports how much of the flat-memory gain remains.

Expected shape: the *relative* gain shrinks on the codes whose working
sets fit the L2 (everything here does, except streams that never
reuse), exactly as the latency sweep predicts — but does not vanish,
because compulsory/streaming misses still pay the full memory trip and
the virtual line still halves them.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult

#: L2 hit latency (the L1's "memory" latency) and the extra cycles an
#: L2 miss adds to reach DRAM (total 20, the paper's memory latency).
L2_HIT_LATENCY = 4
MEMORY_EXTRA = 16

HIERARCHY_CONFIGS = {
    "Stand flat": CacheSpec.of("standard"),
    "Soft flat": CacheSpec.of("soft"),
    "Stand +L2": CacheSpec.of(
        "with_l2", inner="standard",
        l2_hit_latency=L2_HIT_LATENCY, memory_extra=MEMORY_EXTRA,
    ),
    "Soft +L2": CacheSpec.of(
        "with_l2", inner="soft",
        l2_hit_latency=L2_HIT_LATENCY, memory_extra=MEMORY_EXTRA,
    ),
}


def l2_retrospective(scale: str = "paper", seed: int = 0) -> FigureResult:
    """AMAT with a flat memory vs with an L2, Standard vs Soft."""
    sweep = run_sweep(suite_traces(scale, seed), HIERARCHY_CONFIGS)
    result = FigureResult(
        figure="hierarchy",
        title="Software assistance with and without an L2",
        series=[
            "Stand flat", "Soft flat", "gain% flat",
            "Stand +L2", "Soft +L2", "gain% +L2",
        ],
        metric="AMAT (cycles) / relative gain",
    )
    for name, row in sweep.results.items():
        flat_standard = row["Stand flat"].amat
        flat_soft = row["Soft flat"].amat
        l2_standard = row["Stand +L2"].amat
        l2_soft = row["Soft +L2"].amat
        result.add(name, "Stand flat", flat_standard)
        result.add(name, "Soft flat", flat_soft)
        result.add(name, "gain% flat", 100 * (1 - flat_soft / flat_standard))
        result.add(name, "Stand +L2", l2_standard)
        result.add(name, "Soft +L2", l2_soft)
        result.add(name, "gain% +L2", 100 * (1 - l2_soft / l2_standard))
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(l2_retrospective(scale).table(precision=2))


if __name__ == "__main__":  # pragma: no cover
    main()
