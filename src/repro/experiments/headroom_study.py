"""Replacement headroom: how much of the OPT gap does assistance close?

The classic decomposition, applied to the paper's design:

* ``LRU-DM`` — the Standard direct-mapped cache;
* ``LRU-FA`` — fully associative LRU at the same capacity: the gap to
  LRU-DM is the *conflict* misses (what a victim cache can recover);
* ``OPT-FA`` — Belady-optimal fully associative replacement: the floor
  any replacement policy can reach; the remaining misses are compulsory
  plus irreducible capacity misses;
* ``Soft`` — the software-assisted cache.

Software assistance closes part of the replacement gap (bounce-back)
but, crucially, virtual lines attack *compulsory* misses, which even
OPT-FA cannot touch — so Soft lands below OPT-FA on the vector-dominated
codes.  That is the cleanest statement of why the paper pairs the two
mechanisms.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..sim.belady import simulate_belady
from ..sim.geometry import CacheGeometry
from ..sim.timing import MemoryTiming
from ..workloads.registry import suite_traces
from .common import FigureResult

HEADROOM_CONFIGS = {
    "LRU-DM": CacheSpec.of("standard"),
    "LRU-FA": CacheSpec.of("standard_cache", ways=256),
    "Soft": CacheSpec.of("soft"),
}


def headroom(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Miss ratios of LRU-DM / LRU-FA / OPT-FA / Soft at 8 KB."""
    fully_associative = CacheGeometry(8 * 1024, 32, 256)
    timing = MemoryTiming()
    traces = suite_traces(scale, seed)
    sweep = run_sweep(traces, HEADROOM_CONFIGS)
    result = FigureResult(
        figure="headroom",
        title="LRU vs Belady-OPT vs software assistance (miss ratio)",
        series=["LRU-DM", "LRU-FA", "OPT-FA", "Soft"],
        metric="misses / references",
    )
    for name, trace in traces.items():
        row = sweep.results[name]
        result.add(name, "LRU-DM", row["LRU-DM"].miss_ratio)
        result.add(name, "LRU-FA", row["LRU-FA"].miss_ratio)
        # Belady needs the whole future reference stream, so it runs
        # through its own offline simulator, outside the sweep grid.
        result.add(
            name,
            "OPT-FA",
            simulate_belady(trace, fully_associative, timing).miss_ratio,
        )
        result.add(name, "Soft", row["Soft"].miss_ratio)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(headroom(scale).table(precision=4))


if __name__ == "__main__":  # pragma: no cover
    main()
