"""Run the whole figure battery: ``python -m repro.experiments [scale]``."""

from __future__ import annotations

import sys
import time

from . import ALL_FIGURES, EXTENSION_STUDIES


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    scale = args[0] if args else "paper"
    only = set(args[1:])
    battery = dict(ALL_FIGURES)
    if only:  # extensions run only when asked for by name
        battery.update(EXTENSION_STUDIES)
    for name, driver in battery.items():
        if only and name not in only:
            continue
        start = time.time()
        result = driver(scale=scale)
        elapsed = time.time() - start
        print(result.table())
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
