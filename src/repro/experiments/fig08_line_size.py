"""Figure 8: influence of line size.

* Figure 8a — virtual line size sweep (32-256 B) on the full Soft
  configuration.  Large *virtual* lines are tolerated far better than
  large physical lines; 64 B is the sweet spot for an 8 KB cache, and
  128 B still profits several codes.
* Figure 8b — physical line size sweep (32-256 B) on the Standard
  cache, against Soft.  A 64-byte *virtual* line usually beats a
  64-byte-or-larger *physical* line, because the physical line hurts the
  cache-entries-to-line ratio for every reference while the virtual line
  only triggers on spatial-tagged misses.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from .common import ExperimentSpec, FigureResult, run_experiment

#: The sweep points of both panels.
VIRTUAL_LINE_SIZES = (32, 64, 128, 256)
PHYSICAL_LINE_SIZES = (32, 64, 128, 256)

FIG8A = ExperimentSpec.create(
    "fig8a",
    "Influence of virtual line size",
    {
        f"VL={vl}B": CacheSpec.of("soft", virtual_line_size=vl)
        for vl in VIRTUAL_LINE_SIZES
    },
)

FIG8B = ExperimentSpec.create(
    "fig8b",
    "Influence of physical line size",
    {
        **{
            f"Stand {ls}B": CacheSpec.of("standard", line_size=ls)
            for ls in PHYSICAL_LINE_SIZES
        },
        "Soft": CacheSpec.of("soft"),
    },
)


def virtual_sweep(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 8a: AMAT vs virtual line size (physical line fixed at 32 B)."""
    return run_experiment(FIG8A, scale=scale, seed=seed)


def physical_sweep(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 8b: AMAT vs physical line size on Standard, plus Soft."""
    return run_experiment(FIG8B, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(virtual_sweep(scale).table())
    print()
    print(physical_sweep(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
