"""Figure 8: influence of line size.

* Figure 8a — virtual line size sweep (32-256 B) on the full Soft
  configuration.  Large *virtual* lines are tolerated far better than
  large physical lines; 64 B is the sweet spot for an 8 KB cache, and
  128 B still profits several codes.
* Figure 8b — physical line size sweep (32-256 B) on the Standard
  cache, against Soft.  A 64-byte *virtual* line usually beats a
  64-byte-or-larger *physical* line, because the physical line hurts the
  cache-entries-to-line ratio for every reference while the virtual line
  only triggers on spatial-tagged misses.
"""

from __future__ import annotations

from functools import partial

from ..core import presets
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult

#: The sweep points of both panels.
VIRTUAL_LINE_SIZES = (32, 64, 128, 256)
PHYSICAL_LINE_SIZES = (32, 64, 128, 256)


def virtual_sweep(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 8a: AMAT vs virtual line size (physical line fixed at 32 B)."""
    configs = {
        f"VL={vl}B": partial(presets.soft, virtual_line_size=vl)
        for vl in VIRTUAL_LINE_SIZES
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig8a",
        title="Influence of virtual line size",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def physical_sweep(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 8b: AMAT vs physical line size on Standard, plus Soft."""
    configs = {
        f"Stand {ls}B": partial(presets.standard, line_size=ls)
        for ls in PHYSICAL_LINE_SIZES
    }
    configs["Soft"] = presets.soft
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig8b",
        title="Influence of physical line size",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(virtual_sweep(scale).table())
    print()
    print(physical_sweep(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
