"""Figure 3: existing techniques against pollution and interference.

* Figure 3a — cache bypassing.  Plain bypassing is disastrous (the
  spatial locality of non-reusable data pays a memory round-trip per
  word); routing bypassed fetches through a small buffer recovers most
  of it; the software-assisted design beats both.
* Figure 3b — victim caches.  Efficient against interference, but their
  few entries cannot absorb *pollution* (a capacity phenomenon) — the
  software-assisted design, which can, wins.
"""

from __future__ import annotations

from typing import Dict

from ..core import presets
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult


def bypass_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 3a: AMAT of Standard / Bypass / Bypass-buffer / Soft."""
    configs = {
        "Standard": presets.standard,
        "Bypass": presets.bypass,
        "Bypass buffer": presets.bypass_buffered,
        "Soft": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig3a",
        title="Efficiency of bypassing",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def victim_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 3b: AMAT of Standard / Standard+Victim / Soft."""
    configs = {
        "Standard": presets.standard,
        "Stand.+Victim": presets.victim,
        "Soft": presets.soft,
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="fig3b",
        title="Efficiency of victim caches",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(bypass_study(scale).table())
    print()
    print(victim_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
