"""Figure 3: existing techniques against pollution and interference.

* Figure 3a — cache bypassing.  Plain bypassing is disastrous (the
  spatial locality of non-reusable data pays a memory round-trip per
  word); routing bypassed fetches through a small buffer recovers most
  of it; the software-assisted design beats both.
* Figure 3b — victim caches.  Efficient against interference, but their
  few entries cannot absorb *pollution* (a capacity phenomenon) — the
  software-assisted design, which can, wins.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from .common import ExperimentSpec, FigureResult, run_experiment

FIG3A = ExperimentSpec.create(
    "fig3a",
    "Efficiency of bypassing",
    {
        "Standard": CacheSpec.of("standard"),
        "Bypass": CacheSpec.of("bypass"),
        "Bypass buffer": CacheSpec.of("bypass_buffered"),
        "Soft": CacheSpec.of("soft"),
    },
)

FIG3B = ExperimentSpec.create(
    "fig3b",
    "Efficiency of victim caches",
    {
        "Standard": CacheSpec.of("standard"),
        "Stand.+Victim": CacheSpec.of("victim"),
        "Soft": CacheSpec.of("soft"),
    },
)


def bypass_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 3a: AMAT of Standard / Bypass / Bypass-buffer / Soft."""
    return run_experiment(FIG3A, scale=scale, seed=seed)


def victim_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 3b: AMAT of Standard / Standard+Victim / Soft."""
    return run_experiment(FIG3B, scale=scale, seed=seed)


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(bypass_study(scale).table())
    print()
    print(victim_study(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
