"""Figure 1: temporal and spatial reuse in numerical codes.

* Figure 1a — distribution of references across reuse-distance buckets
  (no reuse, 1-10^2, 10^2-10^3, 10^3-10^4, > 10^4 references).  The
  paper's observations: a sizable share of data is referenced only once
  (compulsory-miss hiding is needed) and reuse distances often exceed the
  ~2500-reference average lifetime of a line in an 8 KB cache (temporal
  reuse is disrupted by pollution).
* Figure 1b — distribution of references across the vector lengths of
  per-instruction address streams; vectors frequently exceed the 32-byte
  line of small on-chip caches (unexploited spatial locality).
"""

from __future__ import annotations

from ..memtrace.reuse import REUSE_BUCKETS, reuse_profile
from ..memtrace.vectors import VECTOR_BUCKETS, vector_profile
from ..workloads.registry import suite_traces
from .common import FigureResult

#: The paper's estimate of a line's average lifetime in an 8 KB cache.
AVERAGE_LINE_LIFETIME_REFS = 2500


def reuse_distances(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 1a: reuse-distance distribution per benchmark."""
    result = FigureResult(
        figure="fig1a",
        title="Distance of reuse (fraction of references per bucket)",
        series=[label for label, _ in REUSE_BUCKETS],
        metric="fraction of references",
    )
    for name, trace in suite_traces(scale, seed).items():
        profile = reuse_profile(trace)
        for label, _ in REUSE_BUCKETS:
            result.add(name, label, profile.fraction(label))
    return result


def vector_lengths(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Figure 1b: vector-length distribution per benchmark."""
    result = FigureResult(
        figure="fig1b",
        title="Vector length of reference streams (fraction of references)",
        series=[label for label, _ in VECTOR_BUCKETS],
        metric="fraction of references",
    )
    for name, trace in suite_traces(scale, seed).items():
        profile = vector_profile(trace)
        for label, _ in VECTOR_BUCKETS:
            result.add(name, label, profile.fraction(label))
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(reuse_distances(scale).table())
    print()
    print(vector_lengths(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
