"""Ablations of the design choices the paper discusses in prose.

Each function isolates one knob of the bounce-back / virtual-line design
and reports AMAT across the suite:

* bounce-back cache size — "small bounce-back caches perform nearly as
  well as large ones" (the smaller the buffer, the sooner a polluted
  victim returns to the 1-cycle main cache);
* bounce-back associativity — "a 4-way bounce-back cache would perform
  reasonably well" vs the fully associative default;
* admission policy — admitting every victim (the paper's choice: the
  buffer doubles as a victim cache) vs only temporal-tagged victims
  (the "more natural" idea the paper rejects);
* temporal-bit reset after a bounce (the dynamic adjustment) — without
  it, "dead" reusable data keeps bouncing and pollutes the cache;
* physical line size under software assistance — 16 B performs close to
  32 B, which would allow a cheaper processor-cache multiplexer.
"""

from __future__ import annotations

from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import ExperimentSpec, FigureResult, run_experiment

BB_SIZES = (4, 8, 16, 32)


def _soft_spec(**changes) -> CacheSpec:
    """The paper's full Soft configuration with ablated knobs."""
    return CacheSpec.of("soft_config", **changes)


ABLATION_SPECS = {
    "ablation-bbsize": ExperimentSpec.create(
        "ablation-bbsize",
        "Bounce-back cache size",
        {
            f"{lines} lines": _soft_spec(bounce_back_lines=lines)
            for lines in BB_SIZES
        },
    ),
    "ablation-bbassoc": ExperimentSpec.create(
        "ablation-bbassoc",
        "Bounce-back cache associativity",
        {
            "fully assoc": _soft_spec(bounce_back_ways=0),
            "4-way": _soft_spec(bounce_back_lines=16, bounce_back_ways=4),
        },
    ),
    "ablation-admission": ExperimentSpec.create(
        "ablation-admission",
        "Bounce-back admission policy",
        {
            "admit all victims": _soft_spec(admit_non_temporal=True),
            "temporal victims only": _soft_spec(admit_non_temporal=False),
        },
    ),
    "ablation-reset": ExperimentSpec.create(
        "ablation-reset",
        "Temporal-bit reset after bounce",
        {
            "reset on bounce": _soft_spec(reset_temporal_on_bounce=True),
            "no reset": _soft_spec(reset_temporal_on_bounce=False),
        },
    ),
    "ablation-physline": ExperimentSpec.create(
        "ablation-physline",
        "Physical line size under software assistance",
        {
            "LS=16B": _soft_spec(line_size=16, virtual_line_size=64),
            "LS=32B": _soft_spec(line_size=32, virtual_line_size=64),
        },
    ),
}


def bounce_back_size(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Bounce-back cache size sweep (paper default: 8 lines / 256 B)."""
    return run_experiment(ABLATION_SPECS["ablation-bbsize"], scale=scale, seed=seed)


def bounce_back_associativity(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Fully associative vs 4-way bounce-back cache."""
    return run_experiment(ABLATION_SPECS["ablation-bbassoc"], scale=scale, seed=seed)


def admission_policy(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Victim-for-all admission vs temporal-only admission."""
    return run_experiment(
        ABLATION_SPECS["ablation-admission"], scale=scale, seed=seed
    )


def temporal_reset(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Dynamic adjustment: reset the temporal bit after bouncing."""
    return run_experiment(ABLATION_SPECS["ablation-reset"], scale=scale, seed=seed)


def write_policy(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Write-back vs write-through on the Standard baseline.

    The paper assumes write-back with a write buffer (its reference [20]
    is Jouppi's write-policy study); this ablation shows why: numerical
    codes update arrays in place, and write-through multiplies the
    write traffic without buying misses.
    """
    configs = {
        "write-back": CacheSpec.of("standard_cache", write_policy="write-back"),
        "write-through": CacheSpec.of(
            "standard_cache", write_policy="write-through"
        ),
        "write-through, no-allocate": CacheSpec.of(
            "standard_cache", write_policy="write-through", write_allocate=False
        ),
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="ablation-writepolicy",
        title="Write policies on the standard cache",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    # Writebacks per reference tell the traffic story.
    for bench, row in sweep.metric("writebacks").items():
        refs = sweep.results[bench]["write-back"].refs
        for config, value in row.items():
            result.add(bench, f"wb/ref {config}", value / max(1, refs))
    return result


def physical_line(scale: str = "paper", seed: int = 0) -> FigureResult:
    """16 B vs 32 B physical lines under software assistance."""
    return run_experiment(
        ABLATION_SPECS["ablation-physline"], scale=scale, seed=seed
    )


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    for fn in (
        bounce_back_size,
        bounce_back_associativity,
        admission_policy,
        temporal_reset,
        physical_line,
    ):
        print(fn(scale).table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
