"""Ablations of the design choices the paper discusses in prose.

Each function isolates one knob of the bounce-back / virtual-line design
and reports AMAT across the suite:

* bounce-back cache size — "small bounce-back caches perform nearly as
  well as large ones" (the smaller the buffer, the sooner a polluted
  victim returns to the 1-cycle main cache);
* bounce-back associativity — "a 4-way bounce-back cache would perform
  reasonably well" vs the fully associative default;
* admission policy — admitting every victim (the paper's choice: the
  buffer doubles as a victim cache) vs only temporal-tagged victims
  (the "more natural" idea the paper rejects);
* temporal-bit reset after a bounce (the dynamic adjustment) — without
  it, "dead" reusable data keeps bouncing and pollutes the cache;
* physical line size under software assistance — 16 B performs close to
  32 B, which would allow a cheaper processor-cache multiplexer.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

from ..core.config import SoftCacheConfig
from ..core.software_cache import SoftwareAssistedCache
from ..harness.runner import run_sweep
from ..workloads.registry import suite_traces
from .common import FigureResult

BB_SIZES = (4, 8, 16, 32)


def _soft(**changes) -> SoftwareAssistedCache:
    return SoftwareAssistedCache(SoftCacheConfig().derive(**changes))


def _run(configs, title: str, figure: str, scale: str, seed: int) -> FigureResult:
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure=figure, title=title, series=list(configs), metric="AMAT (cycles)"
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result


def bounce_back_size(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Bounce-back cache size sweep (paper default: 8 lines / 256 B)."""
    configs = {
        f"{lines} lines": partial(_soft, bounce_back_lines=lines)
        for lines in BB_SIZES
    }
    return _run(
        configs, "Bounce-back cache size", "ablation-bbsize", scale, seed
    )


def bounce_back_associativity(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Fully associative vs 4-way bounce-back cache."""
    configs = {
        "fully assoc": partial(_soft, bounce_back_ways=0),
        "4-way": partial(_soft, bounce_back_lines=16, bounce_back_ways=4),
    }
    return _run(
        configs,
        "Bounce-back cache associativity",
        "ablation-bbassoc",
        scale,
        seed,
    )


def admission_policy(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Victim-for-all admission vs temporal-only admission."""
    configs = {
        "admit all victims": partial(_soft, admit_non_temporal=True),
        "temporal victims only": partial(_soft, admit_non_temporal=False),
    }
    return _run(
        configs, "Bounce-back admission policy", "ablation-admission", scale, seed
    )


def temporal_reset(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Dynamic adjustment: reset the temporal bit after bouncing."""
    configs = {
        "reset on bounce": partial(_soft, reset_temporal_on_bounce=True),
        "no reset": partial(_soft, reset_temporal_on_bounce=False),
    }
    return _run(
        configs, "Temporal-bit reset after bounce", "ablation-reset", scale, seed
    )


def write_policy(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Write-back vs write-through on the Standard baseline.

    The paper assumes write-back with a write buffer (its reference [20]
    is Jouppi's write-policy study); this ablation shows why: numerical
    codes update arrays in place, and write-through multiplies the
    write traffic without buying misses.
    """
    from ..sim.geometry import CacheGeometry
    from ..sim.standard import StandardCache

    def cache(policy: str, allocate: bool = True) -> StandardCache:
        return StandardCache(
            CacheGeometry(8 * 1024, 32, 1),
            write_policy=policy,
            write_allocate=allocate,
        )

    configs = {
        "write-back": partial(cache, "write-back"),
        "write-through": partial(cache, "write-through"),
        "write-through, no-allocate": partial(cache, "write-through", False),
    }
    sweep = run_sweep(suite_traces(scale, seed), configs)
    result = FigureResult(
        figure="ablation-writepolicy",
        title="Write policies on the standard cache",
        series=list(configs),
        metric="AMAT (cycles)",
    )
    for bench, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(bench, config, value)
    # Writebacks per reference tell the traffic story.
    for bench, row in sweep.metric("writebacks").items():
        refs = sweep.results[bench]["write-back"].refs
        for config, value in row.items():
            result.add(bench, f"wb/ref {config}", value / max(1, refs))
    return result


def physical_line(scale: str = "paper", seed: int = 0) -> FigureResult:
    """16 B vs 32 B physical lines under software assistance."""
    configs = {
        "LS=16B": partial(_soft, line_size=16, virtual_line_size=64),
        "LS=32B": partial(_soft, line_size=32, virtual_line_size=64),
    }
    return _run(
        configs,
        "Physical line size under software assistance",
        "ablation-physline",
        scale,
        seed,
    )


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    for fn in (
        bounce_back_size,
        bounce_back_associativity,
        admission_policy,
        temporal_reset,
        physical_line,
    ):
        print(fn(scale).table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
