"""Miss-concentration study (section 5, Abraham et al.).

"Code profiling shows that few load/store instructions induce many
cache misses and it is consequently suggested that labeled load/store
instructions can be used to optimize the cache behavior" — the premise
that makes one-bit-per-instruction hints viable.  This study measures,
per benchmark, how few static instructions cover 90% of the standard
cache's misses.
"""

from __future__ import annotations

from ..core import presets
from ..metrics.attribution import attribute
from ..workloads.registry import suite_traces
from .common import FigureResult


def miss_concentration(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Static instruction counts and the 90%-of-misses coverage."""
    result = FigureResult(
        figure="attribution",
        title="Few load/stores induce most misses (Abraham et al.)",
        series=[
            "static ld/st",
            "covering 90% of misses",
            "fraction",
        ],
        metric="counts / fraction",
    )
    for name, trace in suite_traces(scale, seed).items():
        attribution = attribute(presets.standard(), trace)
        covering = attribution.instructions_covering(0.9)
        result.add(name, "static ld/st", attribution.static_instructions)
        result.add(name, "covering 90% of misses", covering)
        result.add(name, "fraction", attribution.concentration(0.9))
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(miss_concentration(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
