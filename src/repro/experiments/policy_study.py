"""Tagging-policy study: elementary (the paper) vs volume-aware.

The paper closes with "more sophisticated techniques might bring further
improvements".  The volume-aware policy
(:mod:`repro.compiler.volume`) refuses the temporal tag when the
estimated reuse distance exceeds the retention budget — reuse the cache
could never hold anyway.  The expected outcome is not a large AMAT win
(the dynamic adjustment already bounds the damage of stale tags to one
bounce per line) but a large cut in *wasted bounce-back activity*, which
in hardware is ports, energy and write-buffer pressure.
"""

from __future__ import annotations

from typing import Dict

from ..compiler import Array, ArrayRef, Loop, Program, generate_trace, nest, var
from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from ..workloads.registry import BENCHMARK_ORDER, build_program
from .common import FigureResult

POLICIES = ("elementary", "volume-aware")


def _oversized_mv(scale: str) -> Program:
    """MV whose X reuse distance exceeds the retention budget."""
    sizes = {"tiny": (160, 6), "test": (2600, 8), "paper": (4000, 24)}
    n, rows = sizes.get(scale, sizes["paper"])
    j1, j2 = var("j1"), var("j2")
    loop = nest(
        [Loop("j1", 0, rows), Loop("j2", 0, n)],
        body=[ArrayRef("A", (j2, j1)), ArrayRef("X", (j2,))],
        pre=[ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="mv-oversized",
    )
    return Program(
        "MV-oversized",
        [Array("Y", (n,)), Array("A", (n, n)), Array("X", (n,))],
        [loop],
    )


def policy_comparison(scale: str = "paper", seed: int = 0) -> FigureResult:
    """AMAT and bounce activity per tagging policy, across the suite
    plus an oversized MV where the policies actually disagree."""
    result = FigureResult(
        figure="policy",
        title="Elementary vs volume-aware temporal tagging",
        series=[
            "AMAT elem", "AMAT volume", "bounces elem", "bounces volume",
        ],
        metric="AMAT (cycles) / bounce operations",
    )
    programs = {name: build_program(name, scale) for name in BENCHMARK_ORDER}
    programs["MV-oversized"] = _oversized_mv(scale)
    # One grid row per (benchmark, policy): the same program tagged by
    # each policy is a distinct trace, so the cells cache independently.
    traces = {
        f"{name}|{policy}": generate_trace(program, seed=seed, policy=policy)
        for name, program in programs.items()
        for policy in POLICIES
    }
    sweep = run_sweep(traces, {"Soft": CacheSpec.of("soft")})
    for name in programs:
        for policy, suffix in (("elementary", "elem"), ("volume-aware", "volume")):
            r = sweep.results[f"{name}|{policy}"]["Soft"]
            result.add(name, f"AMAT {suffix}", r.amat)
            result.add(name, f"bounces {suffix}", r.bounce_backs)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(policy_comparison(scale).table())


if __name__ == "__main__":  # pragma: no cover
    main()
