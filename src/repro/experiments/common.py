"""Shared infrastructure for the per-figure experiment drivers.

Every driver returns a :class:`FigureResult` — a named grid of series
values — so the benchmark harness and EXPERIMENTS.md generation can
treat all nineteen figures uniformly.

Drivers whose figure is a plain (benchmark x configuration) grid are
*declared* rather than coded: an :class:`ExperimentSpec` names the
figure, the benchmarks, the configurations (as picklable
:class:`~repro.core.spec.CacheSpec` objects) and the metric, and
:func:`run_experiment` turns it into a :class:`FigureResult` through the
parallel cached sweep engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.spec import CacheSpec
from ..harness.tables import format_table


@dataclass
class FigureResult:
    """Reproduction of one paper figure: rows x series of numbers."""

    figure: str
    title: str
    series: List[str]
    #: row label (benchmark, sweep point...) -> series name -> value
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metric: str = ""
    notes: str = ""

    def add(self, row: str, name: str, value: float) -> None:
        self.rows.setdefault(row, {})[name] = value
        if name not in self.series:
            self.series.append(name)

    def value(self, row: str, name: str) -> float:
        return self.rows[row][name]

    def row(self, row: str) -> Dict[str, float]:
        return self.rows[row]

    def column(self, name: str) -> Dict[str, float]:
        """One series across all rows (a line on the paper's plot)."""
        return {row: cells[name] for row, cells in self.rows.items() if name in cells}

    def chart(self, width: int = 48, precision: int = 3) -> str:
        """ASCII grouped-bar rendering (the paper's figures are bars)."""
        from ..harness.charts import bar_chart

        header = f"{self.figure}: {self.title}"
        if self.metric:
            header += f"  [{self.metric}]"
        body = bar_chart(self.series, self.rows, width, precision)
        return "\n".join([header, body])

    def table(self, precision: int = 3) -> str:
        header = f"{self.figure}: {self.title}"
        if self.metric:
            header += f"  [{self.metric}]"
        body = format_table(self.series, self.rows, precision=precision)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.table()


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one grid experiment.

    ``configs`` is an ordered tuple of ``(series name, CacheSpec)``
    pairs; ``benchmarks`` is a tuple of registered benchmark names (empty
    = the paper's full nine-benchmark suite).  The spec itself is frozen
    and picklable, so whole experiments can be shipped, compared and
    round-tripped like cache specs.
    """

    figure: str
    title: str
    configs: Tuple[Tuple[str, CacheSpec], ...]
    metric: str = "amat"
    metric_label: str = "AMAT (cycles)"
    benchmarks: Tuple[str, ...] = ()
    notes: str = ""
    #: Simulation-engine knob (``auto`` / ``reference`` / ``fast``),
    #: forwarded to the sweep engine and into the result-cache key.
    engine: str = "auto"

    @classmethod
    def create(
        cls,
        figure: str,
        title: str,
        configs: Mapping[str, CacheSpec],
        metric: str = "amat",
        metric_label: str = "AMAT (cycles)",
        benchmarks: Sequence[str] = (),
        notes: str = "",
        engine: str = "auto",
    ) -> "ExperimentSpec":
        return cls(
            figure=figure,
            title=title,
            configs=tuple(configs.items()),
            metric=metric,
            metric_label=metric_label,
            benchmarks=tuple(benchmarks),
            notes=notes,
            engine=engine,
        )

    def config_map(self) -> Dict[str, CacheSpec]:
        return dict(self.configs)

    def series(self) -> List[str]:
        return [name for name, _ in self.configs]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "title": self.title,
            "metric": self.metric,
            "metric_label": self.metric_label,
            "benchmarks": list(self.benchmarks),
            "notes": self.notes,
            "engine": self.engine,
            "configs": [
                {"name": name, "spec": spec.to_dict()}
                for name, spec in self.configs
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            figure=payload["figure"],
            title=payload["title"],
            metric=payload.get("metric", "amat"),
            metric_label=payload.get("metric_label", "AMAT (cycles)"),
            benchmarks=tuple(payload.get("benchmarks", ())),
            notes=payload.get("notes", ""),
            engine=payload.get("engine", "auto"),
            configs=tuple(
                (entry["name"], CacheSpec.from_dict(entry["spec"]))
                for entry in payload["configs"]
            ),
        )


def run_experiment(
    spec: ExperimentSpec,
    scale: str = "paper",
    seed: int = 0,
    jobs: Union[int, str, None] = None,
    cache: Any = "auto",
    traces: Optional[Mapping[str, Any]] = None,
    engine: Optional[str] = None,
    telemetry: Any = None,
    telemetry_dir: Any = None,
) -> FigureResult:
    """Run one declared experiment through the sweep engine.

    ``traces`` overrides the benchmark registry (used by studies whose
    rows are synthetic traces rather than suite benchmarks).  ``engine``
    overrides the spec's engine knob for this run.  ``telemetry`` (a
    :class:`~repro.telemetry.TelemetrySpec`) records per-cell telemetry
    artifacts under ``telemetry_dir`` — a side channel that never alters
    the figure's numbers or their result-cache keys.
    """
    from ..harness.runner import run_sweep
    from ..workloads.registry import BENCHMARK_ORDER, get_trace

    if traces is None:
        names = spec.benchmarks or BENCHMARK_ORDER
        traces = {name: get_trace(name, scale, seed) for name in names}
    if engine is None:
        # The spec's default "auto" defers to $REPRO_ENGINE (the CLI's
        # channel into figure drivers); a spec pinned to a concrete
        # engine wins over the environment.
        engine = spec.engine if spec.engine != "auto" else None
    sweep = run_sweep(
        traces,
        spec.config_map(),
        jobs=jobs,
        cache=cache,
        engine=engine,
        telemetry=telemetry,
        telemetry_dir=telemetry_dir,
    )
    result = FigureResult(
        figure=spec.figure,
        title=spec.title,
        series=spec.series(),
        metric=spec.metric_label,
        notes=spec.notes,
    )
    for bench, row in sweep.metric(spec.metric).items():
        for config, value in row.items():
            result.add(bench, config, value)
    return result
