"""Shared infrastructure for the per-figure experiment drivers.

Every driver returns a :class:`FigureResult` — a named grid of series
values — so the benchmark harness and EXPERIMENTS.md generation can
treat all nineteen figures uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..harness.tables import format_table


@dataclass
class FigureResult:
    """Reproduction of one paper figure: rows x series of numbers."""

    figure: str
    title: str
    series: List[str]
    #: row label (benchmark, sweep point...) -> series name -> value
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metric: str = ""
    notes: str = ""

    def add(self, row: str, name: str, value: float) -> None:
        self.rows.setdefault(row, {})[name] = value
        if name not in self.series:
            self.series.append(name)

    def value(self, row: str, name: str) -> float:
        return self.rows[row][name]

    def row(self, row: str) -> Dict[str, float]:
        return self.rows[row]

    def column(self, name: str) -> Dict[str, float]:
        """One series across all rows (a line on the paper's plot)."""
        return {row: cells[name] for row, cells in self.rows.items() if name in cells}

    def chart(self, width: int = 48, precision: int = 3) -> str:
        """ASCII grouped-bar rendering (the paper's figures are bars)."""
        from ..harness.charts import bar_chart

        header = f"{self.figure}: {self.title}"
        if self.metric:
            header += f"  [{self.metric}]"
        body = bar_chart(self.series, self.rows, width, precision)
        return "\n".join([header, body])

    def table(self, precision: int = 3) -> str:
        header = f"{self.figure}: {self.title}"
        if self.metric:
            header += f"  [{self.metric}]"
        body = format_table(self.series, self.rows, precision=precision)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.table()
