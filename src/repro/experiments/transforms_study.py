"""Loop-transformation studies (sections 3.2 and 4.2).

* **Interchange** — section 3.2 blames part of the Perfect Club's modest
  gains on "badly ordered loops, inducing non stride-one references, and
  preventing the use of virtual lines".  The study takes the BDN-style
  badly ordered sweep (``G(I,J)`` with ``J`` innermost), interchanges it,
  and shows the recovered spatial tags unlock the virtual-line mechanism.
* **Strip-mining** — the building block of blocking (section 4.2): the
  automatically strip-mined MV nest must generate exactly the trace of
  the hand-written blocked MV workload.
"""

from __future__ import annotations

from ..compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    generate_trace,
    interchange,
    nest,
    strip_mine,
    var,
)
from ..core.spec import CacheSpec
from ..harness.runner import run_sweep
from .common import FigureResult

STANDARD_VS_SOFT = {
    "Standard": CacheSpec.of("standard"),
    "Soft": CacheSpec.of("soft"),
}


def _bad_order_program(n: int = 90, reps: int = 12) -> Program:
    """The dusty-deck sweep: A(I,J) with J innermost (stride = leading
    dimension)."""
    i, j, r = var("i"), var("j"), var("r")
    loop = nest(
        [Loop("r", 0, reps, opaque=True), Loop("i", 0, n), Loop("j", 0, n)],
        body=[ArrayRef("G", (i, j))],
        name="bad-order",
    )
    return Program("badorder", [Array("G", (n, n))], [loop])


def interchange_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """AMAT before/after interchanging the badly ordered sweep."""
    sizes = {"tiny": (24, 2), "test": (48, 6), "paper": (90, 12)}
    n, reps = sizes.get(scale, sizes["paper"])
    program = _bad_order_program(n, reps)
    original = program.items[0]
    swapped = interchange(original, ["r", "j", "i"], program.arrays)
    transformed = Program("badorder-fixed", [Array("G", (n, n))], [swapped])

    result = FigureResult(
        figure="transform-interchange",
        title="Loop interchange recovers the spatial tags (BDN-style sweep)",
        series=["Standard", "Soft"],
        metric="AMAT (cycles)",
    )
    traces = {
        label: generate_trace(prog, seed=seed)
        for label, prog in (("original (J inner)", program),
                            ("interchanged (I inner)", transformed))
    }
    sweep = run_sweep(traces, STANDARD_VS_SOFT)
    for label, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(label, config, value)

    tags = analyze_nest(swapped, program.arrays)
    result.notes = (
        f"after interchange: spatial tag = {tags.body[0].spatial} "
        f"(stride one in the new innermost loop)"
    )
    return result


def strip_mine_equivalence(scale: str = "paper", seed: int = 0):
    """The strip-mined MV nest vs the hand-written blocked-MV workload.

    Returns the pair of traces; they must be identical reference streams
    (same addresses, same tags) — the property the tests assert.
    """
    from ..workloads.dense import BLOCKED_MV_SCALES, blocked_mv_program

    n, rows = BLOCKED_MV_SCALES[scale]
    block = max(10, n // 10)
    while n % block:
        block -= 1

    j1, j2 = var("j1"), var("j2")
    plain = nest(
        [Loop("j1", 0, rows), Loop("j2", 0, n)],
        body=[ArrayRef("A", (j2, j1)), ArrayRef("X", (j2,))],
        pre=[ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="mv",
    )
    arrays = [Array("Y", (rows,)), Array("A", (n, rows)), Array("X", (n,))]
    program = Program("MV-plain", arrays, [plain])

    # Strip-mine j2 and hoist the block loop outermost = blocking.
    mined = strip_mine(plain, "j2", block, program.arrays)
    blocked_loops = (mined.loops[1], mined.loops[0], mined.loops[2])
    blocked = nest(
        blocked_loops, mined.body, pre=mined.pre, post=mined.post,
        name=f"mv-auto-B{block}",
    )
    auto = Program("MV-auto-blocked", arrays, [blocked])
    hand = blocked_mv_program(block, scale)
    return (
        generate_trace(auto, seed=seed),
        generate_trace(hand, seed=seed),
    )


def expansion_study(scale: str = "paper", seed: int = 0) -> FigureResult:
    """Subscript expansion (the section 3.2 limitation, lifted).

    A dusty-deck sweep whose subscripts go through loop-index aliases
    (``KK = 2*K; ... B(KK)``).  Without expansion the references are
    untagged and the software-assisted cache can do nothing; expanding
    recovers the stride-two spatial tags and the virtual-line gains.
    """
    sizes = {"tiny": (64, 2), "test": (400, 4), "paper": (2200, 8)}
    n, reps = sizes.get(scale, sizes["paper"])
    k, kk, k3 = var("k"), var("kk"), var("k3")
    sweep = nest(
        [Loop("r", 0, reps, opaque=True), Loop("k", 0, n)],
        body=[ArrayRef("B1", (kk,)), ArrayRef("B2", (k3,))],
        aliases={"kk": k * 2, "k3": k * 2 + 1},
        name="aliased-sweep",
    )
    arrays = [Array("B1", (2 * n,)), Array("B2", (2 * n + 1,))]
    program = Program("aliased", arrays, [sweep])

    result = FigureResult(
        figure="transform-expansion",
        title="Subscript expansion recovers tags on aliased subscripts",
        series=["Standard", "Soft"],
        metric="AMAT (cycles)",
    )
    traces = {
        label: generate_trace(program, seed=seed, expand_subscripts=expand)
        for label, expand in (("no expansion", False), ("expanded", True))
    }
    sweep = run_sweep(traces, STANDARD_VS_SOFT)
    for label, row in sweep.metric("amat").items():
        for config, value in row.items():
            result.add(label, config, value)
    return result


def main(scale: str = "paper") -> None:  # pragma: no cover - CLI helper
    print(interchange_study(scale).table())
    print()
    print(expansion_study(scale).table())
    auto, hand = strip_mine_equivalence(scale)
    same = (auto.addresses == hand.addresses).all()
    print(f"\nstrip-mined MV == hand-blocked MV: {bool(same)} "
          f"({len(auto)} references)")


if __name__ == "__main__":  # pragma: no cover
    main()
