"""Perf-regression microbenchmark of the simulation engines.

``python -m repro bench`` (or ``make bench-sim``) measures simulation
throughput — *references simulated per second* — for a small battery of
representative configurations, on every engine each configuration
supports, and writes the measurements to ``BENCH_sim.json``.  CI runs a
scaled-down smoke version of the same battery and uploads the file as
an artifact, so engine regressions show up as a number, not a feeling.

The workload is a deterministic synthetic trace (uniform addresses over
a working set four times the cache, 30% writes, tagged references,
realistic inter-reference gaps) — dense enough to exercise misses,
write-backs and the temporal machinery at a stable ~60% miss ratio.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.spec import CacheSpec
from ..memtrace.trace import Trace
from ..sim.driver import simulate
from ..sim.engine import fast_refusal

#: Default battery: the paper's Standard configuration on both model
#: classes (both have fast paths) and the full software-assisted
#: configuration (bounce-back cache: reference engine only).
BENCH_CONFIGS = ("standard", "standard_cache", "soft")

#: Default trace length; long enough that per-call overhead vanishes.
DEFAULT_REFS = 400_000


def bench_trace(refs: int = DEFAULT_REFS, seed: int = 12345) -> Trace:
    """The deterministic synthetic benchmark trace."""
    rng = np.random.default_rng(seed)
    # 8 KB caches -> 32 KB working set (4096 words of 8 bytes).
    addresses = rng.integers(0, 4096, refs, dtype=np.int64) * 8
    return Trace(
        addresses,
        rng.random(refs) < 0.3,
        rng.random(refs) < 0.2,
        rng.random(refs) < 0.2,
        rng.integers(0, 4, refs).astype(np.int64),
        name=f"bench-{refs}",
    )


def _time_once(spec: CacheSpec, trace: Trace, engine: str) -> float:
    model = spec.build()
    begin = time.perf_counter()
    simulate(model, trace, engine=engine)
    return time.perf_counter() - begin


def _bench_specs(configs: Sequence[str]) -> Dict[str, CacheSpec]:
    """Resolve battery names: preset specs first, then raw spec kinds
    (``standard_cache`` is a kind with no preset alias)."""
    from ..presets import SPECS

    return {
        name: SPECS[name] if name in SPECS else CacheSpec.of(name)
        for name in configs
    }


def run_bench(
    refs: int = DEFAULT_REFS,
    repeat: int = 3,
    configs: Sequence[str] = BENCH_CONFIGS,
) -> Dict:
    """Measure every (config, supported engine) pair; best of ``repeat``.

    Returns the ``BENCH_sim.json`` payload: per-pair throughput plus a
    fast-over-reference speedup summary for configs that support both.
    """
    specs = _bench_specs(configs)
    trace = bench_trace(refs)
    rows: List[Dict] = []
    speedups: Dict[str, float] = {}
    by_engine: Dict[str, Dict[str, float]] = {}

    for name, spec in specs.items():
        engines = ["reference"]
        if fast_refusal(spec.build()) is None:
            engines.append("fast")
        for engine in engines:
            seconds = min(_time_once(spec, trace, engine) for _ in range(repeat))
            throughput = refs / seconds
            rows.append(
                {
                    "config": name,
                    "engine": engine,
                    "seconds": round(seconds, 6),
                    "refs_per_sec": round(throughput),
                }
            )
            by_engine.setdefault(name, {})[engine] = throughput
    for name, measured in by_engine.items():
        if "fast" in measured:
            speedups[name] = round(measured["fast"] / measured["reference"], 2)

    return {
        "refs": refs,
        "repeat": repeat,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
        "fast_speedup": speedups,
    }


def write_bench(
    payload: Dict, out: Optional[str] = "BENCH_sim.json"
) -> None:
    """Write the payload (None = stdout only)."""
    if out:
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def format_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench payload."""
    lines = [
        f"simulation throughput ({payload['refs']} refs, "
        f"best of {payload['repeat']})"
    ]
    for row in payload["results"]:
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"{row['refs_per_sec'] / 1e6:7.3f} Mrefs/s"
        )
    for name, speedup in payload["fast_speedup"].items():
        lines.append(f"  {name}: fast engine is {speedup}x reference")
    return "\n".join(lines)
