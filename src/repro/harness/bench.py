"""Perf-regression microbenchmark of the simulation engines.

``python -m repro bench`` (or ``make bench-sim``) measures simulation
throughput — *references simulated per second* — for a small battery of
representative configurations, on every engine each configuration
supports, and writes the measurements to ``BENCH_sim.json``.  CI runs a
scaled-down smoke version of the same battery and uploads the file as
an artifact, so engine regressions show up as a number, not a feeling.

The workload is a deterministic synthetic trace (uniform addresses over
a working set four times the cache, 30% writes, tagged references,
realistic inter-reference gaps) — dense enough to exercise misses,
write-backs and the temporal machinery at a stable ~60% miss ratio.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.spec import CacheSpec
from ..memtrace.trace import Trace
from ..sim.driver import simulate
from ..sim.engine import fast_refusal

#: Default battery: the paper's Standard configuration on both model
#: classes (both have fast paths) and the full software-assisted
#: configuration (bounce-back cache: reference engine only).
BENCH_CONFIGS = ("standard", "standard_cache", "soft")

#: Default trace length; long enough that per-call overhead vanishes.
DEFAULT_REFS = 400_000

#: Annotations for default-battery rows that are easy to misread.  The
#: top-level ``soft`` row runs the event-driven assisted kernel on this
#: scenario's *adversarial* uniform trace (~60% miss ratio — the
#: walker's cost scales with misses), so its speedup is nothing like
#: the paper-workload assisted-path numbers, which live in the
#: top-level ``soft`` block (``bench --scenario soft``, blocked-loop
#: trace, ~1% miss).
BENCH_NOTES = {
    "soft": (
        "event-driven walker on the adversarial uniform trace (~60% "
        "miss); paper-workload assisted speedups are in the 'soft' "
        "block, not here"
    ),
}


def bench_trace(refs: int = DEFAULT_REFS, seed: int = 12345) -> Trace:
    """The deterministic synthetic benchmark trace."""
    rng = np.random.default_rng(seed)
    # 8 KB caches -> 32 KB working set (4096 words of 8 bytes).
    addresses = rng.integers(0, 4096, refs, dtype=np.int64) * 8
    return Trace(
        addresses,
        rng.random(refs) < 0.3,
        rng.random(refs) < 0.2,
        rng.random(refs) < 0.2,
        rng.integers(0, 4, refs).astype(np.int64),
        name=f"bench-{refs}",
    )


def _time_once(spec: CacheSpec, trace: Trace, engine: str) -> float:
    model = spec.build()
    begin = time.perf_counter()
    simulate(model, trace, engine=engine)
    return time.perf_counter() - begin


def _bench_specs(configs: Sequence[str]) -> Dict[str, CacheSpec]:
    """Resolve battery names: preset specs first, then raw spec kinds
    (``standard_cache`` is a kind with no preset alias)."""
    from ..presets import SPECS

    return {
        name: SPECS[name] if name in SPECS else CacheSpec.of(name)
        for name in configs
    }


def run_bench(
    refs: int = DEFAULT_REFS,
    repeat: int = 3,
    configs: Sequence[str] = BENCH_CONFIGS,
    trace: Optional[Trace] = None,
) -> Dict:
    """Measure every (config, supported engine) pair; best of ``repeat``.

    Returns the ``BENCH_sim.json`` payload: per-pair throughput plus a
    fast-over-reference speedup summary for configs that support both.
    """
    specs = _bench_specs(configs)
    default_trace = trace is None
    if trace is None:
        trace = bench_trace(refs)
    rows: List[Dict] = []
    speedups: Dict[str, float] = {}
    by_engine: Dict[str, Dict[str, float]] = {}

    for name, spec in specs.items():
        engines = ["reference"]
        if fast_refusal(spec.build()) is None:
            engines.append("fast")
        for engine in engines:
            seconds = _best_of(
                lambda: _time_once(spec, trace, engine), repeat
            )
            throughput = refs / seconds
            rows.append(
                {
                    "config": name,
                    "engine": engine,
                    "seconds": round(seconds, 6),
                    "refs_per_sec": round(throughput),
                }
            )
            by_engine.setdefault(name, {})[engine] = throughput
    for name, measured in by_engine.items():
        if "fast" in measured:
            speedups[name] = round(measured["fast"] / measured["reference"], 2)

    payload = {
        "refs": refs,
        "repeat": repeat,
        "trace": trace.name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
        "fast_speedup": speedups,
        "refusal_matrix": refusal_matrix(specs),
    }
    if default_trace:
        notes = {
            name: note for name, note in BENCH_NOTES.items() if name in specs
        }
        if notes:
            payload["notes"] = notes
            for row in rows:
                if row["config"] in notes:
                    row["note"] = notes[row["config"]]
    return payload


def refusal_matrix(specs: Dict[str, CacheSpec]) -> Dict[str, Optional[str]]:
    """config name -> structured refusal *code* (None = fast engine
    runs it).  Keyed by :attr:`~repro.sim.engine.EngineRefusal.code`,
    never by message text, so wording changes cannot mask a regrowth of
    the matrix."""
    out: Dict[str, Optional[str]] = {}
    for name, spec in specs.items():
        refusal = fast_refusal(spec.build())
        out[name] = None if refusal is None else refusal.code
    return out


# ----------------------------------------------------------------------
# Software-assisted configs: the paper-workload benchmark
# ----------------------------------------------------------------------
#: The soft config family measured by bench-soft — every assisted
#: mechanism combination the fast engine must cover.
SOFT_BENCH_CONFIGS = (
    "soft", "victim", "temporal", "spatial", "temporal-priority"
)

#: Set-associative members of the battery.  They run the event-driven
#: k-way walker (occurrence-scheduled events over cached per-trace
#: scaffolding) rather than the direct-mapped group-by, so
#: :func:`soft_bench_guard` accepts a separate floor for them.
SOFT_ASSOC_CONFIGS = ("temporal-priority",)


def soft_bench_trace(refs: int = DEFAULT_REFS, seed: int = 20817) -> Trace:
    """Deterministic blocked-loop trace for the assisted-path bench.

    :func:`bench_trace` draws uniform addresses (~60% miss ratio) —
    adversarial for an event-driven kernel whose cost scales with
    misses, and nothing like the paper's loop nests.  This trace models
    the regime the software-assisted cache targets instead (the §4.2
    blocked kernels): a hot block of 48 lines carries the temporal tag
    and takes 19 of every 20 references, while every 20th reference
    streams through a long spatial-tagged array, touching each 8-byte
    word twice (the load and the store of an update).  Pure miss ratio
    is ~1%, with steady bounce-back and virtual-line traffic from the
    stream/block conflicts.
    """
    rng = np.random.default_rng(seed)
    i = np.arange(refs, dtype=np.int64)
    is_stream = (i % 20) == 19
    # Hot block: 48 lines (of 256 sets) of reused data.
    block_addr = rng.integers(0, 48 * 4, refs, dtype=np.int64) * 8
    # Spatial stream: an update sweep over a 512 KB array — each word
    # read then written, one pure miss per 4-word line (halved again by
    # virtual lines).
    k = np.cumsum(is_stream) - 1
    stream_addr = (1 << 20) + ((k >> 1) % (1 << 16)) * 8
    addresses = np.where(is_stream, stream_addr, block_addr)
    is_write = np.where(is_stream, (k & 1) == 1, rng.random(refs) < 0.3)
    return Trace(
        addresses.astype(np.int64),
        is_write,
        ~is_stream,
        is_stream,
        rng.integers(0, 4, refs).astype(np.int64),
        name=f"bench-soft-{refs}",
    )


def run_soft_bench(
    refs: int = DEFAULT_REFS,
    repeat: int = 3,
    configs: Sequence[str] = SOFT_BENCH_CONFIGS,
) -> Dict:
    """Measure the assisted-path kernels on the loop-locality workload.

    Same shape as :func:`run_bench` (per-engine rows, ``fast_speedup``,
    ``refusal_matrix``) but on :func:`soft_bench_trace` and the soft
    config family.  The refusal matrix here is the one the CI guard
    watches: every entry must be None — the whole point of the
    assisted-path kernels is that the soft family never refuses.
    """
    trace = soft_bench_trace(refs)
    payload = run_bench(refs=refs, repeat=repeat, configs=configs,
                        trace=trace)
    miss_ratio = {}
    for name, spec in _bench_specs(configs).items():
        result = simulate(spec.build(), trace, engine="auto")
        miss_ratio[name] = round(result.miss_ratio, 4)
    payload["miss_ratio"] = miss_ratio
    return payload


def soft_bench_guard(
    payload: Dict,
    min_speedup: float,
    assoc_min_speedup: Optional[float] = None,
) -> List[str]:
    """CI guard over a :func:`run_soft_bench` payload.

    Returns a list of human-readable violations (empty = pass): a soft
    config whose fast-over-reference speedup fell below ``min_speedup``,
    a config where the fast engine never ran at all, or a non-``None``
    entry in the refusal matrix (the matrix regrowing means a config
    family the kernels used to cover now falls back to the reference
    loop — a silent 10x+ regression).  The set-associative configs
    (:data:`SOFT_ASSOC_CONFIGS`) are held to ``assoc_min_speedup`` when
    given, ``min_speedup`` otherwise.
    """
    problems: List[str] = []
    for name, code in payload["refusal_matrix"].items():
        if code is not None:
            problems.append(
                f"{name}: fast engine refuses (code={code}); the soft "
                f"family must never refuse"
            )
    for name, speedup in payload["fast_speedup"].items():
        floor = min_speedup
        if name in SOFT_ASSOC_CONFIGS and assoc_min_speedup is not None:
            floor = assoc_min_speedup
        if speedup < floor:
            problems.append(
                f"{name}: fast speedup {speedup}x below the "
                f"{floor}x floor"
            )
    for name in payload["miss_ratio"]:
        if name not in payload["fast_speedup"]:
            problems.append(f"{name}: no fast-engine measurement")
    return problems


# ----------------------------------------------------------------------
# Native compiled tier
# ----------------------------------------------------------------------
#: Configs measured by bench-native: the plain write-back standard
#: configurations the compiled kernels cover (both model classes).
NATIVE_BENCH_CONFIGS = ("standard", "standard_cache")


def run_native_bench(
    refs: int = DEFAULT_REFS,
    repeat: int = 3,
    configs: Sequence[str] = NATIVE_BENCH_CONFIGS,
) -> Dict:
    """Measure the native compiled tier against fast and reference.

    Same shape as :func:`run_bench` (per-engine rows) plus a
    ``native_speedup`` summary (native over *fast* — the ladder step
    this tier buys) and a ``native_refusal_matrix`` keyed on
    :func:`~repro.sim.engine.native_refusal` codes.  When no toolchain
    or prebuilt library exists, every entry reads ``native-unavailable``
    and the native rows are simply absent — :func:`native_bench_guard`
    then degrades to a completed-run check, so a compiler is an
    optimisation, never a requirement.
    """
    from ..sim.engine import native_refusal
    from ..sim.native import availability, build as native_build

    specs = _bench_specs(configs)
    trace = bench_trace(refs)
    rows: List[Dict] = []
    native_speedup: Dict[str, float] = {}
    fast_speedup: Dict[str, float] = {}
    matrix: Dict[str, Optional[str]] = {}
    by_engine: Dict[str, Dict[str, float]] = {}

    for name, spec in specs.items():
        refusal = native_refusal(spec.build())
        matrix[name] = None if refusal is None else refusal.code
        engines = ["reference"]
        if fast_refusal(spec.build()) is None:
            engines.append("fast")
        if refusal is None:
            engines.append("native")
        for engine in engines:
            seconds = _best_of(
                lambda: _time_once(spec, trace, engine), repeat
            )
            throughput = refs / seconds
            rows.append(
                {
                    "config": name,
                    "engine": engine,
                    "seconds": round(seconds, 6),
                    "refs_per_sec": round(throughput),
                }
            )
            by_engine.setdefault(name, {})[engine] = throughput
    for name, measured in by_engine.items():
        if "fast" in measured:
            fast_speedup[name] = round(
                measured["fast"] / measured["reference"], 2
            )
        if "native" in measured and "fast" in measured:
            native_speedup[name] = round(
                measured["native"] / measured["fast"], 2
            )

    diagnostic = availability()
    command = native_build.compiler_command()
    toolchain = None
    if command is not None:
        toolchain, _ = native_build._compiler_version(command)
    library = native_build.library_path()
    return {
        "refs": refs,
        "repeat": repeat,
        "trace": trace.name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "toolchain": toolchain,
        "library": None if library is None else str(library),
        "native_diagnostic": diagnostic,
        "results": rows,
        "fast_speedup": fast_speedup,
        "native_speedup": native_speedup,
        "native_refusal_matrix": matrix,
    }


def native_bench_guard(payload: Dict, min_speedup: float) -> List[str]:
    """CI guard over a :func:`run_native_bench` payload.

    Enforces ``native/fast >= min_speedup`` for every battery config —
    unless the native tier was unavailable (no compiler, no prebuilt
    library), in which case the guard degrades to checking the fast
    rows completed: the tier is opt-in by construction, and the
    no-compiler CI job relies on this degradation staying green.  Any
    refusal code *other* than ``native-unavailable`` is always a
    failure — the battery is chosen so the compiled kernels must cover
    it.
    """
    problems: List[str] = []
    matrix = payload["native_refusal_matrix"]
    for name, code in matrix.items():
        if code is not None and code != "native-unavailable":
            problems.append(
                f"{name}: native tier refuses (code={code}); the "
                f"native battery must only ever refuse for a missing "
                f"toolchain"
            )
    if all(code == "native-unavailable" for code in matrix.values()):
        # No toolchain anywhere: demand only that the ladder served the
        # fast tier (speed is covered where a compiler exists).
        for row in payload["results"]:
            if row["engine"] == "fast" and row["refs_per_sec"] <= 0:
                problems.append(
                    f"{row['config']}: fast fallback recorded no "
                    f"throughput"
                )
        return problems
    for name, code in matrix.items():
        if code is not None:
            continue
        speedup = payload["native_speedup"].get(name)
        if speedup is None:
            problems.append(f"{name}: no native-engine measurement")
        elif speedup < min_speedup:
            problems.append(
                f"{name}: native speedup {speedup}x over fast is below "
                f"the {min_speedup}x floor"
            )
    return problems


def format_native_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench-native payload."""
    lines = [
        f"native compiled tier ({payload['refs']} refs, "
        f"best of {payload['repeat']})"
    ]
    if payload["toolchain"]:
        lines.append(f"  toolchain: {payload['toolchain']}")
    if payload["library"]:
        lines.append(f"  library:   {payload['library']}")
    if payload["native_diagnostic"]:
        lines.append(f"  native unavailable: {payload['native_diagnostic']}")
    for row in payload["results"]:
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"{row['refs_per_sec'] / 1e6:7.3f} Mrefs/s"
        )
    for name, speedup in payload["native_speedup"].items():
        lines.append(f"  {name}: native tier is {speedup}x fast")
    refused = {
        name: code
        for name, code in payload["native_refusal_matrix"].items()
        if code is not None
    }
    lines.append(
        f"  native refusal matrix: "
        f"{refused if refused else 'empty (all clear)'}"
    )
    return "\n".join(lines)


#: Default streamed-trace length for bench-stream (10M refs — well past
#: what the paper's traces need, per the ROADMAP's scale goal).
DEFAULT_STREAM_REFS = 10_000_000

#: Configs measured by bench-stream, pinned to an engine tier so the
#: scenario keeps covering both streaming code paths (the windowed
#: per-reference loop and the per-chunk batch kernels) now that the
#: soft family auto-selects the fast engine.  ``soft`` deliberately
#: stays on the reference tier here: this scenario proves memory
#: boundedness, not kernel speed (bench-soft covers that), and the
#: uniform store trace is the event-driven walker's worst case — its
#: tracemalloc pass alone would take hours at 10M refs.
STREAM_CONFIGS = ("standard", "soft")
STREAM_ENGINE_TIERS = {"standard": "fast", "soft": "reference"}


def _write_bench_store(refs, chunk_refs, root, seed=12345):
    """Write the synthetic bench trace as a v2 store, block by block.

    Draws the same distribution as :func:`bench_trace` but never holds
    more than one block in memory, so building the 10M-reference input
    is itself O(chunk).
    """
    from ..memtrace.store import TraceStore

    rng = np.random.default_rng(seed)
    block = min(chunk_refs, 1 << 18)
    with TraceStore.create(
        root, name=f"bench-stream-{refs}", chunk_refs=chunk_refs
    ) as writer:
        remaining = refs
        while remaining:
            n = min(block, remaining)
            writer.append_block(
                rng.integers(0, 4096, n, dtype=np.int64) * 8,
                rng.random(n) < 0.3,
                rng.random(n) < 0.2,
                rng.random(n) < 0.2,
                rng.integers(0, 4, n).astype(np.int64),
            )
            remaining -= n
    return writer.store


def _traced_peak(fn) -> int:
    """Peak traced allocation (bytes) while running ``fn``.

    ``tracemalloc`` slows the traced run severalfold, so callers time
    throughput in a separate untraced pass.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def run_stream_bench(
    refs: int = DEFAULT_STREAM_REFS,
    chunk_refs: int = 1 << 18,
    repeat: int = 2,
    configs: Sequence[str] = STREAM_CONFIGS,
    workdir: Optional[str] = None,
) -> Dict:
    """Prove streaming stays bounded in memory without losing speed.

    For each config the same trace is simulated twice — streamed from a
    chunked on-disk store (:func:`~repro.sim.driver.simulate_stream`)
    and materialised in memory — measuring end-to-end throughput from
    the same on-disk input (best of ``repeat``) and peak traced
    allocations (one extra ``tracemalloc`` pass each; not wall-clock
    comparable).  The payload records the
    streamed/in-memory throughput ratio and the peak-memory ratio; a
    bounded streamed peak shows as a small fraction of the in-memory
    peak, which is O(trace).
    """
    import resource
    import shutil
    import tempfile

    from ..sim.driver import simulate_stream
    from ..stream import TraceStream

    specs = _bench_specs(configs)
    root = tempfile.mkdtemp(prefix="bench-stream-", dir=workdir)
    rows: List[Dict] = []
    try:
        store = _write_bench_store(refs, chunk_refs, f"{root}/trace.store")
        stream = TraceStream.from_store(store)
        for name, spec in specs.items():
            engine = STREAM_ENGINE_TIERS.get(name)
            if engine is None:
                engine = (
                    "fast" if fast_refusal(spec.build()) is None
                    else "reference"
                )
            elif engine == "fast" and fast_refusal(spec.build()) is not None:
                engine = "reference"

            def streamed():
                simulate_stream(spec.build(), stream, engine=engine)

            def in_memory():
                simulate(spec.build(), stream.load(), engine=engine)

            streamed_s = min(_timed(streamed) for _ in range(repeat))
            in_memory_s = min(_timed(in_memory) for _ in range(repeat))
            streamed_peak = _traced_peak(streamed)
            in_memory_peak = _traced_peak(in_memory)
            rows.append(
                {
                    "config": name,
                    "engine": engine,
                    "streamed_refs_per_sec": round(refs / streamed_s),
                    "in_memory_refs_per_sec": round(refs / in_memory_s),
                    "throughput_ratio": round(in_memory_s / streamed_s, 3),
                    "streamed_peak_bytes": streamed_peak,
                    "in_memory_peak_bytes": in_memory_peak,
                    "peak_ratio": round(streamed_peak / in_memory_peak, 4),
                }
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "refs": refs,
        "chunk_refs": chunk_refs,
        "repeat": repeat,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "max_rss_kb": usage.ru_maxrss,
        "results": rows,
    }


def _timed(fn) -> float:
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


# ----------------------------------------------------------------------
# Pipelined streaming
# ----------------------------------------------------------------------
#: Worker counts measured by bench-pipeline (the ISSUE target is the
#: 4-worker row; CI guards the conservative 2-worker row).
PIPELINE_WORKER_COUNTS = (2, 4)


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware — a
    container limited to one core reports one here even when the host
    has many)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_pipeline_bench(
    refs: int = DEFAULT_STREAM_REFS,
    chunk_refs: int = 1 << 18,
    repeat: int = 2,
    workers: Sequence[int] = PIPELINE_WORKER_COUNTS,
    workdir: Optional[str] = None,
) -> Dict:
    """Measure the pipelined streaming engine against the serial path.

    Streams the standard config from an on-disk store through
    :func:`~repro.sim.driver.simulate_stream` serially and with each
    worker count (best of ``repeat``), recording throughput and the
    speedup over serial.  The payload records the CPUs available to the
    process — the speedup a worker count can deliver is capped by the
    cores backing it, which is what :func:`pipeline_bench_guard` keys
    on.
    """
    import shutil
    import tempfile

    from ..presets import SPECS
    from ..sim.driver import simulate_stream
    from ..stream import TraceStream

    spec = SPECS["standard"]
    root = tempfile.mkdtemp(prefix="bench-pipeline-", dir=workdir)
    rows: List[Dict] = []
    try:
        store = _write_bench_store(refs, chunk_refs, f"{root}/trace.store")
        stream = TraceStream.from_store(store)

        serial_s = min(
            _timed(
                lambda: simulate_stream(spec.build(), stream, engine="fast")
            )
            for _ in range(repeat)
        )
        cpus = _available_cpus()
        for count in workers:
            seconds = min(
                _timed(
                    lambda: simulate_stream(
                        spec.build(), stream, workers=count
                    )
                )
                for _ in range(repeat)
            )
            row = {
                "workers": count,
                "seconds": round(seconds, 6),
                "refs_per_sec": round(refs / seconds),
            }
            if cpus < count:
                # Fewer cores than workers: a "speedup" here would just
                # measure oversubscription, and a sub-1x number reads as
                # a pipeline regression when it is a machine property.
                row["insufficient_cpus"] = True
            else:
                row["speedup"] = round(serial_s / seconds, 2)
            rows.append(row)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "refs": refs,
        "chunk_refs": chunk_refs,
        "repeat": repeat,
        "config": "standard",
        "cpus": cpus,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "serial_refs_per_sec": round(refs / serial_s),
        "results": rows,
    }


def pipeline_bench_guard(
    payload: Dict, min_speedup: float, at_workers: int = 2
) -> List[str]:
    """CI guard over a :func:`run_pipeline_bench` payload.

    Enforces ``speedup >= min_speedup`` on the ``at_workers`` row —
    but only when the process actually had that many CPUs: a pipeline
    cannot beat serial on one core, so rows stamped
    ``insufficient_cpus`` (and machines whose CPU count is below the
    worker count) degrade the guard to checking that the pipelined run
    completed (its bit-identical parity is covered by tests, not this
    guard).
    """
    problems: List[str] = []
    rows = {row["workers"]: row for row in payload["results"]}
    row = rows.get(at_workers)
    if row is None:
        problems.append(
            f"pipeline bench has no measurement at {at_workers} workers"
        )
        return problems
    if row["refs_per_sec"] <= 0:
        problems.append(
            f"pipeline run at {at_workers} workers recorded no throughput"
        )
    cpus = payload.get("cpus", 1)
    if row.get("insufficient_cpus") or cpus < at_workers:
        return problems  # not enough cores to demand a speedup
    if row["speedup"] < min_speedup:
        problems.append(
            f"pipeline speedup at {at_workers} workers is "
            f"{row['speedup']}x, below the {min_speedup}x floor "
            f"({cpus} CPUs available)"
        )
    return problems


def format_pipeline_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench-pipeline payload."""
    lines = [
        f"pipelined streaming ({payload['refs']} refs, chunks of "
        f"{payload['chunk_refs']}, best of {payload['repeat']}, "
        f"{payload['cpus']} CPUs)"
    ]
    lines.append(
        f"  serial [{payload['config']}]  "
        f"{payload['serial_refs_per_sec'] / 1e6:7.3f} Mrefs/s"
    )
    for row in payload["results"]:
        if row.get("insufficient_cpus"):
            verdict = "(insufficient CPUs; no speedup claim)"
        else:
            verdict = f"({row['speedup']:.2f}x serial)"
        lines.append(
            f"  {row['workers']} workers          "
            f"{row['refs_per_sec'] / 1e6:7.3f} Mrefs/s {verdict}"
        )
    return "\n".join(lines)


def _best_of(sample, repeat: int) -> float:
    """Adaptive min-of-N over ``sample()`` timings.

    Short runs (the fast engine finishes 400k refs in tens of
    milliseconds) need many more samples than long ones for min() to be
    a stable noise floor — keep sampling cheap rows until ~1s of
    measurement or 15 samples, whichever comes first.  Long rows stay
    at ``repeat``.
    """
    samples = [sample() for _ in range(repeat)]
    while (min(samples) < 0.25 and len(samples) < 15
           and sum(samples) < 1.0):
        samples.append(sample())
    return min(samples)


# ----------------------------------------------------------------------
# Telemetry probe overhead
# ----------------------------------------------------------------------
#: Probes-off slowdown budget: simulate() without probes may cost at
#: most this fraction over the bare pre-telemetry hot loop.
PROBE_OVERHEAD_BUDGET = 0.02

#: Configs measured by bench-probes: one per engine tier.
PROBE_CONFIGS = ("standard", "soft")


def _bare_reference(model, trace: Trace) -> None:
    """Faithful replica of the pre-telemetry reference hot loop
    (including the warm-up position check the real loop carries).

    Kept in the benchmark deliberately: probes-off ``simulate()`` is
    timed against this to catch instrumentation creep into the driver's
    hot path (the telemetry contract is one ``is None`` test per call,
    not per reference).
    """
    warmup_refs = 0
    model.reset()
    addresses, is_write, temporal, spatial, gaps = trace.columns_list()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1
    clock = 0
    total = 0
    for position, (addr, w, t, s, g) in enumerate(
        zip(addresses, is_write, temporal, spatial, gaps)
    ):
        if warmup_refs and position == warmup_refs:
            pass
        clock += g
        cycles = access(addr, w, temporal=t, spatial=s, now=clock)
        total += cycles
        extra = cycles - pipelined
        if extra > 0:
            clock += extra
    stats = model.stats
    stats.trace = trace.name
    stats.engine = "reference"
    stats.cycles = total
    stats.check()


def run_probe_bench(
    refs: int = DEFAULT_REFS,
    repeat: int = 3,
    configs: Sequence[str] = PROBE_CONFIGS,
) -> Dict:
    """Measure telemetry overhead with probes off and fully on.

    Three timings per (config, engine), best of ``repeat``: the *bare*
    pre-telemetry hot path (reference: a local replica of the loop;
    fast: the batch kernels called directly), probes-off ``simulate()``
    (the shipping path), and a fully-probed run (windows + shadow
    classification + tag audit).  ``probes_off_overhead`` is the
    probes-off slowdown over bare — the number the <2% guard watches;
    ``probed_cost`` is the full-battery cost factor, reported for
    information (probed runs are expected to be severalfold slower,
    that is what the probes-off contract is *for*).
    """
    from ..telemetry import TelemetrySpec

    specs = _bench_specs(configs)
    trace = bench_trace(refs)
    telemetry = TelemetrySpec()
    rows: List[Dict] = []
    for name, spec in specs.items():
        engines = ["reference"]
        if fast_refusal(spec.build()) is None:
            engines.append("fast")
        for engine in engines:
            if engine == "fast":
                from ..sim.fast import simulate_fast

                def bare() -> None:
                    simulate_fast(spec.build(), trace)

            else:

                def bare() -> None:
                    _bare_reference(spec.build(), trace)

            def probes_off() -> None:
                simulate(spec.build(), trace, engine=engine)

            def probed() -> None:
                model = spec.build()
                simulate(
                    model, trace, engine=engine,
                    probes=telemetry.build_probes(model),
                )

            # The overhead ratio compares two timings of near-identical
            # cost; on shared hardware whose speed drifts over seconds,
            # independent min-of-N on each side folds that drift into
            # the ratio.  Instead time bare/off back-to-back each round
            # (drift within one round is small, so the per-round ratio
            # cancels it) and take the median ratio over at least five
            # rounds to shed outliers.
            bare_samples = [_timed(bare)]
            off_samples = [_timed(probes_off)]
            while (len(bare_samples) < max(repeat, 5)
                   or (min(min(bare_samples), min(off_samples)) < 0.25
                       and len(bare_samples) < 15
                       and sum(bare_samples) + sum(off_samples) < 2.0)):
                bare_samples.append(_timed(bare))
                off_samples.append(_timed(probes_off))
            bare_s = min(bare_samples)
            off_s = min(off_samples)
            probed_s = _best_of(lambda: _timed(probed), repeat)
            overhead = statistics.median(
                o / b for b, o in zip(bare_samples, off_samples)
            ) - 1.0
            rows.append(
                {
                    "config": name,
                    "engine": engine,
                    "bare_refs_per_sec": round(refs / bare_s),
                    "probes_off_refs_per_sec": round(refs / off_s),
                    "probed_refs_per_sec": round(refs / probed_s),
                    "probes_off_overhead": round(overhead, 4),
                    "probed_cost": round(probed_s / off_s, 2),
                    "within_budget": overhead < PROBE_OVERHEAD_BUDGET,
                }
            )
    return {
        "refs": refs,
        "repeat": repeat,
        "budget": PROBE_OVERHEAD_BUDGET,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def format_probe_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench-probes payload."""
    lines = [
        f"telemetry probe overhead ({payload['refs']} refs, "
        f"best of {payload['repeat']}, "
        f"probes-off budget {100 * payload['budget']:.0f}%)"
    ]
    for row in payload["results"]:
        verdict = "ok" if row["within_budget"] else "OVER BUDGET"
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"probes off {100 * row['probes_off_overhead']:+5.1f}% "
            f"vs bare [{verdict}]; "
            f"probed {row['probed_cost']:.1f}x "
            f"({row['probed_refs_per_sec'] / 1e6:.3f} Mrefs/s)"
        )
    return "\n".join(lines)


def format_stream_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench-stream payload."""
    lines = [
        f"streaming vs in-memory ({payload['refs']} refs, "
        f"chunks of {payload['chunk_refs']}, best of {payload['repeat']})"
    ]
    for row in payload["results"]:
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"streamed {row['streamed_refs_per_sec'] / 1e6:7.3f} Mrefs/s "
            f"({row['throughput_ratio']:.2f}x in-memory), "
            f"peak {row['streamed_peak_bytes'] / 1e6:.1f} MB vs "
            f"{row['in_memory_peak_bytes'] / 1e6:.1f} MB in-memory"
        )
    lines.append(f"  process max RSS: {payload['max_rss_kb']} kB")
    return "\n".join(lines)


def write_bench(
    payload: Dict, out: Optional[str] = "BENCH_sim.json"
) -> None:
    """Write the payload (None = stdout only)."""
    if out:
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def format_corpus_summary(payload: Dict) -> str:
    """Human-readable rendering of a ``repro corpus run`` payload."""
    lines = [
        f"corpus {payload['corpus']!r}: {len(payload['traces'])} traces x "
        f"{len(payload['configs'])} configs"
    ]
    for row in payload["rows"]:
        lines.append(
            f"  {row['trace']:>16} x {row['config']:<10} "
            f"[{row['engine'] or '?':>9}]  "
            f"amat {row['amat']:7.3f}  miss {row['miss_ratio']:.4f}  "
            f"traffic {row['traffic']:6.3f}  ({row['refs']} refs, "
            f"fp {row['fingerprint'][:12]})"
        )
    for config, metrics in payload["geomean"].items():
        rendered = "  ".join(
            f"{name} {value:.4f}" if value is not None else f"{name} n/a"
            for name, value in metrics.items()
        )
        lines.append(f"  geomean {config:<10} {rendered}")
    return "\n".join(lines)


def format_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench payload."""
    lines = [
        f"simulation throughput ({payload['refs']} refs, "
        f"best of {payload['repeat']})"
    ]
    for row in payload["results"]:
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"{row['refs_per_sec'] / 1e6:7.3f} Mrefs/s"
        )
    for name, speedup in payload["fast_speedup"].items():
        lines.append(f"  {name}: fast engine is {speedup}x reference")
    return "\n".join(lines)


def format_soft_bench(payload: Dict) -> str:
    """Human-readable rendering of a bench-soft payload."""
    lines = [
        f"assisted-path throughput ({payload['refs']} refs, "
        f"best of {payload['repeat']}, trace={payload['trace']})"
    ]
    for row in payload["results"]:
        lines.append(
            f"  {row['config']:>16} [{row['engine']:>9}]  "
            f"{row['refs_per_sec'] / 1e6:7.3f} Mrefs/s"
        )
    for name, speedup in payload["fast_speedup"].items():
        miss = payload["miss_ratio"].get(name)
        lines.append(
            f"  {name}: fast engine is {speedup}x reference "
            f"(miss ratio {miss})"
        )
    refused = {
        name: code
        for name, code in payload["refusal_matrix"].items()
        if code is not None
    }
    lines.append(
        f"  refusal matrix: {refused if refused else 'empty (all clear)'}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Serving layer (repro serve) — closed-loop latency/throughput
# ----------------------------------------------------------------------
#: Closed-loop defaults modelling the millions-of-users regime: almost
#: every request is a cache hit; the residue is unique cold cells.
DEFAULT_SERVE_REQUESTS = 2000
DEFAULT_SERVE_CONCURRENCY = 8
DEFAULT_SERVE_HIT_RATIO = 0.95
DEFAULT_SERVE_WARM_CELLS = 32


def run_serve_bench(
    requests: int = DEFAULT_SERVE_REQUESTS,
    concurrency: int = DEFAULT_SERVE_CONCURRENCY,
    hit_ratio: float = DEFAULT_SERVE_HIT_RATIO,
    warm_cells: int = DEFAULT_SERVE_WARM_CELLS,
    scale: str = "tiny",
) -> Dict:
    """Closed-loop bench of the ``repro serve`` HTTP API.

    Starts a real server (background thread, ephemeral port, throwaway
    result-cache directory), warms ``warm_cells`` distinct cells, then
    drives ``concurrency`` persistent-connection clients issuing
    ``requests`` total submissions: a ``hit_ratio`` fraction aimed at
    the warm population (round-robin over a per-client PRNG), the rest
    at never-repeated cold cells.  Records hit-path and overall
    latency percentiles plus hit-serving throughput, and — honesty
    fields, mirroring the pipeline bench's ``insufficient_cpus``
    convention — the CPU count, target/observed hit ratio and client
    concurrency, so CI floors degrade gracefully on small runners.
    """
    import tempfile
    import threading

    from ..serve import ServeClient, ServeConfig, ServerThread, percentile

    if not 0.0 <= hit_ratio <= 1.0:
        from ..errors import ConfigError

        raise ConfigError(f"hit ratio must be in [0, 1]: {hit_ratio}")
    cpus = _available_cpus()
    warm = [
        {
            "trace": {"benchmark": "MV", "scale": scale, "seed": seed},
            "config": "standard",
        }
        for seed in range(warm_cells)
    ]
    cold_counter = iter(range(10_000, 10_000 + requests))
    cold_lock = threading.Lock()

    def next_cold():
        with cold_lock:
            seed = next(cold_counter)
        return {
            "trace": {"benchmark": "MV", "scale": scale, "seed": seed},
            "config": "standard",
        }

    records: List[Dict] = []
    records_lock = threading.Lock()
    failures: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        config = ServeConfig(port=0, cache=tmp, queue_depth=256)
        with ServerThread(config) as server:
            with ServeClient(server.host, server.port) as warmer:
                for cell in warm:
                    warmer.submit(cell)
                warm_metrics = warmer.metrics()

            per_client = [
                requests // concurrency
                + (1 if i < requests % concurrency else 0)
                for i in range(concurrency)
            ]

            def client_loop(index: int, quota: int) -> None:
                import random

                rng = random.Random(0xC0FFEE + index)
                try:
                    with ServeClient(server.host, server.port) as client:
                        for _ in range(quota):
                            if rng.random() < hit_ratio:
                                cell = rng.choice(warm)
                            else:
                                cell = next_cold()
                            begin = time.perf_counter()
                            out = client.submit(cell)
                            elapsed_ms = (
                                time.perf_counter() - begin
                            ) * 1000.0
                            with records_lock:
                                records.append(
                                    {
                                        "ms": elapsed_ms,
                                        "served": out["served"],
                                    }
                                )
                except Exception as error:  # noqa: BLE001 - recorded
                    failures.append(f"client {index}: {error}")

            threads = [
                threading.Thread(
                    target=client_loop, args=(i, quota), daemon=True
                )
                for i, quota in enumerate(per_client)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed_s = time.perf_counter() - begin

            with ServeClient(server.host, server.port) as reporter:
                final_metrics = reporter.metrics()

    hit_tiers = ("hot", "disk")
    hit_ms = [r["ms"] for r in records if r["served"] in hit_tiers]
    all_ms = [r["ms"] for r in records]
    hot_ms = [r["ms"] for r in records if r["served"] == "hot"]
    observed_ratio = len(hit_ms) / len(records) if records else 0.0
    payload = {
        "requests": requests,
        "completed": len(records),
        "concurrency": concurrency,
        "warm_cells": warm_cells,
        "scale": scale,
        "cpus": cpus,
        "hit_ratio_target": hit_ratio,
        "hit_ratio_observed": round(observed_ratio, 4),
        "elapsed_s": round(elapsed_s, 3),
        "total_rps": round(len(records) / elapsed_s, 1) if elapsed_s else 0.0,
        "hit_rps": round(len(hit_ms) / elapsed_s, 1) if elapsed_s else 0.0,
        "p50_ms": round(percentile(all_ms, 50), 3),
        "p99_ms": round(percentile(all_ms, 99), 3),
        "hit_p50_ms": round(percentile(hit_ms, 50), 3),
        "hit_p99_ms": round(percentile(hit_ms, 99), 3),
        "hot_p50_ms": round(percentile(hot_ms, 50), 3),
        "served": {
            tier: sum(1 for r in records if r["served"] == tier)
            for tier in ("hot", "disk", "simulated", "coalesced")
        },
        "simulations": final_metrics["simulations"],
        "warm_simulations": warm_metrics["simulations"],
        "coalesced": final_metrics["coalesced"],
        "rejected": final_metrics["rejected"],
        "server_errors": final_metrics["errors"],
        "client_failures": failures,
        "store": final_metrics["store"],
    }
    if cpus < 2:
        # Server loop and closed-loop clients share one core: latency
        # measures scheduler contention, not the serving path.  Mirror
        # the pipeline bench's honesty convention: record the fact, let
        # the guard degrade to a completed-run check.
        payload["insufficient_cpus"] = True
    return payload


def serve_bench_guard(
    payload: Dict,
    min_hit_rps: Optional[float] = None,
    max_p99_ms: Optional[float] = None,
) -> List[str]:
    """CI guard over a serve-bench payload; returns problem strings.

    Always checks integrity: every request completed, no client or
    server errors, and the duplicate-collapsing invariant (simulations
    never exceed warm cells + cold submissions).  Latency/throughput
    floors apply only when the payload was not stamped
    ``insufficient_cpus`` (1-CPU runner: clients and server share a
    core, so wall-clock floors would gate the scheduler, not the code).
    """
    problems = []
    if payload.get("client_failures"):
        problems.append(
            f"serve bench client failures: {payload['client_failures']}"
        )
    if payload.get("server_errors"):
        problems.append(
            f"serve bench recorded {payload['server_errors']} server errors"
        )
    if payload.get("completed") != payload.get("requests"):
        problems.append(
            f"serve bench completed {payload.get('completed')} of "
            f"{payload.get('requests')} requests"
        )
    cold = payload.get("served", {}).get("simulated", 0)
    coalesced_served = payload.get("served", {}).get("coalesced", 0)
    budget = payload.get("warm_cells", 0) + cold + coalesced_served
    if payload.get("simulations", 0) > budget:
        problems.append(
            f"serve bench simulated {payload['simulations']} cells, more "
            f"than the {budget} distinct submissions — in-flight "
            f"deduplication is broken"
        )
    if payload.get("insufficient_cpus"):
        return problems
    if min_hit_rps is not None and payload.get("hit_rps", 0.0) < min_hit_rps:
        problems.append(
            f"serve hit-serving throughput {payload.get('hit_rps')} rps "
            f"is below the {min_hit_rps} floor"
        )
    if max_p99_ms is not None and payload.get("hit_p99_ms", 0.0) > max_p99_ms:
        problems.append(
            f"serve hit-path p99 {payload.get('hit_p99_ms')} ms exceeds "
            f"the {max_p99_ms} ms ceiling"
        )
    return problems


def format_serve_bench(payload: Dict) -> str:
    """Human-readable rendering of a serve-bench payload."""
    lines = [
        f"serve closed-loop ({payload['requests']} requests, "
        f"{payload['concurrency']} clients, "
        f"{payload['cpus']} cpu(s), "
        f"hit ratio {payload['hit_ratio_observed']:.2%} observed / "
        f"{payload['hit_ratio_target']:.0%} target)"
    ]
    served = payload["served"]
    lines.append(
        f"  served: hot={served['hot']} disk={served['disk']} "
        f"simulated={served['simulated']} coalesced={served['coalesced']}"
    )
    lines.append(
        f"  latency: p50={payload['p50_ms']}ms p99={payload['p99_ms']}ms "
        f"(hit path p50={payload['hit_p50_ms']}ms "
        f"p99={payload['hit_p99_ms']}ms)"
    )
    lines.append(
        f"  throughput: {payload['total_rps']} rps total, "
        f"{payload['hit_rps']} rps hit-serving over "
        f"{payload['elapsed_s']}s"
    )
    lines.append(
        f"  simulations: {payload['simulations']} "
        f"(warm {payload['warm_simulations']}), "
        f"rejected={payload['rejected']}, errors={payload['server_errors']}"
    )
    if payload.get("insufficient_cpus"):
        lines.append(
            "  note: <2 CPUs — latency/throughput floors degraded to a "
            "completed-run check (insufficient_cpus)"
        )
    return "\n".join(lines)
