"""Parallel dispatch and on-disk result caching for sweep grids.

The figure battery is a large (benchmark x configuration) grid whose
cells are completely independent: each one runs a deterministic
simulation of a trace on a cold cache.  This module gives the grid two
speed levers:

* **process-level parallelism** — cells dispatch to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Work units are
  ``(Trace, CacheSpec)`` pairs, both plain picklable data; factories and
  closures never cross the process boundary.
* **a content-addressed result cache** — every finished cell is stored
  on disk keyed by ``sha256(simulator version, trace fingerprint, spec
  fingerprint, engine)``, so re-running an unchanged cell costs one
  small JSON read instead of a simulation.  The engine knob is part of
  the key so results from different engines can never alias, even
  though the fast engine is validated to be counter-identical.

Knobs (all also honoured by ``python -m repro run/simulate --jobs``):

``REPRO_JOBS``
    Default worker count when ``jobs`` is not passed explicitly.
    ``1`` (the default) is a strict serial fallback that produces
    bit-identical results to the pre-parallel runner; ``0`` or ``auto``
    means one worker per CPU.
``REPRO_CACHE``
    Set to ``0``/``off``/``false`` to disable the result cache.
``REPRO_CACHE_DIR``
    Cache location (default ``$XDG_CACHE_HOME/repro/results`` or
    ``~/.cache/repro/results``).  Deleting the directory clears it.

``SIM_VERSION`` must be bumped whenever a change alters simulation
*results* (timing rules, replacement policies, counter semantics...);
it invalidates every cached cell at once.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.spec import CacheSpec
from ..errors import ConfigError
from ..memtrace.trace import Trace
from ..sim.driver import simulate
from ..sim.engine import resolve_engine
from ..sim.result import SimResult

#: Bump on any change that alters simulation results; invalidates the
#: whole result cache.
SIM_VERSION = "1"


# ----------------------------------------------------------------------
# Job-count resolution
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Union[int, str, None] = None) -> int:
    """Resolve a worker count: explicit argument > ``REPRO_JOBS`` > 1.

    ``0`` or ``"auto"`` selects one worker per available CPU; any other
    value must be a positive integer.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS") or 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigError(
                    f"jobs must be a positive integer, 0 or 'auto': {jobs!r}"
                ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0: {jobs}")
    return jobs


def cache_enabled() -> bool:
    """Whether the on-disk result cache is enabled (``REPRO_CACHE``)."""
    flag = os.environ.get("REPRO_CACHE", "1").strip().lower()
    return flag not in ("0", "off", "false", "no")


def default_cache_dir() -> Path:
    """Result-cache location, honouring ``REPRO_CACHE_DIR``/XDG."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def _is_shard_dir(name: str) -> bool:
    """True for the cache's own two-hex-digit fan-out directory names."""
    return len(name) == 2 and all(c in "0123456789abcdef" for c in name)


# ----------------------------------------------------------------------
# Result serialisation (lossless: SimResult counters are ints)
# ----------------------------------------------------------------------
_RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(SimResult))


def result_to_payload(result: SimResult) -> Dict:
    return {name: getattr(result, name) for name in _RESULT_FIELDS}


def payload_to_result(payload: Dict) -> SimResult:
    return SimResult(**{name: payload[name] for name in _RESULT_FIELDS})


class ResultCache:
    """Content-addressed on-disk store of finished sweep cells.

    Keys are ``sha256(SIM_VERSION, trace fingerprint, spec fingerprint,
    engine)``; values are the raw :class:`SimResult` counters as JSON.
    Counters are integers, so the round-trip is lossless and cached
    cells are byte-identical to freshly simulated ones.

    The store is safe under concurrent multi-process use — the ``repro
    serve`` workers, parallel sweeps and ``cache prune`` may all touch
    it at once:

    * writes stage to a ``.tmp-*`` file and publish with an atomic
      rename, so readers never observe a torn entry and racing writers
      of the same key last-write-win with identical bytes;
    * a concurrently deleted entry (another process pruning) reads as a
      miss — the caller re-simulates; never an error;
    * entries shard into two levels of fan-out directories
      (``key[:2]/key[2:4]/``), bounding any directory to ~256 entries
      even at millions of cached cells, so directory scans and renames
      stay O(1)-ish.  Entries written by older versions at the
      single-level ``key[:2]/`` path are still found (and promoted to
      the sharded path on first hit).
    """

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        trace_fingerprint: str, spec_fingerprint: str, engine: str = "auto"
    ) -> str:
        import hashlib

        material = (
            f"{SIM_VERSION}\n{trace_fingerprint}\n{spec_fingerprint}"
            f"\n{engine}"
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / key[2:4] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        # Pre-sharding layout (single fan-out level); read-only compat.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            result = payload_to_result(payload)
        except (OSError, ValueError, KeyError, TypeError):
            # Not at the sharded path: try the legacy single-level one,
            # promoting a hit so the next read takes the fast path.  A
            # concurrently pruned entry lands here too and is a miss —
            # callers re-simulate; deletion mid-read is never an error.
            legacy = self._legacy_path(key)
            try:
                payload = json.loads(legacy.read_text())
                result = payload_to_result(payload)
            except (OSError, ValueError, KeyError, TypeError):
                self.misses += 1
                return None
            self.put(key, result)
            try:  # drop the legacy copy so the key is not counted twice
                legacy.unlink()
            except OSError:
                pass
            self.hits += 1
            return result
        self.hits += 1
        try:
            # Refresh the mtime so prune()'s LRU order tracks *use*,
            # not write time.
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, key: str, result: SimResult) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent writers race benignly.
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(result_to_payload(result), handle)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache must never fail the sweep.
            pass

    def _entries(self):
        """Published cache entries, excluding in-flight ``.tmp-*`` files.

        :meth:`put` stages writes as ``.tmp-*.json`` before the atomic
        rename; enumerating (and worse, evicting) those would race
        concurrent writers — a pruned tmp file makes the writer's
        ``os.replace`` fail and silently drops the entry.  Concurrent
        *published* entries may still vanish between listing and use;
        callers tolerate ENOENT per entry.

        Only the cache's own hex fan-out directories are enumerated:
        the corpus manager registers trace stores under
        ``<root>/corpus/`` (:func:`repro.stream.corpus.corpus_root`),
        and their ``manifest.json`` files match the naive ``*/*/*.json``
        glob — clearing or pruning must never reach into those.
        """
        if not self.root.is_dir():
            return
        # Both layouts: sharded (xx/yy/key.json) and legacy (xx/key.json).
        for pattern in ("*/*/*.json", "*/*.json"):
            for entry in self.root.glob(pattern):
                if entry.name.startswith("."):
                    continue
                shards = entry.relative_to(self.root).parts[:-1]
                if all(_is_shard_dir(part) for part in shards):
                    yield entry

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size_bytes(self) -> int:
        """Total bytes held by cached cells."""
        total = 0
        for entry in self._entries():
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """LRU-evict entries until the cache fits in ``max_bytes``.

        Least-recently-*used* entries go first (:meth:`get` refreshes
        mtimes), so long sweep campaigns keep their hot cells.  Safe
        under concurrent writers: in-flight ``.tmp-*`` stages are never
        touched, and entries that vanish between listing and eviction
        (another pruner, or a writer replacing them) are skipped, not
        errors.  Returns ``(entries_removed, bytes_removed)``.
        """
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0: {max_bytes}")
        entries = []
        total = 0
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                # Unlinked (or replaced) by a concurrent process after
                # the listing — treat as already evicted.
                continue
            entries.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        entries.sort(key=lambda item: item[0])
        removed = removed_bytes = 0
        for _, size, entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            removed_bytes += size
        return removed, removed_bytes

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())


def _open_cache(
    cache: Union[ResultCache, str, os.PathLike, None, bool]
) -> Optional[ResultCache]:
    """Normalise run_sweep's ``cache`` argument.

    ``"auto"`` (the default upstream) uses the default directory unless
    ``REPRO_CACHE`` disables caching; ``None``/``False`` disables; a
    :class:`ResultCache` or a path selects a specific store.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache == "auto":
        return ResultCache() if cache_enabled() else None
    return ResultCache(cache)


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
def simulate_cell(payload: Tuple) -> SimResult:
    """Pool work unit: simulate one (trace, spec) cell on a cold cache.

    Module-level (not a closure) so it pickles under every start method.
    The trace slot also accepts a :class:`~repro.stream.TraceStream` —
    streams pickle as path + manifest, so out-of-core cells ship no
    trace data across the process boundary; each worker pages its own
    chunks in.

    The payload is ``(trace, spec, engine)`` or, for a telemetry-
    recording cell, ``(trace, spec, engine, (TelemetrySpec, artifact
    path))`` — the probed run writes its JSONL artifact and returns the
    (telemetry-identical) simulation result.
    """
    trace, spec, engine = payload[:3]
    telemetry = payload[3] if len(payload) > 3 else None
    if telemetry is not None:
        from ..telemetry import analyze, write_jsonl

        telemetry_spec, artifact_path = telemetry
        report = analyze(spec, trace, telemetry=telemetry_spec, engine=engine)
        write_jsonl(report, artifact_path)
        return report.result
    from ..stream import TraceStream

    if isinstance(trace, TraceStream):
        from ..sim.driver import simulate_stream

        return simulate_stream(spec.build(), trace, engine=engine)
    return simulate(spec.build(), trace, engine=engine)


def run_cells(
    cells: Sequence[Tuple[Trace, CacheSpec]],
    jobs: Union[int, str, None] = None,
    cache: Union[ResultCache, str, os.PathLike, None, bool] = "auto",
    engine: Optional[str] = None,
    telemetry=None,
    telemetry_dir: Union[str, os.PathLike, None] = None,
) -> List[SimResult]:
    """Run independent (trace, spec) cells, in submitted order.

    Cache hits are resolved first; the remaining cells run serially
    (``jobs == 1``) or on a process pool.  The returned list is aligned
    with ``cells`` regardless of completion order.  ``engine`` is the
    simulation-engine knob (resolved once; part of the cache key).

    The trace slot accepts either an in-memory ``Trace`` or a
    :class:`~repro.stream.TraceStream`; both expose the same
    ``fingerprint()``, so a cell keyed while streamed and the same cell
    keyed in memory share one cache entry.

    ``telemetry`` (a :class:`~repro.telemetry.TelemetrySpec`) records a
    JSONL telemetry artifact per cell under ``telemetry_dir`` (default
    :func:`~repro.telemetry.export.default_telemetry_dir`).  Artifacts
    are keyed separately from results — the result-cache key is
    untouched — but a cached result only short-circuits simulation when
    its telemetry artifact also already exists.
    """
    jobs = resolve_jobs(jobs)
    engine = resolve_engine(engine)
    store = _open_cache(cache)
    artifacts: Dict[int, Path] = {}
    if telemetry is not None:
        from ..telemetry.export import (
            default_telemetry_dir,
            telemetry_artifact_path,
        )

        tel_root = (
            Path(telemetry_dir)
            if telemetry_dir is not None
            else default_telemetry_dir()
        )
        for index, (trace, spec) in enumerate(cells):
            artifacts[index] = telemetry_artifact_path(
                tel_root, trace, spec, engine, telemetry
            )
    results: List[Optional[SimResult]] = [None] * len(cells)
    pending: List[int] = []
    keys: Dict[int, str] = {}

    for index, (trace, spec) in enumerate(cells):
        if store is not None:
            key = store.key(trace.fingerprint(), spec.fingerprint(), engine)
            keys[index] = key
            cached = store.get(key)
            if cached is not None and (
                telemetry is None or artifacts[index].exists()
            ):
                results[index] = cached
                continue
        pending.append(index)

    if pending:
        payloads = [
            (cells[i][0], cells[i][1], engine)
            if telemetry is None
            else (
                cells[i][0],
                cells[i][1],
                engine,
                (telemetry, str(artifacts[i])),
            )
            for i in pending
        ]
        if jobs == 1 or len(pending) == 1:
            fresh = [simulate_cell(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                # map() preserves submission order even when cells
                # complete out of order under the pool.
                fresh = list(pool.map(simulate_cell, payloads))
        for index, result in zip(pending, fresh):
            results[index] = result
            if store is not None:
                store.put(keys[index], result)

    return results  # type: ignore[return-value]


def telemetry_paths(
    cells: Sequence[Tuple[Trace, CacheSpec]],
    telemetry,
    telemetry_dir: Union[str, os.PathLike, None] = None,
    engine: Optional[str] = None,
) -> List[Path]:
    """Artifact path per cell, mirroring :func:`run_cells`'s keying."""
    from ..telemetry.export import (
        default_telemetry_dir,
        telemetry_artifact_path,
    )

    engine = resolve_engine(engine)
    root = (
        Path(telemetry_dir)
        if telemetry_dir is not None
        else default_telemetry_dir()
    )
    return [
        telemetry_artifact_path(root, trace, spec, engine, telemetry)
        for trace, spec in cells
    ]
