"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Value = Union[float, int, str]


def format_table(
    columns: Sequence[str],
    rows: Mapping[str, Mapping[str, Value]],
    row_header: str = "",
    precision: int = 3,
) -> str:
    """Render ``rows`` (label -> column -> value) as an aligned table.

    Missing cells render as ``-``; floats use ``precision`` digits.
    """

    def fmt(value: Optional[Value]) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    header = [row_header] + list(columns)
    body: List[List[str]] = []
    for label, cells in rows.items():
        body.append([str(label)] + [fmt(cells.get(c)) for c in columns])

    widths = [
        max(len(row[i]) for row in [header] + body) for i in range(len(header))
    ]

    def line(cells: Sequence[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join([first] + rest)

    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line(header), separator] + [line(r) for r in body])
