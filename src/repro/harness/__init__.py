"""Experiment harness: parallel cached grid runner and table rendering."""

from .parallel import (
    SIM_VERSION,
    ResultCache,
    cache_enabled,
    default_cache_dir,
    resolve_jobs,
    run_cells,
)
from .runner import CacheFactory, ConfigLike, Sweep, run_sweep
from .tables import format_table

__all__ = [
    "CacheFactory",
    "ConfigLike",
    "Sweep",
    "run_sweep",
    "format_table",
    "ResultCache",
    "SIM_VERSION",
    "cache_enabled",
    "default_cache_dir",
    "resolve_jobs",
    "run_cells",
]
