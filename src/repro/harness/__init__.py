"""Experiment harness: grid runner and table rendering."""

from .runner import CacheFactory, Sweep, run_sweep
from .tables import format_table

__all__ = ["CacheFactory", "Sweep", "run_sweep", "format_table"]
