"""Sweep runner: simulate grids of (cache configuration x trace).

Cache models are stateful, so sweep cells are described by
:class:`~repro.core.spec.CacheSpec` objects — declarative, picklable
descriptions from which every cell constructs a fresh model (cold cache,
as in the paper).  Spec cells dispatch through
:mod:`repro.harness.parallel`: they run on a process pool when
``jobs > 1`` and hit the on-disk result cache when unchanged.

Zero-argument factories (the pre-spec API) are still accepted; they run
serially in-process and bypass the cache, since a closure has neither a
stable fingerprint nor a guaranteed pickle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..core.spec import CacheSpec
from ..memtrace.trace import Trace
from ..sim.base import CacheModel
from ..sim.driver import simulate
from ..sim.result import SimResult
from .parallel import ResultCache, run_cells, telemetry_paths
from .tables import format_table

CacheFactory = Callable[[], CacheModel]

#: A sweep column: either a declarative spec or a legacy factory.
ConfigLike = Union[CacheSpec, CacheFactory]


@dataclass
class Sweep:
    """Results of a (trace x configuration) grid, column-major by config."""

    #: trace name -> config name -> result
    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    config_order: List[str] = field(default_factory=list)
    #: trace name -> config name -> telemetry-artifact path (only filled
    #: when the sweep ran with a TelemetrySpec; see run_sweep).
    telemetry: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def add(self, trace_name: str, config_name: str, result: SimResult) -> None:
        self.results.setdefault(trace_name, {})[config_name] = result
        if config_name not in self.config_order:
            self.config_order.append(config_name)

    def metric(self, name: str) -> Dict[str, Dict[str, float]]:
        """Extract one metric (attribute of SimResult) across the grid.

        Rows follow ``config_order`` (the submitted column order), not
        the insertion order of individual cells, so tables stay
        deterministic however the grid was filled.
        """
        out: Dict[str, Dict[str, float]] = {}
        for trace, row in self.results.items():
            ordered = {
                cfg: getattr(row[cfg], name)
                for cfg in self.config_order
                if cfg in row
            }
            for cfg, result in row.items():  # configs added out-of-band
                if cfg not in ordered:
                    ordered[cfg] = getattr(result, name)
            out[trace] = ordered
        return out

    def table(self, metric: str = "amat", precision: int = 3) -> str:
        return format_table(
            self.config_order,
            self.metric(metric),
            row_header="benchmark",
            precision=precision,
        )


def run_sweep(
    traces: Mapping[str, Trace],
    configs: Mapping[str, ConfigLike],
    jobs: Union[int, str, None] = None,
    cache: Union[ResultCache, str, os.PathLike, None, bool] = "auto",
    engine: Optional[str] = None,
    telemetry=None,
    telemetry_dir: Union[str, os.PathLike, None] = None,
) -> Sweep:
    """Simulate every trace against every configuration (fresh caches).

    ``jobs`` selects the worker count (default: ``REPRO_JOBS`` env var,
    else 1 — the serial path, bit-identical to parallel runs).  ``cache``
    selects the on-disk result cache (``"auto"`` = the default store
    unless ``REPRO_CACHE`` disables it; ``None`` = off; a path or
    :class:`ResultCache` = a specific store).  ``engine`` selects the
    simulation engine (default: ``REPRO_ENGINE`` env var, else
    ``auto``); it is part of the result-cache key.

    Trace values may be in-memory ``Trace`` objects or
    :class:`~repro.stream.TraceStream` instances; streams simulate
    out-of-core in O(chunk) memory and share result-cache entries with
    their materialised equivalents (same content fingerprint).

    ``telemetry`` (a :class:`~repro.telemetry.TelemetrySpec`) makes every
    spec cell record a JSONL telemetry artifact under ``telemetry_dir``;
    paths land in ``Sweep.telemetry`` keyed like ``Sweep.results``.
    Telemetry never changes a result or its cache key — artifacts are
    keyed separately (legacy factory cells have no fingerprint and are
    skipped).
    """
    # Submitted order: row-major over the input mappings.  The Sweep is
    # assembled from this list after all cells complete, so parallel
    # completion order can never reorder rows or columns.
    grid: List[Tuple[str, str, ConfigLike]] = [
        (trace_name, config_name, config)
        for trace_name in traces
        for config_name, config in configs.items()
    ]

    spec_cells = [
        (index, (traces[t], cfg))
        for index, (t, c, cfg) in enumerate(grid)
        if isinstance(cfg, CacheSpec)
    ]
    cell_results: Dict[int, SimResult] = {}
    cell_artifacts: Dict[int, str] = {}
    if spec_cells:
        outcomes = run_cells(
            [cell for _, cell in spec_cells],
            jobs=jobs,
            cache=cache,
            engine=engine,
            telemetry=telemetry,
            telemetry_dir=telemetry_dir,
        )
        for (index, _), result in zip(spec_cells, outcomes):
            cell_results[index] = result
        if telemetry is not None:
            paths = telemetry_paths(
                [cell for _, cell in spec_cells],
                telemetry,
                telemetry_dir=telemetry_dir,
                engine=engine,
            )
            for (index, _), path in zip(spec_cells, paths):
                cell_artifacts[index] = str(path)

    sweep = Sweep()
    for index, (trace_name, config_name, config) in enumerate(grid):
        result = cell_results.get(index)
        if result is None:  # legacy factory: serial, uncached
            trace = traces[trace_name]
            from ..stream import TraceStream

            if isinstance(trace, TraceStream):
                from ..sim.driver import simulate_stream

                result = simulate_stream(config(), trace, engine=engine)
            else:
                result = simulate(config(), trace, engine=engine)
        sweep.add(trace_name, config_name, result)
        if index in cell_artifacts:
            sweep.telemetry.setdefault(trace_name, {})[
                config_name
            ] = cell_artifacts[index]
    return sweep
