"""Sweep runner: simulate grids of (cache factory x trace).

Cache models are stateful, so sweeps take *factories* (zero-argument
callables returning a fresh model) rather than model instances — every
cell of the grid runs on a cold cache, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from ..memtrace.trace import Trace
from ..sim.base import CacheModel
from ..sim.driver import simulate
from ..sim.result import SimResult
from .tables import format_table

CacheFactory = Callable[[], CacheModel]


@dataclass
class Sweep:
    """Results of a (trace x configuration) grid, column-major by config."""

    #: trace name -> config name -> result
    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    config_order: List[str] = field(default_factory=list)

    def add(self, trace_name: str, config_name: str, result: SimResult) -> None:
        self.results.setdefault(trace_name, {})[config_name] = result
        if config_name not in self.config_order:
            self.config_order.append(config_name)

    def metric(self, name: str) -> Dict[str, Dict[str, float]]:
        """Extract one metric (attribute of SimResult) across the grid."""
        return {
            trace: {cfg: getattr(r, name) for cfg, r in row.items()}
            for trace, row in self.results.items()
        }

    def table(self, metric: str = "amat", precision: int = 3) -> str:
        return format_table(
            self.config_order,
            self.metric(metric),
            row_header="benchmark",
            precision=precision,
        )


def run_sweep(
    traces: Mapping[str, Trace],
    configs: Mapping[str, CacheFactory],
) -> Sweep:
    """Simulate every trace against every configuration (fresh caches)."""
    sweep = Sweep()
    for trace_name, trace in traces.items():
        for config_name, factory in configs.items():
            result = simulate(factory(), trace)
            sweep.add(trace_name, config_name, result)
    return sweep
