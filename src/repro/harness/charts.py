"""ASCII bar charts for experiment results.

The paper's figures are grouped bar charts; this renders the same shape
in a terminal so ``python -m repro run fig6a --chart`` looks like the
original, without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

Value = Union[float, int]

#: Bar glyphs: full blocks plus the trailing fractional eighth.
_FULL = "█"
_EIGHTHS = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def _bar(value: float, scale: float, width: int) -> str:
    """A horizontal bar of ``value`` scaled so ``scale`` fills ``width``."""
    if scale <= 0 or value <= 0:
        return ""
    units = value / scale * width
    full = int(units)
    fraction = int((units - full) * 8)
    return _FULL * full + _EIGHTHS[fraction]


def bar_chart(
    series: Sequence[str],
    rows: Mapping[str, Mapping[str, Value]],
    width: int = 48,
    precision: int = 3,
) -> str:
    """Grouped horizontal bar chart (one group per row, one bar per
    series), scaled to the maximum value in the grid."""
    values = [
        float(v)
        for cells in rows.values()
        for v in cells.values()
        if isinstance(v, (int, float))
    ]
    scale = max(values) if values else 1.0
    label_width = max((len(s) for s in series), default=0)

    lines = []
    for row, cells in rows.items():
        lines.append(f"{row}")
        for name in series:
            if name not in cells:
                continue
            value = float(cells[name])
            bar = _bar(value, scale, width)
            lines.append(
                f"  {name.ljust(label_width)} {bar} {value:.{precision}f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
