"""Trace-driven simulation driver.

Walks a trace through a cache model, maintaining the clock.  The clock
advances by the recorded inter-reference gap (issue rate, figure 4b) plus
the stall of the previous access beyond its pipelined hit slot — so
write-buffer drain and prefetch arrival see realistic wall-clock times.
"""

from __future__ import annotations

from typing import Iterable, List

from ..memtrace.trace import Trace
from .base import CacheModel
from .result import SimResult


def simulate(
    model: CacheModel,
    trace: Trace,
    reset: bool = True,
    warmup_refs: int = 0,
) -> SimResult:
    """Run ``trace`` through ``model`` and return the finalised result.

    ``reset=False`` continues from the model's current state (used to
    simulate phase sequences on a warm cache).  ``warmup_refs`` runs the
    first N references to warm the cache state and then discards their
    counters, so the result reflects steady-state behaviour only (the
    paper measures whole cold-start traces; warm-up is offered for
    methodological comparisons).
    """
    if reset:
        model.reset()
    if warmup_refs < 0:
        raise ValueError(f"warmup_refs must be >= 0: {warmup_refs}")
    addresses, is_write, temporal, spatial, gaps = trace.columns()
    access = model.access
    hit_time = getattr(model, "timing", None)
    pipelined = hit_time.hit_time if hit_time is not None else 1

    clock = 0
    total = 0
    warm_snapshot = None
    for position, (addr, w, t, s, g) in enumerate(
        zip(addresses, is_write, temporal, spatial, gaps)
    ):
        if warmup_refs and position == warmup_refs:
            warm_snapshot = (total, _snapshot(model.stats))
        clock += g
        cycles = access(addr, w, temporal=t, spatial=s, now=clock)
        total += cycles
        # The gap distribution was measured assuming every instruction
        # executes in one cycle; anything beyond the pipelined hit is a
        # stall that pushes wall-clock time.
        extra = cycles - pipelined
        if extra > 0:
            clock += extra
    if warmup_refs and warm_snapshot is None and len(trace):
        # The whole trace was shorter than the warm-up window.
        warm_snapshot = (total, _snapshot(model.stats))

    stats = model.stats
    stats.trace = trace.name
    stats.cycles = total
    if warm_snapshot is not None:
        warm_cycles, counters = warm_snapshot
        stats.cycles -= warm_cycles
        for field, value in counters.items():
            setattr(stats, field, getattr(stats, field) - value)
    stats.check()
    return stats


#: Counter fields discarded by the warm-up window.
_COUNTER_FIELDS = (
    "refs", "hits_main", "hits_assist", "misses", "lines_fetched",
    "words_fetched", "writebacks", "bounce_backs", "bounce_aborts",
    "swaps", "invalidations", "prefetches_issued", "prefetch_hits",
    "write_buffer_stalls",
)


def _snapshot(stats: SimResult) -> dict:
    return {field: getattr(stats, field) for field in _COUNTER_FIELDS}


def simulate_many(
    models: Iterable[CacheModel], trace: Trace
) -> List[SimResult]:
    """Run the same trace through several models (fresh state each)."""
    return [simulate(model, trace) for model in models]
