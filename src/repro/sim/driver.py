"""Trace-driven simulation driver.

Walks a trace through a cache model, maintaining the clock.  The clock
advances by the recorded inter-reference gap (issue rate, figure 4b) plus
the stall of the previous access beyond its pipelined hit slot — so
write-buffer drain and prefetch arrival see realistic wall-clock times.

The ``engine`` knob selects between the two simulation tiers (see
:mod:`repro.sim.engine`): the per-reference ``reference`` loop below,
and the exact batch kernels of :mod:`repro.sim.fast`.  The default
(``auto``) uses the fast engine whenever the model proves equivalence.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..memtrace.trace import Trace
from .base import CacheModel
from .engine import select_engine
from .result import SimResult


def simulate(
    model: CacheModel,
    trace: Trace,
    reset: bool = True,
    warmup_refs: int = 0,
    engine: Optional[str] = None,
) -> SimResult:
    """Run ``trace`` through ``model`` and return the finalised result.

    ``reset=False`` continues from the model's current state (used to
    simulate phase sequences on a warm cache).  ``warmup_refs`` runs the
    first N references to warm the cache state and then discards their
    counters, so the result reflects steady-state behaviour only (the
    paper measures whole cold-start traces; warm-up is offered for
    methodological comparisons).  ``engine`` is ``auto`` / ``reference``
    / ``fast`` (default: ``$REPRO_ENGINE`` or ``auto``); the selection
    actually used is recorded in ``SimResult.engine``.
    """
    if warmup_refs < 0:
        raise ValueError(f"warmup_refs must be >= 0: {warmup_refs}")
    chosen, _ = select_engine(
        engine, model, reset=reset, warmup_refs=warmup_refs
    )
    if chosen == "fast":
        from .fast import simulate_fast

        return simulate_fast(model, trace)

    if reset:
        model.reset()
    addresses, is_write, temporal, spatial, gaps = trace.columns_list()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1

    clock = 0
    total = 0
    warm_snapshot = None
    for position, (addr, w, t, s, g) in enumerate(
        zip(addresses, is_write, temporal, spatial, gaps)
    ):
        if warmup_refs and position == warmup_refs:
            warm_snapshot = (total, _snapshot(model.stats))
        clock += g
        cycles = access(addr, w, temporal=t, spatial=s, now=clock)
        total += cycles
        # The gap distribution was measured assuming every instruction
        # executes in one cycle; anything beyond the pipelined hit is a
        # stall that pushes wall-clock time.
        extra = cycles - pipelined
        if extra > 0:
            clock += extra
    if warmup_refs and warm_snapshot is None and len(trace):
        # The whole trace was shorter than the warm-up window.
        warm_snapshot = (total, _snapshot(model.stats))

    stats = model.stats
    stats.trace = trace.name
    stats.engine = "reference"
    stats.cycles = total
    if warm_snapshot is not None:
        warm_cycles, counters = warm_snapshot
        stats.cycles -= warm_cycles
        for field, value in counters.items():
            setattr(stats, field, getattr(stats, field) - value)
    stats.check()
    return stats


def simulate_stream(
    model: CacheModel,
    stream,
    reset: bool = True,
    warmup_refs: int = 0,
    engine: Optional[str] = None,
) -> SimResult:
    """Run a :class:`~repro.stream.TraceStream` through ``model``.

    The out-of-core counterpart of :func:`simulate`: the trace is
    consumed one chunk at a time, so peak memory is O(chunk), not
    O(trace).  Counters are bit-identical to materialising the stream
    and calling :func:`simulate` — the reference loop below carries the
    clock across chunk windows, and the fast path
    (:func:`repro.sim.fast.simulate_fast_stream`) carries cache, write
    buffer and timing state explicitly.  Engine selection, warm-up and
    ``reset`` semantics match :func:`simulate`.
    """
    if warmup_refs < 0:
        raise ValueError(f"warmup_refs must be >= 0: {warmup_refs}")
    chosen, _ = select_engine(
        engine, model, reset=reset, warmup_refs=warmup_refs
    )
    if chosen == "fast":
        from .fast import simulate_fast_stream

        return simulate_fast_stream(model, stream)

    if reset:
        model.reset()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1

    clock = 0
    total = 0
    position = 0
    warm_snapshot = None
    for chunk in stream.chunks():
        addresses, is_write, temporal, spatial, gaps = chunk.columns_list()
        for addr, w, t, s, g in zip(
            addresses, is_write, temporal, spatial, gaps
        ):
            if warmup_refs and position == warmup_refs:
                warm_snapshot = (total, _snapshot(model.stats))
            position += 1
            clock += g
            cycles = access(addr, w, temporal=t, spatial=s, now=clock)
            total += cycles
            extra = cycles - pipelined
            if extra > 0:
                clock += extra
    if warmup_refs and warm_snapshot is None and position:
        warm_snapshot = (total, _snapshot(model.stats))

    stats = model.stats
    stats.trace = stream.name
    stats.engine = "reference"
    stats.cycles = total
    if warm_snapshot is not None:
        warm_cycles, counters = warm_snapshot
        stats.cycles -= warm_cycles
        for field, value in counters.items():
            setattr(stats, field, getattr(stats, field) - value)
    stats.check()
    return stats


#: Counter fields discarded by the warm-up window.
_COUNTER_FIELDS = (
    "refs", "hits_main", "hits_assist", "misses", "lines_fetched",
    "words_fetched", "writebacks", "bounce_backs", "bounce_aborts",
    "swaps", "invalidations", "prefetches_issued", "prefetch_hits",
    "write_buffer_stalls",
)


def _snapshot(stats: SimResult) -> dict:
    return {field: getattr(stats, field) for field in _COUNTER_FIELDS}


def simulate_many(
    models: Iterable[CacheModel],
    trace: Trace,
    engine: Optional[str] = None,
) -> List[SimResult]:
    """Run the same trace through several models (fresh state each).

    The trace's column lists are materialised once and shared across
    all models (:meth:`~repro.memtrace.trace.Trace.columns_list`).
    """
    trace.columns_list()
    return [simulate(model, trace, engine=engine) for model in models]
