"""Trace-driven simulation driver.

Walks a trace through a cache model, maintaining the clock.  The clock
advances by the recorded inter-reference gap (issue rate, figure 4b) plus
the stall of the previous access beyond its pipelined hit slot — so
write-buffer drain and prefetch arrival see realistic wall-clock times.

The ``engine`` knob selects between the three simulation tiers (see
:mod:`repro.sim.engine`): the per-reference ``reference`` loop below,
the exact batch kernels of :mod:`repro.sim.fast`, and the compiled C
kernels of :mod:`repro.sim.native`.  The default (``auto``) walks the
ladder top-down, using the highest tier that proves equivalence (for
native, also that a toolchain or prebuilt library exists).

The ``probes`` knob attaches a telemetry
:class:`~repro.telemetry.probes.ProbeSet`.  Probes-off runs keep the
hot loops below byte-identical to the un-probed code (the only cost is
one ``is None`` test per call); probed runs route through
:func:`_simulate_reference_probed`, a single instrumented loop shared
by the in-memory and streamed entry points (and by
:func:`repro.metrics.attribution.attribute`), or through the fast
engine's exact per-reference reconstruction.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

from ..errors import ConfigError
from ..memtrace.trace import Trace
from .base import CacheModel
from .engine import select_engine
from .result import SimResult


def _check_probed_run(probes, reset: bool, warmup_refs: int) -> None:
    """Probed runs must cover the whole trace from a cold cache —
    telemetry of a partial or warm-start run would not match its
    counters (and the fast engine refuses those runs anyway)."""
    if probes is not None and (not reset or warmup_refs):
        raise ConfigError(
            "telemetry probes require reset=True and warmup_refs=0"
        )


def simulate(
    model: CacheModel,
    trace: Trace,
    reset: bool = True,
    warmup_refs: int = 0,
    engine: Optional[str] = None,
    probes=None,
) -> SimResult:
    """Run ``trace`` through ``model`` and return the finalised result.

    ``reset=False`` continues from the model's current state (used to
    simulate phase sequences on a warm cache).  ``warmup_refs`` runs the
    first N references to warm the cache state and then discards their
    counters, so the result reflects steady-state behaviour only (the
    paper measures whole cold-start traces; warm-up is offered for
    methodological comparisons).  ``engine`` is ``auto`` / ``reference``
    / ``fast`` / ``native`` (default: ``$REPRO_ENGINE`` or ``auto``);
    the selection actually used is recorded in ``SimResult.engine``.
    ``probes`` is an optional telemetry
    :class:`~repro.telemetry.probes.ProbeSet`; the counters of a probed
    run are identical to an un-probed one.
    """
    if warmup_refs < 0:
        raise ValueError(f"warmup_refs must be >= 0: {warmup_refs}")
    _check_probed_run(probes, reset, warmup_refs)
    chosen, refusal = select_engine(
        engine, model, reset=reset, warmup_refs=warmup_refs
    )
    if chosen == "native":
        from .native import simulate_native

        return simulate_native(model, trace, probes=probes)
    if chosen == "fast":
        from .fast import simulate_fast

        if probes is not None:
            result = simulate_fast(model, trace, probes=probes)
        else:
            result = simulate_fast(model, trace)
        result.engine_refusal = refusal
        return result
    if probes is not None:
        # One instrumented reference loop serves both entry points: the
        # trace is windowed into a stream (zero-copy chunk views, same
        # name/fingerprint), so probed in-memory and streamed runs are
        # literally the same code path.
        from ..stream import TraceStream

        stats = _simulate_reference_probed(
            model, TraceStream.from_trace(trace), probes
        )
        stats.engine_refusal = refusal
        return stats

    if reset:
        model.reset()
    addresses, is_write, temporal, spatial, gaps = trace.columns_list()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1

    clock = 0
    total = 0
    warm_snapshot = None
    for position, (addr, w, t, s, g) in enumerate(
        zip(addresses, is_write, temporal, spatial, gaps)
    ):
        if warmup_refs and position == warmup_refs:
            warm_snapshot = (total, _snapshot(model.stats))
        clock += g
        cycles = access(addr, w, temporal=t, spatial=s, now=clock)
        total += cycles
        # The gap distribution was measured assuming every instruction
        # executes in one cycle; anything beyond the pipelined hit is a
        # stall that pushes wall-clock time.
        extra = cycles - pipelined
        if extra > 0:
            clock += extra
    if warmup_refs and warm_snapshot is None and len(trace):
        # The whole trace was shorter than the warm-up window.
        warm_snapshot = (total, _snapshot(model.stats))

    stats = model.stats
    stats.trace = trace.name
    stats.engine = "reference"
    stats.engine_refusal = refusal
    stats.cycles = total
    if warm_snapshot is not None:
        warm_cycles, counters = warm_snapshot
        stats.cycles -= warm_cycles
        for field, value in counters.items():
            setattr(stats, field, getattr(stats, field) - value)
    stats.check()
    return stats


def simulate_stream(
    model: CacheModel,
    stream,
    reset: bool = True,
    warmup_refs: int = 0,
    engine: Optional[str] = None,
    probes=None,
    workers: Optional[int] = None,
) -> SimResult:
    """Run a :class:`~repro.stream.TraceStream` through ``model``.

    The out-of-core counterpart of :func:`simulate`: the trace is
    consumed one chunk at a time, so peak memory is O(chunk), not
    O(trace).  Counters are bit-identical to materialising the stream
    and calling :func:`simulate` — the reference loop below carries the
    clock across chunk windows, and the fast path
    (:func:`repro.sim.fast.simulate_fast_stream`) carries cache, write
    buffer and timing state explicitly.  Engine selection, warm-up,
    ``reset`` and ``probes`` semantics match :func:`simulate`; probed
    streams stay O(chunk) (probes hold aggregate state only).

    ``workers`` > 1 runs the multi-process pipelined engine
    (:mod:`repro.stream.pipeline`): chunk decode and the carry-free
    kernel scan overlap across a worker pool while the sequential
    state carry stays here — still bit-identical.  An explicit count
    is strict (:class:`~repro.errors.ConfigError` when the config
    cannot be pipelined or ``engine="reference"`` / ``engine="native"``
    forces the serial path); the ambient ``$REPRO_PIPELINE_WORKERS``
    falls back to the serial path silently, mirroring ``engine="auto"``
    — and when the serial native tier applies, ``auto`` prefers it over
    the pipeline (one compiled loop beats fan-out overhead).
    """
    if warmup_refs < 0:
        raise ValueError(f"warmup_refs must be >= 0: {warmup_refs}")
    _check_probed_run(probes, reset, warmup_refs)
    if workers is not None or os.environ.get("REPRO_PIPELINE_WORKERS"):
        from ..stream.pipeline import (
            pipeline_refusal, resolve_workers, simulate_pipeline,
        )
        from .engine import native_refusal, resolve_engine

        n_workers = resolve_workers(workers)
        if n_workers > 1:
            reason = pipeline_refusal(
                model, reset=reset, warmup_refs=warmup_refs
            )
            resolved = resolve_engine(engine)
            forced_serial = resolved in ("reference", "native")
            # With an *ambient* worker count, auto defers to the engine
            # ladder: the serial native tier beats the pipelined fast
            # engine, so prefer it when it applies.  An explicit
            # ``workers=`` request keeps the pipeline.
            ambient_native = (
                workers is None
                and resolved == "auto"
                and native_refusal(
                    model, reset=reset, warmup_refs=warmup_refs
                ) is None
            )
            if reason is None and not forced_serial and not ambient_native:
                return simulate_pipeline(
                    model, stream, n_workers, probes=probes
                )
            if workers is not None:
                detail = (
                    f"engine={resolved!r} forces the serial path"
                    if reason is None else str(reason)
                )
                raise ConfigError(
                    f"workers={workers!r} needs the pipelined fast "
                    f"engine, which cannot run {model.name!r}: {detail}"
                )
            # Ambient worker count: fall back to the serial path.
    chosen, refusal = select_engine(
        engine, model, reset=reset, warmup_refs=warmup_refs
    )
    if chosen == "native":
        from .native import simulate_native_stream

        return simulate_native_stream(model, stream, probes=probes)
    if chosen == "fast":
        from .fast import simulate_fast_stream

        if probes is not None:
            result = simulate_fast_stream(model, stream, probes=probes)
        else:
            result = simulate_fast_stream(model, stream)
        result.engine_refusal = refusal
        return result
    if probes is not None:
        stats = _simulate_reference_probed(model, stream, probes)
        stats.engine_refusal = refusal
        return stats

    if reset:
        model.reset()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1

    clock = 0
    total = 0
    position = 0
    warm_snapshot = None
    for chunk in stream.chunks():
        addresses, is_write, temporal, spatial, gaps = chunk.columns_list()
        for addr, w, t, s, g in zip(
            addresses, is_write, temporal, spatial, gaps
        ):
            if warmup_refs and position == warmup_refs:
                warm_snapshot = (total, _snapshot(model.stats))
            position += 1
            clock += g
            cycles = access(addr, w, temporal=t, spatial=s, now=clock)
            total += cycles
            extra = cycles - pipelined
            if extra > 0:
                clock += extra
    if warmup_refs and warm_snapshot is None and position:
        warm_snapshot = (total, _snapshot(model.stats))

    stats = model.stats
    stats.trace = stream.name
    stats.engine = "reference"
    stats.engine_refusal = refusal
    stats.cycles = total
    if warm_snapshot is not None:
        warm_cycles, counters = warm_snapshot
        stats.cycles -= warm_cycles
        for field, value in counters.items():
            setattr(stats, field, getattr(stats, field) - value)
    stats.check()
    return stats


def _simulate_reference_probed(
    model: CacheModel, stream, probes
) -> SimResult:
    """The reference loop with telemetry batch emission.

    Same clock discipline as the plain loops above; additionally every
    access's outcome is read off the model's counter deltas (a single
    access increments ``misses``/``hits_assist`` by at most one and
    ``words_fetched``/``write_buffer_stalls`` by its own contribution),
    buffered per chunk, and flushed to the probes as one
    :class:`~repro.telemetry.events.TelemetryBatch`.  The model was
    validated cold-start/no-warm-up by the caller, so the counters are
    exactly those of an un-probed run.
    """
    import numpy as np

    from ..telemetry.events import TelemetryBatch

    model.reset()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1
    stats = model.stats

    clock = 0
    total = 0
    position = 0
    prev_miss = stats.misses
    prev_assist = stats.hits_assist
    prev_words = stats.words_fetched
    prev_stall = stats.write_buffer_stalls
    for chunk in stream.chunks():
        addresses, is_write, temporal, spatial, gaps = chunk.columns_list()
        n = len(addresses)
        miss_col = np.zeros(n, dtype=bool)
        assist_col = np.zeros(n, dtype=bool)
        cycles_col = np.zeros(n, dtype=np.int64)
        words_col = np.zeros(n, dtype=np.int64)
        stall_col = np.zeros(n, dtype=np.int64)
        for i in range(n):
            clock += gaps[i]
            cycles = access(
                addresses[i], is_write[i],
                temporal=temporal[i], spatial=spatial[i], now=clock,
            )
            total += cycles
            extra = cycles - pipelined
            if extra > 0:
                clock += extra
            cycles_col[i] = cycles
            value = stats.misses
            if value != prev_miss:
                miss_col[i] = True
                prev_miss = value
            value = stats.hits_assist
            if value != prev_assist:
                assist_col[i] = True
                prev_assist = value
            value = stats.words_fetched
            if value != prev_words:
                words_col[i] = value - prev_words
                prev_words = value
            value = stats.write_buffer_stalls
            if value != prev_stall:
                stall_col[i] = value - prev_stall
                prev_stall = value
        probes.on_batch(
            TelemetryBatch(
                start=position,
                addresses=chunk.addresses,
                is_write=chunk.is_write,
                temporal=chunk.temporal,
                spatial=chunk.spatial,
                gaps=chunk.gaps,
                miss=miss_col,
                assist_hit=assist_col,
                cycles=cycles_col,
                words=words_col,
                wb_stall=stall_col,
                ref_ids=chunk.ref_ids,
            )
        )
        position += n

    stats.trace = stream.name
    stats.engine = "reference"
    stats.cycles = total
    stats.check()
    probes.finish(stats)
    return stats


#: Counter fields discarded by the warm-up window.
_COUNTER_FIELDS = (
    "refs", "hits_main", "hits_assist", "misses", "lines_fetched",
    "words_fetched", "writebacks", "bounce_backs", "bounce_aborts",
    "swaps", "invalidations", "prefetches_issued", "prefetch_hits",
    "write_buffer_stalls",
)


def _snapshot(stats: SimResult) -> dict:
    return {field: getattr(stats, field) for field in _COUNTER_FIELDS}


def simulate_many(
    models: Iterable[CacheModel],
    trace: Trace,
    engine: Optional[str] = None,
) -> List[SimResult]:
    """Run the same trace through several models (fresh state each).

    The trace's column lists are materialised once and shared across
    all models (:meth:`~repro.memtrace.trace.Trace.columns_list`).
    """
    trace.columns_list()
    return [simulate(model, trace, engine=engine) for model in models]
