"""Two-level hierarchy wrapper — a retrospective extension.

The paper targets 1993-era on-chip caches backed directly by DRAM
(20-cycle latency).  A natural retrospective question is how much of
the software-assisted gains survive once a unified L2 sits in between:
figure 10b already shows the mechanisms fading below ~10-cycle
latencies, and an L2 hit *is* a short-latency miss.

:class:`TwoLevelCache` wraps any L1 model that exposes ``last_fetch``
(the line addresses it just requested from the next level —
``StandardCache`` and ``SoftwareAssistedCache`` both do):

* configure the **L1 with the L2-hit latency** (its "memory" is the L2);
* the wrapper replays each fetched line against a functional LRU L2;
  any L2 miss adds the L1->memory latency difference once per access
  (requests to memory are pipelined) and counts memory traffic.

Modelling notes (documented simplifications): the L2 is mostly
inclusive — L1 write-backs are assumed to hit it, so dirty traffic
between the levels is not separately timed; the extra L2-miss stall is
added to the access's cycle count and the wall clock (via the driver),
but not to the L1's internal lock window, which slightly favours
back-to-back L2 misses.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming


class TwoLevelCache:
    """An L1 cache model backed by a functional LRU second level."""

    def __init__(
        self,
        l1,
        l2_geometry: CacheGeometry,
        memory_extra_latency: int,
        name: str = "",
    ) -> None:
        if not hasattr(l1, "last_fetch"):
            raise ConfigError(
                f"L1 model {type(l1).__name__} does not expose last_fetch"
            )
        if memory_extra_latency < 0:
            raise ConfigError("memory_extra_latency must be >= 0")
        if l2_geometry.line_size < l1.geometry.line_size:
            raise ConfigError("the L2 line cannot be smaller than the L1 line")
        self.l1 = l1
        self.l2_geometry = l2_geometry
        self.memory_extra_latency = memory_extra_latency
        self.name = name or f"{l1.name} + L2 {l2_geometry}"
        self.timing = l1.timing  # driver pipelining constant
        # Functional L2: per-set MRU-first lists of line addresses.
        self._l2_sets: List[List[int]] = [
            [] for _ in range(l2_geometry.n_sets)
        ]
        self.l2_stats = SimResult(cache=f"L2 {l2_geometry}")
        # L1 lines per L2 line (both powers of two).
        self._ratio_shift = (
            l2_geometry.line_shift - l1.geometry.line_shift
        )
        self._l2_words = l2_geometry.line_size // 8

    @property
    def stats(self) -> SimResult:
        """The L1's record (the driver reads and finalises this)."""
        return self.l1.stats

    def fast_engine_refusal(self):
        """The hierarchy always runs on the reference engine.

        L2 hits depend on the exact interleaving of L1 fetches, which
        the batch kernels do not replay — so equivalence cannot be
        proved and ``auto`` must fall back (streaming still works:
        :func:`~repro.sim.driver.simulate_stream` carries the clock
        through the reference loop chunk by chunk).
        """
        from .engine import EngineRefusal

        return EngineRefusal(
            "two-level-hierarchy",
            "two-level hierarchy replays L1 fetches per reference",
        )

    def reset(self) -> None:
        self.l1.reset()
        self._l2_sets = [[] for _ in range(self.l2_geometry.n_sets)]
        self.l2_stats = SimResult(cache=self.l2_stats.cache)

    def in_l2(self, address: int) -> bool:
        """Presence in the second level (testing hook)."""
        la = address >> self.l2_geometry.line_shift
        return la in self._l2_sets[la % self.l2_geometry.n_sets]

    def _l2_lookup_install(self, l2_line: int) -> bool:
        """Probe/fill the L2; returns True on hit."""
        entries = self._l2_sets[l2_line % self.l2_geometry.n_sets]
        self.l2_stats.refs += 1
        try:
            position = entries.index(l2_line)
        except ValueError:
            self.l2_stats.misses += 1
            if len(entries) >= self.l2_geometry.ways:
                entries.pop()
            entries.insert(0, l2_line)
            self.l2_stats.lines_fetched += 1
            self.l2_stats.words_fetched += self._l2_words
            return False
        if position:
            del entries[position]
            entries.insert(0, l2_line)
        self.l2_stats.hits_main += 1
        return True

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        cycles = self.l1.access(
            address, is_write, temporal=temporal, spatial=spatial, now=now
        )
        fetched = self.l1.last_fetch
        if not fetched:
            return cycles
        l2_lines = {line >> self._ratio_shift for line in fetched}
        missed = sum(
            0 if self._l2_lookup_install(line) else 1 for line in l2_lines
        )
        if missed:
            # Pipelined memory requests: one latency hit per access.
            return cycles + self.memory_extra_latency
        return cycles
