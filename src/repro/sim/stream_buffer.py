"""Stream buffers (Jouppi, ISCA 1990) — a related-work baseline (§5).

On a miss, a stream buffer is allocated and starts prefetching the
successive lines of the stream.  Accesses check the *head* of each
buffer; a head hit moves the line into the cache and the buffer fetches
one more line.  The paper's critique: "the mechanism does not work
properly if the number of array references within the loop body, that
induce compulsory/capacity misses, is larger than the number of stream
buffers" — interleaved streams thrash the buffers.

Model notes (documented simplifications):

* head-only comparators, FIFO entries, LRU buffer allocation — Jouppi's
  original design;
* prefetches share the memory bus with demand fetches (same contention
  model as the software-assisted cache), so each entry carries an
  arrival time;
* a head hit costs the main-cache hit time once arrived (the buffer sits
  beside the cache), plus any wait for in-flight data.
"""

from __future__ import annotations

from typing import List, Optional

from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer


class _Stream:
    """One stream buffer: a FIFO of (line, arrival) prefetch entries."""

    __slots__ = ("entries", "next_line", "last_used")

    def __init__(self) -> None:
        self.entries: List[List[int]] = []  # [line_address, arrival]
        self.next_line = -1
        self.last_used = -1

    def reset_to(self, line_address: int, now: int) -> None:
        self.entries = []
        self.next_line = line_address
        self.last_used = now


class StreamBufferCache:
    """Direct-mapped/set-associative cache plus Jouppi stream buffers."""

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        n_buffers: int = 4,
        depth: int = 4,
        name: str = "",
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.n_buffers = n_buffers
        self.depth = depth
        self.name = name or f"stream-buffers({n_buffers}x{depth}) {geometry}"
        self._sets: List[List[List]] = [[] for _ in range(geometry.n_sets)]
        self._streams = [_Stream() for _ in range(n_buffers)]
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._bus_free_at = 0
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._latency = timing.latency
        self._transfer = timing.transfer_cycles(geometry.line_size)
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self._streams = [_Stream() for _ in range(self.n_buffers)]
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._bus_free_at = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refill(self, stream: _Stream, now: int) -> None:
        """Top the stream buffer up to its depth."""
        while len(stream.entries) < self.depth:
            begin = max(now + self._latency, self._bus_free_at)
            arrival = begin + self._transfer
            self._bus_free_at = arrival
            stream.entries.append([stream.next_line, arrival])
            stream.next_line += 1
            self.stats.prefetches_issued += 1
            self.stats.lines_fetched += 1
            self.stats.words_fetched += self._words_per_line

    def _install(self, line_address: int, dirty: bool, now: int) -> int:
        """Place a line into the cache; returns write-buffer stall."""
        entries = self._sets[line_address % self._n_sets]
        stall = 0
        if len(entries) >= self._ways:
            victim = entries.pop()
            if victim[1]:
                self.stats.writebacks += 1
                stall = self.write_buffer.push(now)
                self.stats.write_buffer_stalls += stall
        entries.insert(0, [line_address, dirty])
        return stall

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                if is_write:
                    entry[1] = True
                stats.hits_main += 1
                self._ready_at = start + self._hit_time
                return wait + self._hit_time

        # Head-only comparison against each stream buffer.
        for stream in self._streams:
            if stream.entries and stream.entries[0][0] == la:
                head = stream.entries.pop(0)
                extra = max(0, head[1] - start)
                stream.last_used = start
                stats.hits_assist += 1
                stats.prefetch_hits += 1
                stall = self._install(la, is_write, start)
                self._refill(stream, start + extra)
                cycles = wait + extra + stall + self._hit_time
                self._ready_at = start + extra + stall + self._hit_time
                return cycles

        # Miss: fetch the line, (re)allocate the LRU stream buffer to the
        # successor stream.
        stats.misses += 1
        bus_delay = self._bus_free_at - (start + self._latency)
        if bus_delay < 0:
            bus_delay = 0
        penalty = self._latency + bus_delay + self._transfer
        self._bus_free_at = start + penalty
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        stall = self._install(la, is_write, start)

        victim_stream = min(self._streams, key=lambda s: s.last_used)
        victim_stream.reset_to(la + 1, start)
        self._refill(victim_stream, start)

        cycles = wait + stall + penalty
        self._ready_at = start + stall + penalty
        return cycles
