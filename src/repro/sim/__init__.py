"""Cache-simulation substrate: geometry, timing, baselines, driver."""

from .base import CacheModel
from .belady import simulate_belady
from .bypass import BypassCache
from .column_assoc import ColumnAssociativeCache
from .driver import simulate, simulate_many, simulate_stream
from .engine import (
    ENGINES,
    EngineMismatchError,
    cross_validate,
    cross_validate_stream,
    fast_refusal,
    native_refusal,
    resolve_engine,
    select_engine,
)
from .geometry import CacheGeometry
from .hierarchy import TwoLevelCache
from .result import SimResult
from .standard import StandardCache
from .stream_buffer import StreamBufferCache
from .subblock import SubBlockCache
from .timing import PAPER_TIMING, MemoryTiming
from .write_buffer import WriteBuffer

__all__ = [
    "CacheModel",
    "CacheGeometry",
    "MemoryTiming",
    "PAPER_TIMING",
    "WriteBuffer",
    "SimResult",
    "StandardCache",
    "BypassCache",
    "ColumnAssociativeCache",
    "StreamBufferCache",
    "SubBlockCache",
    "TwoLevelCache",
    "ENGINES",
    "EngineMismatchError",
    "cross_validate",
    "cross_validate_stream",
    "fast_refusal",
    "native_refusal",
    "resolve_engine",
    "select_engine",
    "simulate",
    "simulate_belady",
    "simulate_many",
    "simulate_stream",
]
