"""Sub-block (sectored) cache — the §2.1 contrast to virtual lines.

Sub-block placement uses *long physical lines* sectored into smaller
sub-blocks that are fetched independently: the directory shrinks (one
tag per long line) and so does the fill traffic (one sub-block per
miss), but — unlike virtual lines — nothing prefetches the neighbouring
sub-blocks, and the long line still halves the number of distinct
addresses the cache can hold.  The paper cites the PowerPC 601 unified
cache and the TI SuperSPARC instruction cache (64-byte lines, 32-byte
sub-blocks) and argues virtual lines are the better direction for data.

Model: a set-associative cache of ``line_size`` lines, each carrying a
valid bit per ``sub_block`` bytes.  A reference can miss two ways:

* *tag miss* — the line is absent: the LRU line is evicted (dirty
  sub-blocks written back as one transfer) and only the referenced
  sub-block is fetched; all other sub-blocks become invalid;
* *sub-block miss* — the tag matches but the sub-block is invalid:
  fetch just the sub-block.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer


class SubBlockCache:
    """Sectored set-associative cache with per-sub-block valid bits."""

    def __init__(
        self,
        geometry: CacheGeometry,
        sub_block: int = 32,
        timing: MemoryTiming = MemoryTiming(),
        name: str = "",
    ) -> None:
        if sub_block <= 0 or sub_block & (sub_block - 1):
            raise ConfigError(f"sub-block size must be a power of two: {sub_block}")
        if sub_block > geometry.line_size or geometry.line_size % sub_block:
            raise ConfigError(
                f"sub-block ({sub_block} B) must divide the line "
                f"({geometry.line_size} B)"
            )
        self.geometry = geometry
        self.sub_block = sub_block
        self.timing = timing
        self.name = name or (
            f"subblock {geometry} / {sub_block}B sectors"
        )
        # Per-set MRU-first entries: [line_address, valid_mask, dirty_mask].
        self._sets: List[List[List]] = [[] for _ in range(geometry.n_sets)]
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(sub_block),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._sub_per_line = geometry.line_size // sub_block
        self._sub_shift = sub_block.bit_length() - 1
        self._penalty = timing.latency + timing.transfer_cycles(sub_block)
        self._words_per_sub = sub_block // 8
        self._hit_time = timing.hit_time

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0

    def contains(self, address: int) -> bool:
        """Presence of the *sub-block* holding ``address``."""
        la = address >> self._line_shift
        sub = (address >> self._sub_shift) % self._sub_per_line
        for entry in self._sets[la % self._n_sets]:
            if entry[0] == la:
                return bool(entry[1] & (1 << sub))
        return False

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        sub_bit = 1 << ((address >> self._sub_shift) % self._sub_per_line)
        entries = self._sets[la % self._n_sets]

        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                if entry[1] & sub_bit:
                    # Full hit.
                    if is_write:
                        entry[2] |= sub_bit
                    stats.hits_main += 1
                    self._ready_at = start + self._hit_time
                    return wait + self._hit_time
                # Sub-block miss: fetch just this sector.
                stats.misses += 1
                entry[1] |= sub_bit
                if is_write:
                    entry[2] |= sub_bit
                stats.lines_fetched += 1
                stats.words_fetched += self._words_per_sub
                self._ready_at = start + self._penalty
                return wait + self._penalty

        # Tag miss: evict the LRU line (all its dirty sectors drain as
        # one write-buffer entry), then fetch only the referenced sector.
        stats.misses += 1
        stall = 0
        if len(entries) >= self._ways:
            victim = entries.pop()
            if victim[2]:
                stats.writebacks += 1
                stall = self.write_buffer.push(start)
                stats.write_buffer_stalls += stall
        entries.insert(0, [la, sub_bit, sub_bit if is_write else 0])
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_sub
        cycles = wait + stall + self._penalty
        self._ready_at = start + stall + self._penalty
        return cycles
