"""Memory-system timing parameters (paper section 3.1).

Defaults follow the paper: 20-cycle memory latency (software assistance
only pays off when memory is the bottleneck), 16-byte bus (IBM RS6000
value), 1-cycle main-cache hit, 3-cycle bounce-back-cache hit
(conservative: data read in 1 cycle but hit/miss known in the 2nd, plus
one cycle of miss-handling overhead), swap locking both caches 2 further
cycles, 2-cycle dirty-line transfer to the write buffer.

The miss penalty for fetching ``n`` physical lines of size ``LS`` over a
``w_b`` bytes/cycle bus is ``t_lat + n * LS / w_b`` — the same as one
physical line of size ``n * LS`` (section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class MemoryTiming:
    """Timing model shared by all cache simulators."""

    latency: int = 20
    bus_bytes_per_cycle: int = 16
    hit_time: int = 1
    assist_hit_time: int = 3
    swap_lock: int = 2
    dirty_transfer: int = 2
    write_buffer_entries: int = 8

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError(f"latency must be non-negative: {self.latency}")
        if self.bus_bytes_per_cycle < 1:
            raise ConfigError("bus bandwidth must be at least 1 byte/cycle")
        if self.hit_time < 1:
            raise ConfigError("hit time must be at least one cycle")
        if self.assist_hit_time < self.hit_time:
            raise ConfigError("assist hit time cannot beat the main hit time")
        if self.write_buffer_entries < 0:
            raise ConfigError("write buffer size must be non-negative")

    def transfer_cycles(self, n_bytes: int) -> int:
        """Bus cycles to move ``n_bytes`` (rounded up)."""
        if n_bytes < 0:
            raise ConfigError(f"cannot transfer a negative size: {n_bytes}")
        bus = self.bus_bytes_per_cycle
        return (n_bytes + bus - 1) // bus

    def miss_penalty(self, n_lines: int, line_size: int) -> int:
        """Stall cycles to fetch ``n_lines`` physical lines from memory."""
        if n_lines < 1:
            raise ConfigError(f"a miss fetches at least one line: {n_lines}")
        return self.latency + n_lines * self.transfer_cycles(line_size)

    def word_fetch_penalty(self) -> int:
        """Stall cycles to fetch a single 8-byte word (pure bypassing)."""
        return self.latency + self.transfer_cycles(8)


#: The configuration used throughout the paper's evaluation.
PAPER_TIMING = MemoryTiming()
