"""Column-associative cache (Agarwal & Pudar, ISCA 1993) — §5 baseline.

A direct-mapped cache in which a line may reside in two sets: its
primary set ``f1`` and the *rehash* set ``f2`` (``f1`` with the top
index bit flipped).  A miss in the first probe triggers a second probe;
a second-probe hit swaps the two lines so the next access hits first
try.  Each line carries a *rehash bit* marking second-choice residents;
a first-probe "hit" on a rehashed line is a real miss and the rehashed
line is replaced in place (it is the less recently used of the pair).

This removes most conflict misses of a direct-mapped cache — but, as
the paper notes, "the mechanism does not deal with cache pollution",
which is exactly where the bounce-back cache wins.

Timing: first-probe hit = 1 cycle; second-probe hit = one extra cycle
plus the swap (modelled as ``assist_hit_time`` data availability, like
the victim-cache swap); misses as usual.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer


class ColumnAssociativeCache:
    """Column-associative direct-mapped cache with rehash bits."""

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        name: str = "",
    ) -> None:
        if geometry.ways != 1:
            raise ConfigError("column associativity applies to direct-mapped caches")
        if geometry.n_sets < 2:
            raise ConfigError("column associativity needs at least two sets")
        self.geometry = geometry
        self.timing = timing
        self.name = name or f"column-assoc {geometry}"
        # One line per set: [line_address, dirty, rehashed] or None.
        self._lines: List[Optional[List]] = [None] * geometry.n_sets
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._flip = geometry.n_sets >> 1  # top index bit
        self._penalty = timing.miss_penalty(1, geometry.line_size)
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time
        self._second_probe = timing.hit_time + 1
        self._swap_time = timing.assist_hit_time

    def reset(self) -> None:
        self._lines = [None] * self._n_sets
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0

    def contains(self, address: int) -> bool:
        la = address >> self._line_shift
        first = la % self._n_sets
        for index in (first, first ^ self._flip):
            line = self._lines[index]
            if line is not None and line[0] == la:
                return True
        return False

    def _evict(self, index: int, start: int) -> int:
        line = self._lines[index]
        self._lines[index] = None
        if line is not None and line[1]:
            self.stats.writebacks += 1
            stall = self.write_buffer.push(start)
            self.stats.write_buffer_stalls += stall
            return stall
        return 0

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        first = la % self._n_sets
        second = first ^ self._flip

        line = self._lines[first]
        if line is not None and line[0] == la:
            # First-probe hit.
            if is_write:
                line[1] = True
            stats.hits_main += 1
            self._ready_at = start + self._hit_time
            return wait + self._hit_time

        if line is not None and line[2]:
            # The primary slot holds a rehashed (second-choice) line: do
            # not probe further — replace it in place.
            stats.misses += 1
            stall = self._evict(first, start)
            self._lines[first] = [la, is_write, False]
            stats.lines_fetched += 1
            stats.words_fetched += self._words_per_line
            cycles = wait + stall + self._penalty
            self._ready_at = start + stall + self._penalty
            return cycles

        other = self._lines[second]
        if other is not None and other[0] == la:
            # Second-probe hit: swap so the next access hits first try.
            if is_write:
                other[1] = True
            self._lines[second] = line
            if line is not None:
                line[2] = True  # it now lives in its rehash position
            other[2] = False
            self._lines[first] = other
            stats.hits_assist += 1
            stats.swaps += 1
            self._ready_at = start + self._swap_time + 1
            return wait + self._swap_time

        # Miss in both probes: the new line goes to the primary slot; the
        # previous occupant (a first-choice resident) rehashes into the
        # alternate slot, displacing whatever lived there.
        stats.misses += 1
        stall = 0
        if line is not None:
            stall += self._evict(second, start)
            line[2] = True
            self._lines[second] = line
        self._lines[first] = [la, is_write, False]
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        cycles = wait + stall + self._penalty + (self._second_probe - self._hit_time)
        self._ready_at = start + stall + self._penalty
        return cycles
