"""On-demand build and loading of the native kernel library.

The C source ships with the package (``kernels.c``); the first native
simulation compiles it with the system C compiler into a shared library
cached under the result-cache directory
(``default_cache_dir()/native/kernels-<hash>.so``).  The hash covers
the source bytes, the compiler's ``--version`` line and the flags, so

* editing the C source invalidates the cached ``.so``,
* a compiler upgrade rebuilds rather than serving a stale binary, and
* ``CC=/bin/false`` (or no toolchain at all) hashes to *nothing* —
  even a previously built library is not served, which is exactly what
  the CI no-compiler job relies on.

Everything here is failure-tolerant: any problem (no compiler, compile
error, unloadable library) is captured as a one-line *diagnostic*
string.  :func:`availability` returns ``None`` when the library is
ready and the diagnostic otherwise; the engine ladder turns a
diagnostic into the stable ``native-unavailable`` refusal, so
``engine=auto`` silently falls back to the fast tier while
``engine=native`` raises a :class:`~repro.errors.ConfigError` carrying
the diagnostic verbatim.
"""

from __future__ import annotations

import ctypes
import os
import shlex
import shutil
import subprocess
from pathlib import Path
from typing import List, Optional, Tuple

#: The shipped C source (single translation unit).
SOURCE = Path(__file__).with_name("kernels.c")

#: Flags for the on-demand build.  Deterministic (no -march=native): the
#: cached .so must be shareable across CI runs on fleet hardware.
CFLAGS = ("-O2", "-fPIC", "-shared")

#: Memoized load state for this process.  ``attempted`` latches the
#: first load so a missing toolchain is probed once per process, not
#: once per simulation; tests flip state through :func:`reset`.
_STATE = {"attempted": False, "lib": None, "diagnostic": None, "path": None}

#: ctypes argument layout of repro_sim_chunk (see kernels.c).
_ARGTYPES = (
    [ctypes.c_longlong]          # n
    + [ctypes.c_void_p] * 4      # addresses, is_write, temporal, gaps
    + [ctypes.c_longlong] * 8    # geometry / timing scalars
    + [ctypes.c_void_p] * 9      # state arrays, regs, out, per-ref outs
)


def _source_bytes() -> bytes:
    """The C source to hash and compile (monkeypatch seam for the
    cache-invalidation tests)."""
    return SOURCE.read_bytes()


def compiler_command() -> Optional[List[str]]:
    """The C compiler argv prefix: ``$CC`` (shell-split) or the first of
    cc/gcc/clang on PATH; None when there is no toolchain at all."""
    cc = os.environ.get("CC", "").strip()
    if cc:
        return shlex.split(cc)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return [path]
    return None


def _compiler_version(cmd: List[str]) -> Tuple[Optional[str], Optional[str]]:
    """``(version line, None)`` or ``(None, diagnostic)``."""
    try:
        proc = subprocess.run(
            cmd + ["--version"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, timeout=60,
        )
    except OSError as exc:
        return None, f"cannot run {cmd[0]!r}: {exc}"
    except subprocess.TimeoutExpired:
        return None, f"{cmd[0]!r} --version timed out"
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout or "").strip().splitlines()
        tail = detail[0] if detail else "no output"
        return None, (
            f"{' '.join(cmd)} --version failed "
            f"(exit {proc.returncode}): {tail}"
        )
    lines = (proc.stdout or "").strip().splitlines()
    return (lines[0] if lines else f"{cmd[0]} (unversioned)"), None


def cache_dir() -> Path:
    """Where compiled kernels live: a ``native/`` subdirectory of the
    result cache (``$REPRO_CACHE_DIR``-aware; the result cache globs
    ``*/*.json`` so the two never collide)."""
    from ...harness.parallel import default_cache_dir

    return Path(default_cache_dir()) / "native"


def build_id(version_line: str) -> str:
    """Content hash keying the cached ``.so``: source + compiler +
    flags."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(_source_bytes())
    digest.update(b"\n")
    digest.update(version_line.encode())
    digest.update(b"\n")
    digest.update(" ".join(CFLAGS).encode())
    return digest.hexdigest()[:16]


def ensure_library(
    force: bool = False,
) -> Tuple[Optional[Path], Optional[str]]:
    """Compile (if needed) and return ``(path, None)``, else
    ``(None, diagnostic)``.

    The build is atomic — compile to a temporary name, then
    ``os.replace`` — so concurrent processes racing on a cold cache
    both end with the same valid library.
    """
    cmd = compiler_command()
    if cmd is None:
        return None, (
            "no C compiler found (set $CC or install cc/gcc/clang)"
        )
    version, problem = _compiler_version(cmd)
    if version is None:
        return None, problem
    library = cache_dir() / f"kernels-{build_id(version)}.so"
    if library.exists() and not force:
        return library, None
    library.parent.mkdir(parents=True, exist_ok=True)
    # Compile the hashed bytes, not the package file directly, so the
    # binary always matches its own cache key.
    source = library.with_suffix(".c")
    source.write_bytes(_source_bytes())
    scratch = library.with_name(f".{library.name}.{os.getpid()}")
    proc = subprocess.run(
        cmd + list(CFLAGS) + ["-o", str(scratch), str(source)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    if proc.returncode != 0 or not scratch.exists():
        try:
            scratch.unlink()
        except OSError:
            pass
        detail = (proc.stderr or proc.stdout or "").strip()
        tail = "; ".join(detail.splitlines()[-3:]) or "no output"
        return None, (
            f"C compile failed (exit {proc.returncode}, "
            f"{' '.join(cmd)}): {tail}"
        )
    os.replace(scratch, library)
    return library, None


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_sim_chunk.restype = ctypes.c_longlong
    lib.repro_sim_chunk.argtypes = _ARGTYPES
    return lib


def load() -> Tuple[Optional[ctypes.CDLL], Optional[str]]:
    """Memoized ``(library, None)`` or ``(None, diagnostic)``."""
    if not _STATE["attempted"]:
        _STATE["attempted"] = True
        path, diagnostic = ensure_library()
        if path is None:
            _STATE["diagnostic"] = diagnostic
        else:
            try:
                _STATE["lib"] = _configure(ctypes.CDLL(str(path)))
                _STATE["path"] = path
            except OSError as exc:
                _STATE["diagnostic"] = f"cannot load {path}: {exc}"
    return _STATE["lib"], _STATE["diagnostic"]


def availability() -> Optional[str]:
    """None when the native library is loadable, else the diagnostic."""
    lib, diagnostic = load()
    if lib is not None:
        return None
    return diagnostic or "native kernel library unavailable"


def library_path() -> Optional[Path]:
    """Path of the loaded library (None when unavailable)."""
    load()
    return _STATE["path"]


def reset() -> None:
    """Forget the memoized load (tests re-probing the toolchain)."""
    _STATE.update(attempted=False, lib=None, diagnostic=None, path=None)
