"""ctypes driver for the native engine tier.

:func:`simulate_native` / :func:`simulate_native_stream` mirror the
fast engine's entry points (:mod:`repro.sim.fast`) exactly — counters,
final model state and per-reference telemetry are bit-identical — but
run the fused functional+timing loop of ``kernels.c`` instead of the
numpy batch kernels.  Both are thin wrappers over one chunked core:
the in-memory path is simply a single-chunk stream.

Eligibility is the caller's job (:func:`repro.sim.engine
.native_refusal`): a cold-start, no-warm-up run of a plain write-back
LRU cache (StandardCache or an assist-free software-assisted model,
including the figure-9b ``temporal_priority`` victim rule).  The C
side keeps all state in caller-owned numpy arrays plus an int64 carry
register block, so chunk boundaries are invisible: the streamed and
monolithic paths execute the identical instruction sequence.
"""

from __future__ import annotations

import ctypes

import numpy as np

from ...errors import ConfigError
from ..result import SimResult
from ..write_buffer import WriteBuffer
from . import build

#: Carry register indices (must match kernels.c).
R_FIRST = 0
R_CUR = 1
R_PREV_MISS = 2
R_WB_LEN = 3
R_WB_HEAD = 4
R_WB_PUSHES = 5
R_WB_STALL = 6
R_READY = 7
R_BUS = 8
R_LAST_HIT = 9
R_LAST_LA = 10
N_REGS = 16

#: Per-call output indices (must match kernels.c).
O_HITS = 0
O_CYCLES = 1
O_STALLS = 2
O_PUSHES = 3


def _ptr(array):
    if array is None:
        return None
    return ctypes.c_void_p(array.ctypes.data)


def _require_library():
    lib, diagnostic = build.load()
    if lib is None:
        # select_engine vets availability first, so reaching this is a
        # caller bug — but fail with the diagnostic, not a segfault.
        raise ConfigError(f"native engine unavailable: {diagnostic}")
    return lib


def simulate_native(model, trace, probes=None) -> SimResult:
    """Run an in-memory trace through the compiled kernels."""
    return _run(model, [trace], trace.name, probes)


def simulate_native_stream(model, stream, probes=None) -> SimResult:
    """Run a :class:`~repro.stream.TraceStream` chunk-wise through the
    compiled kernels, O(chunk) memory."""
    return _run(model, stream.chunks(), stream.name, probes)


def _run(model, chunks, name, probes) -> SimResult:
    lib = _require_library()
    model.reset()
    stats = model.stats
    stats.trace = name
    stats.engine = "native"

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    line_shift = geometry.line_shift
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8
    tracks_temporal = model._entry_has_temporal
    temporal_priority = bool(getattr(model, "_temporal_priority", False))

    # Cache state: flat columns either way (dm: one line per set).
    lines = n_sets * ways
    tags = np.full(lines, -1, dtype=np.int64)
    dirty = np.zeros(lines, dtype=np.uint8)
    tbits = np.zeros(lines, dtype=np.uint8)
    set_count = None if ways == 1 else np.zeros(n_sets, dtype=np.int64)

    wb_entries = model.write_buffer.entries
    wb_drain = model.write_buffer.drain_cycles
    wb_ring = np.zeros(max(wb_entries, 1), dtype=np.int64)
    regs = np.zeros(N_REGS, dtype=np.int64)
    regs[R_FIRST] = 1
    out = np.zeros(4, dtype=np.int64)

    refs = 0
    cycles = 0
    stalls = 0
    hits_total = 0
    pushes_total = 0
    for chunk in chunks:
        n = len(chunk)
        if n == 0:
            continue
        addresses = np.ascontiguousarray(chunk.addresses, dtype=np.int64)
        is_write = np.ascontiguousarray(chunk.is_write, dtype=np.uint8)
        temporal = np.ascontiguousarray(chunk.temporal, dtype=np.uint8)
        gaps = np.ascontiguousarray(chunk.gaps, dtype=np.int64)
        first = bool(regs[R_FIRST])
        hits_out = np.zeros(n, dtype=np.uint8) if probes is not None else None
        stalls_out = (
            np.zeros(n, dtype=np.int64) if probes is not None else None
        )
        before = out.copy()
        lib.repro_sim_chunk(
            n, _ptr(addresses), _ptr(is_write), _ptr(temporal), _ptr(gaps),
            line_shift, n_sets, ways, int(temporal_priority),
            hit_time, penalty, wb_entries, wb_drain,
            _ptr(tags), _ptr(dirty), _ptr(tbits), _ptr(set_count),
            _ptr(wb_ring), _ptr(regs), _ptr(out),
            _ptr(hits_out), _ptr(stalls_out),
        )
        chunk_cycles = int(out[O_CYCLES] - before[O_CYCLES])
        if probes is not None:
            from ...telemetry.events import TelemetryBatch
            from ..fast import _per_ref_cycles

            hits = hits_out.astype(bool)
            miss = ~hits
            cycles_col = _per_ref_cycles(
                chunk.gaps, hits, stalls_out, hit_time, penalty, first=first,
            )
            assert int(cycles_col.sum()) == chunk_cycles, (
                "per-reference cycle reconstruction disagrees with the "
                "native timing loop"
            )
            probes.on_batch(
                TelemetryBatch(
                    start=refs,
                    addresses=chunk.addresses,
                    is_write=chunk.is_write,
                    temporal=chunk.temporal,
                    spatial=chunk.spatial,
                    gaps=chunk.gaps,
                    miss=miss,
                    assist_hit=np.zeros(n, dtype=bool),
                    cycles=cycles_col,
                    words=miss.astype(np.int64) * words_per_line,
                    wb_stall=stalls_out,
                    ref_ids=chunk.ref_ids,
                )
            )
        refs += n
    hits_total = int(out[O_HITS])
    cycles = int(out[O_CYCLES])
    stalls = int(out[O_STALLS])
    pushes_total = int(out[O_PUSHES])

    stats.refs = refs
    stats.hits_main = hits_total
    stats.misses = refs - hits_total
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = pushes_total
    stats.write_buffer_stalls = stalls
    stats.cycles = cycles

    _materialise(model, tags, dirty, tbits, set_count, wb_ring, regs,
                 refs, tracks_temporal, wb_entries, wb_drain)
    stats.check()
    if probes is not None:
        probes.finish(stats)
    return stats


def _materialise(model, tags, dirty, tbits, set_count, wb_ring, regs,
                 refs, tracks_temporal, wb_entries, wb_drain) -> None:
    """Leave the model exactly as the reference engine would have
    (mirrors :func:`repro.sim.fast._materialise_state`)."""
    write_buffer = WriteBuffer(wb_entries, wb_drain)
    write_buffer.pushes = int(regs[R_WB_PUSHES])
    write_buffer.stall_cycles = int(regs[R_WB_STALL])
    cap = len(wb_ring)
    head = int(regs[R_WB_HEAD])
    for k in range(int(regs[R_WB_LEN])):
        write_buffer._completions.append(int(wb_ring[(head + k) % cap]))
    model.write_buffer = write_buffer
    model._ready_at = int(regs[R_READY])
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = int(regs[R_BUS])
    if refs:
        model.last_fetch = (
            [] if regs[R_LAST_HIT] else [int(regs[R_LAST_LA])]
        )
    ways = model.geometry.ways
    if ways == 1:
        model._tags = tags.tolist()
        model._dirty = dirty.astype(bool).tolist()
        if tracks_temporal:
            model._temporal = tbits.astype(bool).tolist()
    else:
        tag_list = tags.tolist()
        dirty_list = dirty.tolist()
        temporal_list = tbits.tolist()
        sets = []
        for index, count in enumerate(set_count.tolist()):
            base = index * ways
            sets.append(
                [
                    [
                        tag_list[base + k],
                        bool(dirty_list[base + k]),
                        bool(temporal_list[base + k]),
                    ]
                    if tracks_temporal
                    else [tag_list[base + k], bool(dirty_list[base + k])]
                    for k in range(count)
                ]
            )
        model._sets = sets
