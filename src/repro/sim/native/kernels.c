/* Native simulation kernels (the "native" engine tier).
 *
 * One serial pass per trace chunk over the standard-cache hot loops:
 * the direct-mapped / k-way LRU functional walk fused with the exact
 * write-buffer/timing recurrence of repro/sim/fast.py.  The caller
 * (repro.sim.native.runner) owns every array; this file holds no
 * global state, so one loaded library serves any number of concurrent
 * simulations with distinct state blocks.
 *
 * Bit-exactness contract
 * ----------------------
 * The loop reproduces, reference for reference, the recurrence the
 * vectorized fast engine evaluates in batch:
 *
 *   wait_i  = max(0, H - gap_i)            (0 for the very first ref)
 *   delta_i = max(gap_i, H) + (P - H if the previous ref missed)
 *   cur     = cur + delta_i                (then += its own WB stall)
 *   cycles += wait_i + stall_i + (H if hit else P)
 *
 * `cur` here equals fast.py's `base_start[i] + offset-so-far`: pushes
 * happen only at misses, and each push is replayed at the pre-stall
 * start of its access, so folding stalls into the running clock the
 * moment they occur yields the identical push times, stalls, ready_at
 * and bus_free_at as the two-phase prefix-sum + replay formulation --
 * including the write buffer's final ring contents, because with
 * penalty >= drain every push finds the ring empty (the closed form
 * fast.py uses) and the generic replay below reduces to the same
 * single draining entry.
 *
 * Carry registers (regs, int64[16]) -- persists across chunk calls:
 *   0 FIRST      1 until the first reference has been processed
 *   1 CUR        absolute start+stalls of the last reference
 *   2 PREV_MISS  outcome of the last reference
 *   3 WB_LEN     live write-buffer entries in the ring
 *   4 WB_HEAD    ring head index
 *   5 WB_PUSHES  cumulative pushes
 *   6 WB_STALL   cumulative stall cycles
 *   7 READY      model._ready_at
 *   8 BUS        model._bus_free_at (last miss's pre-stall start + P)
 *   9 LAST_HIT   outcome of the last reference (for last_fetch)
 *  10 LAST_LA    line address of the last reference
 *
 * Per-call outputs (out, int64[4]): hits, cycles, stalls, pushes.
 */

#include <stdint.h>

#define R_FIRST 0
#define R_CUR 1
#define R_PREV_MISS 2
#define R_WB_LEN 3
#define R_WB_HEAD 4
#define R_WB_PUSHES 5
#define R_WB_STALL 6
#define R_READY 7
#define R_BUS 8
#define R_LAST_HIT 9
#define R_LAST_LA 10

#define O_HITS 0
#define O_CYCLES 1
#define O_STALLS 2
#define O_PUSHES 3

/* Exact replica of WriteBuffer.push (repro/sim/write_buffer.py) over a
 * circular completion-time ring of capacity `cap`.  Returns the
 * processor stall; entries == 0 is handled by the caller (the ring is
 * never touched and the stall is the full drain). */
static int64_t wb_push(int64_t now, int64_t entries, int64_t drain,
                       int64_t *ring, int64_t cap,
                       int64_t *len, int64_t *head) {
    int64_t stall = 0;
    /* advance: retire entries whose drain finished by `now`. */
    while (*len > 0 && ring[*head] <= now) {
        *head = (*head + 1) % cap;
        (*len)--;
    }
    if (*len >= entries) {
        /* Full: wait for the oldest entry to drain, freeing one slot. */
        stall = ring[*head] - now;
        *head = (*head + 1) % cap;
        (*len)--;
        now += stall;
    }
    {
        int64_t start = now;
        if (*len > 0) {
            int64_t tail = ring[(*head + *len - 1) % cap];
            if (tail > start)
                start = tail;
        }
        ring[(*head + *len) % cap] = start + drain;
        (*len)++;
    }
    return stall;
}

/* One chunk of the fused functional + timing walk.
 *
 * Direct-mapped (ways == 1): `tags`/`dirty`/`tbits` are per-set
 * columns of length n_sets and `set_count` is unused (may be NULL).
 * Set-associative: they are flat MRU-first columns of length
 * n_sets * ways and `set_count[s]` holds set s's live entry count.
 *
 * `hits_out` (uint8) and `stalls_out` (int64), when non-NULL, receive
 * per-reference outcomes for telemetry reconstruction.  Returns 0.
 */
int64_t repro_sim_chunk(
    int64_t n,
    const int64_t *addresses,
    const uint8_t *is_write,
    const uint8_t *temporal,
    const int64_t *gaps,
    int64_t line_shift,
    int64_t n_sets,
    int64_t ways,
    int64_t temporal_priority,
    int64_t hit_time,
    int64_t penalty,
    int64_t wb_entries,
    int64_t wb_drain,
    int64_t *tags,
    uint8_t *dirty,
    uint8_t *tbits,
    int64_t *set_count,
    int64_t *wb_ring,
    int64_t *regs,
    int64_t *out,
    uint8_t *hits_out,
    int64_t *stalls_out) {
    int64_t first = regs[R_FIRST];
    int64_t cur = regs[R_CUR];
    int64_t prev_miss = regs[R_PREV_MISS];
    int64_t wb_len = regs[R_WB_LEN];
    int64_t wb_head = regs[R_WB_HEAD];
    int64_t wb_cap = wb_entries > 0 ? wb_entries : 1;
    int64_t cycles = 0, stalls = 0, hits_n = 0, pushes_n = 0;
    /* Power-of-two set counts (the common case) use a mask instead of
     * a 64-bit divide in the hot loop. */
    int64_t pow2 = (n_sets & (n_sets - 1)) == 0;
    int64_t set_mask = n_sets - 1;
    int64_t i;

    for (i = 0; i < n; i++) {
        int64_t g = gaps[i];
        int64_t la = addresses[i] >> line_shift;
        int64_t set = pow2 ? (la & set_mask) : (la % n_sets);
        uint8_t w = is_write[i];
        uint8_t t = temporal[i];
        int64_t wait, delta, stall = 0, service;
        int hit, vd = 0;

        if (first) {
            wait = 0;
            delta = g;
            first = 0;
        } else {
            wait = hit_time - g;
            if (wait < 0)
                wait = 0;
            delta = g > hit_time ? g : hit_time;
            if (prev_miss)
                delta += penalty - hit_time;
        }
        cur += delta;

        if (ways == 1) {
            if (tags[set] == la) {
                hit = 1;
                dirty[set] |= w;
                tbits[set] |= t;
            } else {
                hit = 0;
                vd = tags[set] != -1 && dirty[set];
                tags[set] = la;
                dirty[set] = w;
                tbits[set] = t;
            }
        } else {
            int64_t base = set * ways;
            int64_t cnt = set_count[set];
            int64_t pos = -1, k, j;
            for (k = 0; k < cnt; k++) {
                if (tags[base + k] == la) {
                    pos = k;
                    break;
                }
            }
            if (pos >= 0) {
                uint8_t d = dirty[base + pos];
                uint8_t tb = tbits[base + pos];
                for (j = pos; j > 0; j--) {
                    tags[base + j] = tags[base + j - 1];
                    dirty[base + j] = dirty[base + j - 1];
                    tbits[base + j] = tbits[base + j - 1];
                }
                tags[base] = la;
                dirty[base] = d | w;
                tbits[base] = tb | t;
                hit = 1;
            } else {
                hit = 0;
                if (cnt >= ways) {
                    int64_t vic = cnt - 1;
                    if (temporal_priority) {
                        for (k = cnt - 1; k >= 0; k--) {
                            if (!tbits[base + k]) {
                                vic = k;
                                break;
                            }
                        }
                    }
                    vd = dirty[base + vic];
                    for (j = vic; j > 0; j--) {
                        tags[base + j] = tags[base + j - 1];
                        dirty[base + j] = dirty[base + j - 1];
                        tbits[base + j] = tbits[base + j - 1];
                    }
                } else {
                    for (j = cnt; j > 0; j--) {
                        tags[base + j] = tags[base + j - 1];
                        dirty[base + j] = dirty[base + j - 1];
                        tbits[base + j] = tbits[base + j - 1];
                    }
                    set_count[set] = cnt + 1;
                }
                tags[base] = la;
                dirty[base] = w;
                tbits[base] = t;
            }
        }

        if (hit) {
            hits_n++;
            service = hit_time;
        } else {
            /* The fetch is requested before the victim drains, so the
             * bus milestone excludes this access's own push stall. */
            regs[R_BUS] = cur + penalty;
            if (vd) {
                pushes_n++;
                if (wb_entries == 0) {
                    stall = wb_drain;
                } else {
                    stall = wb_push(cur, wb_entries, wb_drain,
                                    wb_ring, wb_cap, &wb_len, &wb_head);
                }
                cur += stall;
                stalls += stall;
            }
            service = penalty;
        }
        cycles += wait + stall + service;
        regs[R_READY] = cur + service;
        prev_miss = !hit;
        if (hits_out)
            hits_out[i] = (uint8_t)hit;
        if (stalls_out)
            stalls_out[i] = stall;
        regs[R_LAST_HIT] = hit;
        regs[R_LAST_LA] = la;
    }

    regs[R_FIRST] = first;
    regs[R_CUR] = cur;
    regs[R_PREV_MISS] = prev_miss;
    regs[R_WB_LEN] = wb_len;
    regs[R_WB_HEAD] = wb_head;
    regs[R_WB_PUSHES] += pushes_n;
    regs[R_WB_STALL] += stalls;
    out[O_HITS] += hits_n;
    out[O_CYCLES] += cycles;
    out[O_STALLS] += stalls;
    out[O_PUSHES] += pushes_n;
    return 0;
}
