"""Force-build the native kernel library and print its cache path
(``make native``)."""

import sys

from .build import ensure_library


def main() -> int:
    path, diagnostic = ensure_library(force=True)
    if path is None:
        print(f"error: {diagnostic}", file=sys.stderr)
        return 1
    print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
