"""Native compiled engine tier (``engine=native``).

C kernels for the standard-cache hot loops, compiled on demand with
the system C compiler, cached under the result-cache directory keyed
by a source+compiler hash, and loaded via :mod:`ctypes`.  Sits above
the ``fast`` tier in the engine ladder (:mod:`repro.sim.engine`):
``engine=auto`` picks it only when :func:`~repro.sim.engine
.native_refusal` proves equivalence *and* a toolchain or prebuilt
library exists; otherwise the fast tier serves silently and the
refusal matrix shows ``native-unavailable``.

``python -m repro.sim.native`` (``make native``) force-builds the
library and prints its cache path.
"""

from .build import availability, ensure_library, library_path, reset
from .runner import simulate_native, simulate_native_stream

__all__ = [
    "availability",
    "ensure_library",
    "library_path",
    "reset",
    "simulate_native",
    "simulate_native_stream",
]
