"""Standard set-associative cache (the paper's baseline).

The *Standard* configuration of the paper matches the data caches of the
DEC Alpha, MIPS R4000 and Intel Pentium: 8 KB, 32-byte lines,
direct-mapped, write-allocate / write-back with a write buffer.  The
write policy is configurable (Jouppi's *Cache Write Policies and
Performance* is the paper's reference [20]): ``write-back`` with
write-allocate is the default the paper assumes; ``write-through``
sends every store to the write buffer and optionally skips allocation
on write misses.

This class is deliberately implemented independently of the
software-assisted model so the two can cross-validate each other (a
software-assisted cache with no bounce-back cache and no virtual lines
must behave identically).

Direct-mapped geometries — the paper's default — run on a flat
array-backed hot path (preallocated ``tags``/``dirty`` columns indexed
by set) instead of per-set Python lists: one line per set makes the
MRU list pure overhead.  Set-associative geometries keep the list
implementation.  Both are the *reference* engine; the batch ``fast``
engine lives in :mod:`repro.sim.fast`.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer

WRITE_POLICIES = ("write-back", "write-through")


class StandardCache:
    """LRU set-associative cache; ignores the software tags entirely."""

    #: Per-line state carries no temporal bit (cf. the software model);
    #: read by the fast engine when materialising final cache contents.
    _entry_has_temporal = False

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        name: str = "",
        write_policy: str = "write-back",
        write_allocate: bool = True,
    ) -> None:
        if write_policy not in WRITE_POLICIES:
            raise ConfigError(
                f"write policy {write_policy!r} not in {WRITE_POLICIES}"
            )
        self.geometry = geometry
        self.timing = timing
        self.write_policy = write_policy
        self.write_allocate = write_allocate
        self.name = name or f"standard {geometry}"
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        #: Line addresses fetched from the next level by the most recent
        #: access (consumed by the two-level hierarchy wrapper).
        self.last_fetch: List[int] = []
        # Hot-path constants.
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._penalty = timing.miss_penalty(1, geometry.line_size)
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time
        self._init_state()

    def _init_state(self) -> None:
        if self._ways == 1:
            # Flat array-backed direct-mapped state (-1 = empty slot).
            self._tags: Optional[List[int]] = [-1] * self._n_sets
            self._dirty: List[bool] = [False] * self._n_sets
            self._sets: Optional[List[List[List]]] = None
            # Shadow the class-level dispatcher: the per-reference loop
            # calls straight into the right backend.
            self.access = self._access_direct
        else:
            # Per-set MRU-first list of [line_address, dirty] entries.
            self._tags = None
            self._dirty = []
            self._sets = [[] for _ in range(self._n_sets)]
            self.access = self._access_assoc

    def reset(self) -> None:
        self._init_state()
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self.last_fetch = []

    def contains(self, address: int) -> bool:
        """Presence check (observability hook for tests)."""
        la = address >> self._line_shift
        if self._tags is not None:
            return self._tags[la % self._n_sets] == la
        return any(e[0] == la for e in self._sets[la % self._n_sets])

    def fast_engine_refusal(self):
        """Why the batch kernels are not equivalent (None = they are)."""
        from .engine import EngineRefusal

        if self.write_policy != "write-back":
            return EngineRefusal(
                "write-policy",
                f"write policy {self.write_policy!r} has no batch kernel",
            )
        if self._penalty < self._hit_time:
            return EngineRefusal(
                "degenerate-timing",
                "miss penalty below the pipelined hit time",
            )
        return None

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        # Class-level fallback; instances bind ``access`` directly to a
        # backend in _init_state.
        if self._tags is not None:
            return self._access_direct(address, is_write, now=now)
        return self._access_assoc(address, is_write, now=now)

    # ------------------------------------------------------------------
    # Direct-mapped hot path
    # ------------------------------------------------------------------
    def _access_direct(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        self.last_fetch = []
        la = address >> self._line_shift
        index = la % self._n_sets
        tags = self._tags
        write_through = self.write_policy == "write-through"
        if tags[index] == la:
            stall = 0
            if is_write:
                if write_through:
                    # The store goes to memory as well; the line stays
                    # clean.
                    stats.writebacks += 1
                    stall = self.write_buffer.push(start)
                    stats.write_buffer_stalls += stall
                else:
                    self._dirty[index] = True
            stats.hits_main += 1
            self._ready_at = start + stall + self._hit_time
            return wait + stall + self._hit_time

        # Write miss without allocation: the store goes straight to the
        # write buffer and the cache is untouched.
        if is_write and write_through and not self.write_allocate:
            stats.misses += 1
            stats.writebacks += 1
            stall = self.write_buffer.push(start)
            stats.write_buffer_stalls += stall
            self._ready_at = start + stall + self._hit_time
            return wait + stall + self._hit_time

        # Miss: fetch one physical line.
        stats.misses += 1
        stall = 0
        if tags[index] != -1 and self._dirty[index]:
            stats.writebacks += 1
            stall = self.write_buffer.push(start)
            stats.write_buffer_stalls += stall
        if is_write and write_through:
            # Allocated clean; the store itself drains through the
            # write buffer.
            tags[index] = la
            self._dirty[index] = False
            stats.writebacks += 1
            stall += self.write_buffer.push(start)
        else:
            tags[index] = la
            self._dirty[index] = is_write
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        self.last_fetch = [la]
        cycles = wait + stall + self._penalty
        self._ready_at = start + stall + self._penalty
        return cycles

    # ------------------------------------------------------------------
    # Set-associative path
    # ------------------------------------------------------------------
    def _access_assoc(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        self.last_fetch = []
        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]
        write_through = self.write_policy == "write-through"
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    # Move to MRU position.
                    del entries[i]
                    entries.insert(0, entry)
                stall = 0
                if is_write:
                    if write_through:
                        # The store goes to memory as well; the line
                        # stays clean.
                        stats.writebacks += 1
                        stall = self.write_buffer.push(start)
                        stats.write_buffer_stalls += stall
                    else:
                        entry[1] = True
                stats.hits_main += 1
                self._ready_at = start + stall + self._hit_time
                return wait + stall + self._hit_time

        # Write miss without allocation: the store goes straight to the
        # write buffer and the cache is untouched.
        if is_write and write_through and not self.write_allocate:
            stats.misses += 1
            stats.writebacks += 1
            stall = self.write_buffer.push(start)
            stats.write_buffer_stalls += stall
            self._ready_at = start + stall + self._hit_time
            return wait + stall + self._hit_time

        # Miss: fetch one physical line.
        stats.misses += 1
        stall = 0
        if len(entries) >= self._ways:
            victim = entries.pop()
            if victim[1]:
                stats.writebacks += 1
                stall = self.write_buffer.push(start)
                stats.write_buffer_stalls += stall
        if is_write and write_through:
            # Allocated clean; the store itself drains through the
            # write buffer.
            entries.insert(0, [la, False])
            stats.writebacks += 1
            stall += self.write_buffer.push(start)
        else:
            entries.insert(0, [la, is_write])
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        self.last_fetch = [la]
        cycles = wait + stall + self._penalty
        self._ready_at = start + stall + self._penalty
        return cycles
