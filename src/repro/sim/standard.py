"""Standard set-associative cache (the paper's baseline).

The *Standard* configuration of the paper matches the data caches of the
DEC Alpha, MIPS R4000 and Intel Pentium: 8 KB, 32-byte lines,
direct-mapped, write-allocate / write-back with a write buffer.  The
write policy is configurable (Jouppi's *Cache Write Policies and
Performance* is the paper's reference [20]): ``write-back`` with
write-allocate is the default the paper assumes; ``write-through``
sends every store to the write buffer and optionally skips allocation
on write misses.

This class is deliberately implemented independently of the
software-assisted model so the two can cross-validate each other (a
software-assisted cache with no bounce-back cache and no virtual lines
must behave identically).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer

WRITE_POLICIES = ("write-back", "write-through")


class StandardCache:
    """LRU set-associative cache; ignores the software tags entirely."""

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        name: str = "",
        write_policy: str = "write-back",
        write_allocate: bool = True,
    ) -> None:
        if write_policy not in WRITE_POLICIES:
            raise ConfigError(
                f"write policy {write_policy!r} not in {WRITE_POLICIES}"
            )
        self.geometry = geometry
        self.timing = timing
        self.write_policy = write_policy
        self.write_allocate = write_allocate
        self.name = name or f"standard {geometry}"
        # Per-set MRU-first list of [line_address, dirty] entries.
        self._sets: List[List[List]] = [[] for _ in range(geometry.n_sets)]
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        #: Line addresses fetched from the next level by the most recent
        #: access (consumed by the two-level hierarchy wrapper).
        self.last_fetch: List[int] = []
        # Hot-path constants.
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._penalty = timing.miss_penalty(1, geometry.line_size)
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self.last_fetch = []

    def contains(self, address: int) -> bool:
        """Presence check (observability hook for tests)."""
        la = address >> self._line_shift
        return any(e[0] == la for e in self._sets[la % self._n_sets])

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        self.last_fetch = []
        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]
        write_through = self.write_policy == "write-through"
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    # Move to MRU position.
                    del entries[i]
                    entries.insert(0, entry)
                stall = 0
                if is_write:
                    if write_through:
                        # The store goes to memory as well; the line
                        # stays clean.
                        stats.writebacks += 1
                        stall = self.write_buffer.push(start)
                        stats.write_buffer_stalls += stall
                    else:
                        entry[1] = True
                stats.hits_main += 1
                self._ready_at = start + stall + self._hit_time
                return wait + stall + self._hit_time

        # Write miss without allocation: the store goes straight to the
        # write buffer and the cache is untouched.
        if is_write and write_through and not self.write_allocate:
            stats.misses += 1
            stats.writebacks += 1
            stall = self.write_buffer.push(start)
            stats.write_buffer_stalls += stall
            self._ready_at = start + stall + self._hit_time
            return wait + stall + self._hit_time

        # Miss: fetch one physical line.
        stats.misses += 1
        stall = 0
        if len(entries) >= self._ways:
            victim = entries.pop()
            if victim[1]:
                stats.writebacks += 1
                stall = self.write_buffer.push(start)
                stats.write_buffer_stalls += stall
        if is_write and write_through:
            # Allocated clean; the store itself drains through the
            # write buffer.
            entries.insert(0, [la, False])
            stats.writebacks += 1
            stall += self.write_buffer.push(start)
        else:
            entries.insert(0, [la, is_write])
        stats.lines_fetched += 1
        stats.words_fetched += self._words_per_line
        self.last_fetch = [la]
        cycles = wait + stall + self._penalty
        self._ready_at = start + stall + self._penalty
        return cycles
