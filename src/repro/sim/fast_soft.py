"""Batch kernels for the software-assisted cache (the "fast" tier).

:mod:`repro.sim.fast` covers plain write-back LRU configurations with
pure group-by/prefix-sum kernels.  This module extends the fast engine
to the paper's *assisted* design space — bounce-back cache, virtual
lines, temporal-bit admission/replacement — exactly, which is what lets
:meth:`~repro.core.software_cache.SoftwareAssistedCache
.fast_engine_refusal` return ``None`` for the whole soft config family.

Why exactness is still possible
-------------------------------
With prefetching off (the one mode still refused) the memory bus never
delays a demand fetch: every access ends at ``ready_at >= bus_free_at``,
so the ``bus_delay`` term of the reference model is identically zero and
*timing decouples from the bus*.  The driver's clock rule then admits a
one-reference-back recurrence generalising the plain-cache one: with
``e_i`` the access's service cost (``H`` on a main hit, ``stall + A`` on
a bounce-back swap, ``stall + penalty`` on a miss, all ``>= H``) and
``lock_i`` the swap lock (``swap_lock`` after an assist hit, else 0)::

    wait_i  = max(0, lock_{i-1} + H - gap_i)
    start_i = start_{i-1} + e_{i-1} + max(gap_i - H, lock_{i-1})

Functional behaviour no longer reduces to a group-by — bounce-backs and
virtual-line fills mutate sets *other* than the accessed one — so the
direct-mapped kernel is event-driven instead:

1. a vectorized *pure* pass (the plain group-by, seeded from live tags)
   classifies every reference assuming no assists; its misses are the
   *candidate events*;
2. a Python walk visits events in trace order with live state (tags,
   bounce-back buffer, write buffer at exact absolute times).  Whenever
   an event perturbs a set the pure pass did not predict (bounce-back
   install, virtual-line sibling fill, invalidation), the set's next
   predicted hit is scheduled as a *dynamic event* and re-evaluated
   live — so divergence is self-healing and provably confined to
   scheduled positions;
3. every reference between events is a main-cache hit whose timing is
   the closed-form prefix sum above; per-set dirty/temporal bits are
   synchronised lazily from sorted prefix counts exactly when an event
   needs to observe or evict them.

The walk therefore costs O(events), not O(refs) — on the paper's loop
workloads (miss ratios of a few percent) the kernel runs an order of
magnitude faster than the reference loop while producing bit-identical
counters, final model state and per-reference telemetry.  The sorted
scaffolding of the pure pass depends only on the trace and the cache
geometry, so it is materialised once per chunk and reused across
configurations (:func:`_chunk_arrays`) — the same amortisation
:meth:`~repro.memtrace.trace.Trace.columns_list` gives the reference
loop when a sweep runs many models over one trace.

Set-associative assisted geometries are event-driven too, via a
different (and simpler) prediction rule: every reference leaves its
line resident at MRU and pure hits never evict, so any repeat
occurrence of a line is a provable hit unless a live event removed the
line in between — and every removal site schedules the line's next
occurrence as a dynamic event.  Lazy per-set synchronisation replays
MRU moves and dirty/temporal bits from line-grouped occurrence indices
at O(ways log n) per event (:func:`_assoc_chunk_arrays`,
:class:`_AssocWalker`).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import List, Optional

import numpy as np

from ..core.bounce_back import BounceBackBuffer
from .result import SimResult
from .write_buffer import WriteBuffer


def is_assisted(model) -> bool:
    """True when ``model`` needs the assisted-path kernels of this
    module (bounce-back cache present or virtual lines enabled)."""
    return bool(getattr(model, "_use_bb", False)) or (
        getattr(model, "_vl_lines", 1) > 1
    )


def simulate_soft(model, trace, probes=None) -> SimResult:
    """Monolithic assisted-path fast run (one chunk)."""
    return _run(model, [trace], trace.name, probes)


def simulate_soft_stream(model, stream, probes=None) -> SimResult:
    """Chunk-wise assisted-path fast run with explicit state carry."""
    return _run(model, stream.chunks(), stream.name, probes)


def _run(model, chunks, name: str, probes) -> SimResult:
    model.reset()
    walker_cls = _DirectWalker if model._ways == 1 else _AssocWalker
    walker = walker_cls(model)
    position = 0
    for chunk in chunks:
        n = len(chunk)
        if n == 0:
            continue
        batch = walker.run_chunk(chunk, probes is not None)
        if probes is not None:
            from ..telemetry.events import TelemetryBatch

            miss_col, assist_col, cycles_col, words_col, stall_col = batch
            probes.on_batch(
                TelemetryBatch(
                    start=position,
                    addresses=chunk.addresses,
                    is_write=chunk.is_write,
                    temporal=chunk.temporal,
                    spatial=chunk.spatial,
                    gaps=chunk.gaps,
                    miss=miss_col,
                    assist_hit=assist_col,
                    cycles=cycles_col,
                    words=words_col,
                    wb_stall=stall_col,
                    ref_ids=chunk.ref_ids,
                )
            )
        position += n
    stats = walker.finalise()
    stats.trace = name
    stats.engine = "fast"
    stats.check()
    if probes is not None:
        probes.finish(stats)
    return stats


_CACHE_ATTR = "_soft_kernel_cache"


def _chunk_arrays(chunk, line_shift: int, n_sets: int, H: int):
    """The sorted-order scaffolding of the event walk, cached on the
    chunk.

    Everything computed here depends only on the trace contents, the
    cache geometry and the hit time — never on cache state — so sweeps
    that run several soft configurations over one trace (and repeated
    runs over the same in-memory trace) pay the argsort, prefix sums
    and list materialisation once.  Trace objects are immutable by
    convention, which is what makes the attachment sound; stream chunks
    are fresh objects per run and simply never hit the cache.
    """
    key = (line_shift, n_sets, H)
    cached = getattr(chunk, _CACHE_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    n = len(chunk)
    la_np = chunk.addresses >> line_shift
    sets_np = la_np % n_sets
    order_np = np.argsort(sets_np, kind="stable")
    la_s = la_np[order_np]
    set_s = sets_np[order_np]
    gstart = np.ones(n, dtype=bool)
    if n:
        gstart[1:] = set_s[1:] != set_s[:-1]
    run_hit = np.zeros(n, dtype=bool)
    if n:
        run_hit[1:] = ~gstart[1:] & (la_s[1:] == la_s[:-1])
    group_first = np.nonzero(gstart)[0]
    gs_np = set_s[group_first]
    la_gf = la_s[group_first]
    g64 = chunk.gaps
    mg = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.maximum(g64, H), out=mg[1:])
    wp = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.maximum(H - g64, 0), out=wp[1:])
    cw = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(chunk.is_write[order_np], out=cw[1:])
    ct = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(chunk.temporal[order_np], out=ct[1:])
    # Candidate scaffolding: a within-run miss is a pure miss whatever
    # the carried tags; only each group's *first* reference depends on
    # them, so per-run classification is O(sets), not O(refs).
    miss_mask = ~run_hit
    miss_mask[group_first] = False
    miss_pos = np.sort(order_np[miss_mask]).tolist()
    bounds = group_first.tolist() + [n]
    ptr0 = {}
    hi = {}
    for gi, s in enumerate(gs_np.tolist()):
        ptr0[s] = bounds[gi]
        hi[s] = bounds[gi + 1]
    data = (
        la_np.tolist(),                  # 0: line addresses, global order
        la_s,                            # 1: line addresses, sorted order
        run_hit,                         # 2: within-run hit flags
        gs_np,                           # 3: set of each group
        la_gf,                           # 4: first line of each group
        order_np[group_first],           # 5: global pos of group firsts
        group_first.tolist(),            # 6: sorted pos of group firsts
        miss_pos,                        # 7: within-run misses, global
        ptr0,                            # 8: per-set pointer template
        hi,                              # 9: per-set group ends (shared)
        order_np.tolist(),               # 10: global positions, sorted
        mg.tolist(),                     # 11: prefix of max(gap, H)
        wp.tolist(),                     # 12: prefix of max(H - gap, 0)
        cw.tolist(),                     # 13: prefix of writes, sorted
        ct.tolist(),                     # 14: prefix of temporal, sorted
    )
    try:
        setattr(chunk, _CACHE_ATTR, (key, data))
    except AttributeError:
        pass
    return data


_ASSOC_CACHE_ATTR = "_soft_assoc_kernel_cache"


def _assoc_chunk_arrays(chunk, line_shift: int, H: int):
    """Occurrence-index scaffolding of the set-associative event walk,
    cached on the chunk.

    Unlike the direct-mapped scaffolding this is keyed by *line*, not by
    set: the k-way kernel predicts hits from line occurrence structure
    (every reference leaves its line resident, so any repeat occurrence
    is a hit unless a live event removed the line in between — and
    removals schedule the next occurrence as a dynamic event).  Grouping
    the stable argsort by line value gives, per line, its chunk
    occurrence positions in ascending order plus write/temporal prefix
    sums over the same ordering, which is everything the lazy per-set
    MRU/bit synchronisation needs at O(ways log n) per event.
    """
    key = (line_shift, H)
    cached = getattr(chunk, _ASSOC_CACHE_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    n = len(chunk)
    la_np = chunk.addresses >> line_shift
    order2 = np.argsort(la_np, kind="stable")
    la2 = la_np[order2]
    gstart = np.ones(n, dtype=bool)
    if n:
        gstart[1:] = la2[1:] != la2[:-1]
    starts = np.nonzero(gstart)[0].tolist()
    bounds = starts + [n]
    occ = order2.tolist()
    la2_l = la2.tolist()
    line_slice = {}
    for gi, lo in enumerate(starts):
        line_slice[la2_l[lo]] = (lo, bounds[gi + 1])
    pw2 = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(chunk.is_write[order2], out=pw2[1:])
    pt2 = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(chunk.temporal[order2], out=pt2[1:])
    g64 = chunk.gaps
    mg = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.maximum(g64, H), out=mg[1:])
    wp = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.maximum(H - g64, 0), out=wp[1:])
    data = (
        la_np.tolist(),   # 0: line addresses, global order
        occ,              # 1: global positions grouped by line, ascending
        line_slice,       # 2: line -> (lo, hi) slice into occ
        pw2.tolist(),     # 3: prefix of writes over occ order
        pt2.tolist(),     # 4: prefix of temporal bits over occ order
        mg.tolist(),      # 5: prefix of max(gap, H)
        wp.tolist(),      # 6: prefix of max(H - gap, 0)
    )
    try:
        setattr(chunk, _ASSOC_CACHE_ATTR, (key, data))
    except AttributeError:
        pass
    return data


class _WalkerBase:
    """State and machinery shared by both assisted-path kernels: live
    bounce-back buffer and write buffer (at exact absolute times), the
    timing recurrence carry, and the counter set."""

    def __init__(self, model) -> None:
        self.model = model
        config = model.config
        self.n_sets = model._n_sets
        self.line_shift = model._line_shift
        self.H = model._hit_time
        self.A = model._assist_hit
        self.SL = model._swap_lock
        self.latency = model._latency
        self.transfer = model._line_transfer
        self.wpl = model._words_per_line
        self.vl = model._vl_lines
        self.use_bb = model._use_bb
        self.use_temporal = model._use_temporal
        self.reset_on_bounce = model._reset_on_bounce
        self.admit_non_temporal = model._admit_non_temporal
        self.bb = BounceBackBuffer(
            config.bounce_back_lines, config.bounce_back_ways
        )
        self.wb = WriteBuffer(
            model.write_buffer.entries, model.write_buffer.drain_cycles
        )
        # Timing carry: ``base`` is start + service of the last
        # processed reference (absolute cycles), ``lock`` its residual
        # swap lock, ``fresh`` true until the first reference ever.
        self.base = 0
        self.lock = 0
        self.fresh = True
        self.bus_free_at = 0
        self.last_fetch: List[int] = []
        # Counters (prefetch counters stay zero: the mode is refused).
        self.refs = 0
        self.cycles = 0
        self.hits_main = 0
        self.hits_assist = 0
        self.misses = 0
        self.lines_fetched = 0
        self.words_fetched = 0
        self.writebacks = 0
        self.bounce_backs = 0
        self.bounce_aborts = 0
        self.swaps = 0
        self.invalidations = 0
        self.wb_stalls = 0

    # -- write buffer ---------------------------------------------------
    def _discard(self, dirty: bool, start: int) -> int:
        if dirty:
            self.writebacks += 1
            stall = self.wb.push(start)
            self.wb_stalls += stall
            return stall
        return 0

    def _finish_chunk(self, k: int, n: int, g_col) -> None:
        """Fold the trailing hits after the chunk's last event and leave
        the carry pointing past the chunk's final reference."""
        H = self.H
        n_inter = n - k - 1
        if n_inter == 0:
            return
        mg = self._mg
        wp = self._wp
        g1 = g_col[k + 1]
        if self.fresh:
            self.fresh = False
            wait_sum = wp[n] - wp[k + 2]
            start_last = g1 + (mg[n] - mg[k + 2])
        else:
            w1 = self.lock + H - g1
            if w1 < 0:
                w1 = 0
            gh = g1 - H
            wait_sum = w1 + (wp[n] - wp[k + 2])
            start_last = (
                self.base + (gh if gh > self.lock else self.lock)
                + (mg[n] - mg[k + 2])
            )
        self.cycles += wait_sum + n_inter * H
        self.hits_main += n_inter
        self.base = start_last + H
        self.lock = 0
        self.last_fetch = []

    # -- telemetry reconstruction --------------------------------------
    def _telemetry(
        self, n, g64, lock0, fresh0, chunk_cycles,
        ev_pos, ev_cyc, ev_kind, ev_words, ev_stall,
    ):
        H = self.H
        cyc = np.maximum(H - g64, 0) + H
        if fresh0:
            cyc[0] = H
        elif lock0 > 0:
            cyc[0] = max(0, lock0 + H - int(g64[0])) + H
        pos = np.array(ev_pos, dtype=np.int64)
        kind = np.array(ev_kind, dtype=np.int64)
        # A reference following an assist hit waits out the swap lock.
        after = pos[kind == 1] + 1
        after = after[after < n]
        if len(after):
            cyc[after] = (
                np.maximum(self.SL + H - g64[after], 0) + H
            )
        miss_col = np.zeros(n, dtype=bool)
        assist_col = np.zeros(n, dtype=bool)
        words_col = np.zeros(n, dtype=np.int64)
        stall_col = np.zeros(n, dtype=np.int64)
        if len(pos):
            cyc[pos] = np.array(ev_cyc, dtype=np.int64)
            miss_col[pos[kind == 2]] = True
            assist_col[pos[kind == 1]] = True
            words_col[pos] = np.array(ev_words, dtype=np.int64)
            stall_col[pos] = np.array(ev_stall, dtype=np.int64)
        assert int(cyc.sum()) == chunk_cycles, (
            "per-reference cycle reconstruction disagrees with the "
            "assisted-path walk"
        )
        return miss_col, assist_col, cyc, words_col, stall_col

    def _finalise_common(self) -> SimResult:
        model = self.model
        stats = model.stats
        stats.refs = self.refs
        stats.cycles = self.cycles
        stats.hits_main = self.hits_main
        stats.hits_assist = self.hits_assist
        stats.misses = self.misses
        stats.lines_fetched = self.lines_fetched
        stats.words_fetched = self.words_fetched
        stats.writebacks = self.writebacks
        stats.bounce_backs = self.bounce_backs
        stats.bounce_aborts = self.bounce_aborts
        stats.swaps = self.swaps
        stats.invalidations = self.invalidations
        stats.write_buffer_stalls = self.wb_stalls
        model.bounce_back = self.bb
        model.write_buffer = self.wb
        model._ready_at = self.base + self.lock
        model._bus_free_at = self.bus_free_at
        model.last_fetch = list(self.last_fetch)
        return stats


class _DirectWalker(_WalkerBase):
    """Event-driven direct-mapped kernel (see module docstring)."""

    def __init__(self, model) -> None:
        super().__init__(model)
        self.tags: List[int] = [-1] * self.n_sets
        self.dirty: List[bool] = [False] * self.n_sets
        self.temp: List[bool] = [False] * self.n_sets

    # -- per-chunk lazy bit sync ---------------------------------------
    def _sync(self, s: int, i: int) -> None:
        """Apply dirty/temporal bits of set ``s``'s pending pure hits
        before global position ``i`` (they all hit the live resident)."""
        p = self._ptr.get(s)
        if p is None:
            return
        j = bisect_left(self._glob_s, i, p, self._hi[s])
        if j > p:
            if self._cw[j] > self._cw[p]:
                self.dirty[s] = True
            if self._ct[j] > self._ct[p]:
                self.temp[s] = True
            self._ptr[s] = j

    def _diverge(self, s: int) -> None:
        """Set ``s`` was perturbed outside the pure pass's prediction:
        re-evaluate its next predicted hit live."""
        p = self._ptr.get(s)
        if p is None or p >= self._hi[s]:
            return
        hs = self._hit_s[p] or self._gf_hit.get(p, False)
        if hs and self.tags[s] != self._la_s[p]:
            q = self._glob_s[p]
            if not self._scheduled[q]:
                self._scheduled[q] = True
                heapq.heappush(self._dyn, q)

    # -- bounce-back machinery (mirrors the reference model) -----------
    def _bounce_evicted(self, entry, start: int, blocked) -> int:
        """A line fell out of the bounce-back buffer: bounce or discard.
        ``entry`` is a 5-field buffer entry; prefetched is always False
        here (the mode is refused)."""
        if not (self.use_temporal and entry[2]):
            return self._discard(entry[1], start)
        target = entry[0] % self.n_sets
        if target in blocked:
            self.bounce_aborts += 1
            return self._discard(entry[1], start)
        self._sync(target, self._pos)
        stall = 0
        if self.tags[target] != -1:
            if self.dirty[target] and self.wb.is_full(start):
                self.bounce_aborts += 1
                return self._discard(entry[1], start)
            stall = self._discard(self.dirty[target], start)
        self.tags[target] = entry[0]
        self.dirty[target] = entry[1]
        self.temp[target] = entry[2] and not self.reset_on_bounce
        self.bounce_backs += 1
        self._diverge(target)
        return stall

    def _victim_to_bb(self, addr, vdirty, vtemp, start, blocked) -> int:
        if not self.use_bb:
            return self._discard(vdirty, start)
        if not self.admit_non_temporal and not vtemp:
            return self._discard(vdirty, start)
        evicted = self.bb.insert([addr, vdirty, vtemp, False, 0])
        if evicted is None:
            return 0
        return self._bounce_evicted(evicted, start, blocked)

    # -- the chunk driver ----------------------------------------------
    def run_chunk(self, chunk, want_probes: bool):
        n = len(chunk)
        n_sets = self.n_sets
        H = self.H
        data = _chunk_arrays(chunk, self.line_shift, n_sets, H)
        (la_l, la_s, run_hit, gs_np, la_gf, gf_glob, gf_list,
         miss_pos, ptr0, hi, glob_s, mg, wp, cw, ct) = data
        _, w_col, t_col, sp_col, g_col = chunk.columns_list()

        # Pure pass, seeded from live tags: the cached within-run miss
        # positions are candidates whatever the carried state; only each
        # set group's first reference needs checking against the carried
        # resident (O(sets) work per run).
        if len(gs_np):
            tags_np = np.array(self.tags, dtype=np.int64)
            gf_ok = tags_np[gs_np] == la_gf
            extra = np.sort(gf_glob[~gf_ok]).tolist()
            gf_hit = dict(zip(gf_list, gf_ok.tolist()))
        else:
            extra = []
            gf_hit = {}
        if extra:
            cand = miss_pos + extra
            cand.sort()
        else:
            cand = miss_pos

        # Shared with the helper methods (sync / diverge / bounce).
        self._mg = mg
        self._wp = wp
        self._cw = cw
        self._ct = ct
        self._glob_s = glob_s
        self._la_s = la_s
        self._hit_s = run_hit
        self._gf_hit = gf_hit
        ptr = ptr0.copy()
        self._ptr = ptr
        self._hi = hi
        dyn: List[int] = []
        self._dyn = dyn
        scheduled = bytearray(n)
        self._scheduled = scheduled

        # Telemetry capture (chunk-local).
        lock0, fresh0 = self.lock, self.fresh
        cycles0 = self.cycles
        ev_pos: List[int] = []
        ev_cyc: List[int] = []
        ev_kind: List[int] = []  # 0 = hit, 1 = assist, 2 = miss
        ev_words: List[int] = []
        ev_stall: List[int] = []

        # The event walk.  Everything the per-event path touches is a
        # local; the carry (base / lock / fresh / counters) is written
        # back once the chunk is done.
        tags = self.tags
        dirty = self.dirty
        temp = self.temp
        bis = bisect_left
        heappop = heapq.heappop
        heappush = heapq.heappush
        A = self.A
        SL = self.SL
        use_bb = self.use_bb
        vl = self.vl
        wpl = self.wpl
        latency = self.latency
        transfer = self.transfer
        admit_nt = self.admit_non_temporal
        use_temporal = self.use_temporal
        bb_find = self.bb.find
        wb = self.wb
        wb_comp = wb._completions
        wb_entries = wb.entries
        wb_drain = wb.drain_cycles
        bb_lookup = self.bb.lookup_remove
        bb_insert = self.bb.insert
        # The default buffer is fully associative: its three hot-path
        # operations are linear scans of one short MRU list, inlined
        # below to spare the method tower per event.
        bb_flat = use_bb and self.bb.n_sets == 1 and self.bb.lines > 0
        bb_list = self.bb._sets[0] if bb_flat else None
        bb_cap = self.bb.ways
        base = self.base
        lock = self.lock
        fresh = self.fresh
        cycles = 0
        hits_main = 0
        lf = self.last_fetch
        prev_k = -1  # chunk-local position of the last processed event
        ci = 0
        ncand = len(cand)
        while ci < ncand or dyn:
            if dyn and (ci >= ncand or dyn[0] < cand[ci]):
                i = heappop(dyn)
            else:
                i = cand[ci]
                ci += 1

            # Fold the intermediate hits in (prev_k, i) — the closed-form
            # timing recurrence — and compute the event's (start, wait).
            n_inter = i - prev_k - 1
            if n_inter == 0:
                g = g_col[i]
                if fresh:
                    fresh = False
                    start = g
                    wait = 0
                else:
                    wait = lock + H - g
                    if wait < 0:
                        wait = 0
                    gh = g - H
                    start = base + (gh if gh > lock else lock)
            else:
                g1 = g_col[prev_k + 1]
                if fresh:
                    fresh = False
                    wait_sum = wp[i] - wp[prev_k + 2]
                    start = g1 + (mg[i + 1] - mg[prev_k + 2])
                else:
                    w1 = lock + H - g1
                    if w1 < 0:
                        w1 = 0
                    gh = g1 - H
                    wait_sum = w1 + (wp[i] - wp[prev_k + 2])
                    start = (
                        base + (gh if gh > lock else lock)
                        + (mg[i + 1] - mg[prev_k + 2])
                    )
                cycles += wait_sum + n_inter * H
                hits_main += n_inter
                lf = []
                wait = H - g_col[i]
                if wait < 0:
                    wait = 0
            prev_k = i

            # The event itself: locate its slot in the sorted order and
            # absorb any pending pure-hit bits of its set.
            la = la_l[i]
            s0 = la % n_sets
            p = ptr[s0]
            j = bis(glob_s, i, p, hi[s0])
            if j > p:
                if cw[j] > cw[p]:
                    dirty[s0] = True
                if ct[j] > ct[p]:
                    temp[s0] = True
            ptr[s0] = j + 1

            if tags[s0] == la:
                # Live hit at a scheduled position (a bounce or sibling
                # fill put the line back): a plain main-cache hit.
                if w_col[i]:
                    dirty[s0] = True
                if t_col[i]:
                    temp[s0] = True
                hits_main += 1
                lf = []
                cycles += wait + H
                base = start + H
                lock = 0
                if want_probes:
                    ev_pos.append(i)
                    ev_cyc.append(wait + H)
                    ev_kind.append(0)
                    ev_words.append(0)
                    ev_stall.append(0)
                continue

            w = w_col[i]
            t = t_col[i]
            if use_bb:
                if bb_flat:
                    found = None
                    for bi, be in enumerate(bb_list):
                        if be[0] == la:
                            del bb_list[bi]
                            found = be
                            break
                else:
                    found = bb_lookup(la)
                if found is not None:
                    # Bounce-back hit: swap with the conflicting line.
                    self.hits_assist += 1
                    self.swaps += 1
                    if w:
                        found[1] = True
                    if t:
                        found[2] = True
                    stall = 0
                    occ = tags[s0]
                    if occ != -1:
                        self._pos = i
                        if bb_flat:
                            evicted = (
                                bb_list.pop()
                                if len(bb_list) >= bb_cap else None
                            )
                            bb_list.insert(
                                0, [occ, dirty[s0], temp[s0], False, 0]
                            )
                        else:
                            evicted = bb_insert(
                                [occ, dirty[s0], temp[s0], False, 0]
                            )
                        if evicted is not None:
                            if not (use_temporal and evicted[2]):
                                if evicted[1]:
                                    # inlined WriteBuffer.push
                                    self.writebacks += 1
                                    wb.pushes += 1
                                    if wb_entries == 0:
                                        wb.stall_cycles += wb_drain
                                        self.wb_stalls += wb_drain
                                        stall = wb_drain
                                    else:
                                        while wb_comp and wb_comp[0] <= start:
                                            wb_comp.popleft()
                                        if len(wb_comp) >= wb_entries:
                                            stall = wb_comp.popleft() - start
                                            wb.stall_cycles += stall
                                            self.wb_stalls += stall
                                            now2 = start + stall
                                        else:
                                            now2 = start
                                        last = (
                                            wb_comp[-1] if wb_comp else now2
                                        )
                                        wb_comp.append(
                                            (last if last > now2 else now2)
                                            + wb_drain
                                        )
                            else:
                                stall = self._bounce_evicted(
                                    evicted, start, (s0,)
                                )
                    tags[s0] = la
                    dirty[s0] = found[1]
                    temp[s0] = found[2]
                    lf = []
                    e = stall + A
                    cycles += wait + e
                    base = start + e
                    lock = SL
                    if want_probes:
                        ev_pos.append(i)
                        ev_cyc.append(wait + e)
                        ev_kind.append(1)
                        ev_words.append(0)
                        ev_stall.append(stall)
                    continue

            self.misses += 1
            if not (sp_col[i] and vl > 1):
                penalty = latency + transfer
                self.bus_free_at = start + penalty
                self.lines_fetched += 1
                self.words_fetched += wpl
                lf = [la]
                words = wpl
                stall = 0
                occ = tags[s0]
                if occ != -1:
                    if use_bb and (self.admit_non_temporal or temp[s0]):
                        self._pos = i
                        if bb_flat:
                            evicted = (
                                bb_list.pop()
                                if len(bb_list) >= bb_cap else None
                            )
                            bb_list.insert(
                                0, [occ, dirty[s0], temp[s0], False, 0]
                            )
                        else:
                            evicted = bb_insert(
                                [occ, dirty[s0], temp[s0], False, 0]
                            )
                        if evicted is not None:
                            if not (use_temporal and evicted[2]):
                                if evicted[1]:
                                    # inlined WriteBuffer.push
                                    self.writebacks += 1
                                    wb.pushes += 1
                                    if wb_entries == 0:
                                        wb.stall_cycles += wb_drain
                                        self.wb_stalls += wb_drain
                                        stall = wb_drain
                                    else:
                                        while wb_comp and wb_comp[0] <= start:
                                            wb_comp.popleft()
                                        if len(wb_comp) >= wb_entries:
                                            stall = wb_comp.popleft() - start
                                            wb.stall_cycles += stall
                                            self.wb_stalls += stall
                                            now2 = start + stall
                                        else:
                                            now2 = start
                                        last = (
                                            wb_comp[-1] if wb_comp else now2
                                        )
                                        wb_comp.append(
                                            (last if last > now2 else now2)
                                            + wb_drain
                                        )
                            else:
                                stall = self._bounce_evicted(
                                    evicted, start, (s0,)
                                )
                    elif dirty[s0]:
                        # inlined WriteBuffer.push
                        self.writebacks += 1
                        wb.pushes += 1
                        if wb_entries == 0:
                            wb.stall_cycles += wb_drain
                            self.wb_stalls += wb_drain
                            stall = wb_drain
                        else:
                            while wb_comp and wb_comp[0] <= start:
                                wb_comp.popleft()
                            if len(wb_comp) >= wb_entries:
                                stall = wb_comp.popleft() - start
                                wb.stall_cycles += stall
                                self.wb_stalls += stall
                                now2 = start + stall
                            else:
                                now2 = start
                            last = wb_comp[-1] if wb_comp else now2
                            wb_comp.append(
                                (last if last > now2 else now2) + wb_drain
                            )
                tags[s0] = la
                dirty[s0] = w
                temp[s0] = t
            else:
                # Virtual-line burst fetch: fill the whole aligned
                # virtual line, coherently with the bounce-back buffer.
                self._pos = i
                vbase = la - la % vl
                to_fetch = [
                    line for line in range(vbase, vbase + vl)
                    if line == la or tags[line % n_sets] != line
                ]
                nf = len(to_fetch)
                penalty = latency + nf * transfer
                self.bus_free_at = start + penalty
                self.lines_fetched += nf
                self.words_fetched += nf * wpl
                lf = to_fetch
                words = nf * wpl
                blocked = {line % n_sets for line in to_fetch}
                stall = 0
                for line in to_fetch:
                    li = line % n_sets
                    # Lazy bit sync of the sibling's set (the accessed
                    # set was already consumed above).
                    p = ptr.get(li)
                    if p is not None:
                        j = bis(glob_s, i, p, hi[li])
                        if j > p:
                            if cw[j] > cw[p]:
                                dirty[li] = True
                            if ct[j] > ct[p]:
                                temp[li] = True
                            ptr[li] = j
                    occ = tags[li]
                    found = None
                    if bb_flat:
                        for be in bb_list:
                            if be[0] == line:
                                found = be
                                break
                    elif use_bb:
                        found = bb_find(line)
                    if found is not None:
                        # The buffer's copy is the live one: the
                        # fetched slot is tagged invalid, costing the
                        # would-be victim its place.
                        self.invalidations += 1
                        if occ != -1:
                            vd, vt = dirty[li], temp[li]
                            tags[li] = -1
                            dirty[li] = False
                            temp[li] = False
                            stall += self._victim_to_bb(
                                occ, vd, vt, start, blocked
                            )
                        self._diverge(li)
                        continue
                    victim = occ != -1
                    if victim:
                        vd, vt = dirty[li], temp[li]
                    tags[li] = line
                    dirty[li] = w and line == la
                    temp[li] = t and line == la
                    if victim:
                        if bb_flat and (admit_nt or vt):
                            evicted = (
                                bb_list.pop()
                                if len(bb_list) >= bb_cap else None
                            )
                            bb_list.insert(0, [occ, vd, vt, False, 0])
                            if evicted is not None:
                                if not (use_temporal and evicted[2]):
                                    if evicted[1]:
                                        # inlined WriteBuffer.push
                                        self.writebacks += 1
                                        wb.pushes += 1
                                        if wb_entries == 0:
                                            wb.stall_cycles += wb_drain
                                            self.wb_stalls += wb_drain
                                            stall += wb_drain
                                        else:
                                            while (
                                                wb_comp
                                                and wb_comp[0] <= start
                                            ):
                                                wb_comp.popleft()
                                            if len(wb_comp) >= wb_entries:
                                                st = (
                                                    wb_comp.popleft() - start
                                                )
                                                wb.stall_cycles += st
                                                self.wb_stalls += st
                                                stall += st
                                                now2 = start + st
                                            else:
                                                now2 = start
                                            last = (
                                                wb_comp[-1] if wb_comp
                                                else now2
                                            )
                                            wb_comp.append(
                                                (
                                                    last if last > now2
                                                    else now2
                                                )
                                                + wb_drain
                                            )
                                else:
                                    stall += self._bounce_evicted(
                                        evicted, start, blocked
                                    )
                        else:
                            stall += self._victim_to_bb(
                                occ, vd, vt, start, blocked
                            )
                    if line != la:
                        # inlined _diverge for the filled sibling
                        p2 = ptr.get(li)
                        if p2 is not None and p2 < hi[li]:
                            hs = run_hit[p2] or gf_hit.get(p2, False)
                            if hs and tags[li] != la_s[p2]:
                                q = glob_s[p2]
                                if not scheduled[q]:
                                    scheduled[q] = True
                                    heappush(dyn, q)
            e = stall + penalty
            cycles += wait + e
            base = start + e
            lock = 0
            if want_probes:
                ev_pos.append(i)
                ev_cyc.append(wait + e)
                ev_kind.append(2)
                ev_words.append(words)
                ev_stall.append(stall)

        # Flush pending bit syncs: every sorted position still past a
        # set's pointer is a pure hit on that set's live resident, whose
        # write/temporal flags belong on it (and must survive into the
        # next chunk and the final materialised state).
        for s, p in ptr.items():
            h2 = hi[s]
            if p < h2:
                if cw[h2] > cw[p]:
                    dirty[s] = True
                if ct[h2] > ct[p]:
                    temp[s] = True

        self.base = base
        self.lock = lock
        self.fresh = fresh
        self.cycles += cycles
        self.hits_main += hits_main
        self.last_fetch = lf
        self._finish_chunk(prev_k, n, g_col)
        self.refs += n

        if not want_probes:
            return None
        return self._telemetry(
            n, chunk.gaps, lock0, fresh0, self.cycles - cycles0,
            ev_pos, ev_cyc, ev_kind, ev_words, ev_stall,
        )

    # -- end of run -------------------------------------------------------
    def finalise(self) -> SimResult:
        stats = self._finalise_common()
        model = self.model
        model._tags = self.tags
        model._dirty = self.dirty
        model._temporal = self.temp
        return stats


class _AssocWalker(_WalkerBase):
    """Event-driven assisted-path kernel for ``ways > 1`` geometries.

    The k-way generalisation rests on one invariant of the reference
    model: *every reference leaves its line resident at MRU*, and lines
    only ever leave a set at an explicitly processed event (miss-path
    eviction, assist-swap eviction, virtual-line invalidation, or a
    bounce-back displacing an occupant).  Pure hits never evict.  So a
    reference is a provable hit whenever an earlier occurrence of its
    line exists in the chunk, or its line is resident in the carried
    state — no LRU stack-distance reasoning required.  The candidate
    events are exactly the first occurrences of lines absent from the
    carried main state; whenever a live event removes a line from main,
    its next chunk occurrence is scheduled as a dynamic event and
    re-checked live (a bounce-back may have reinstalled it — the live
    membership check self-heals, as in the direct-mapped walker).

    MRU order and per-entry dirty/temporal bits are synchronised lazily:
    per set, ``last_sync`` remembers the last event position, and at the
    next event each resident entry binary-searches its line's occurrence
    slice for the hits in between — their last position gives the
    move-to-front order, their write/temporal prefix-sum deltas the bit
    ORs.  Residency cannot change inside a sync window (that would take
    an event on the set, which would have synced it), so the per-entry
    lookup is complete and exact.
    """

    def __init__(self, model) -> None:
        super().__init__(model)
        self.ways = model._ways
        self.temporal_priority = model._temporal_priority
        self.sets_state: List[List[List]] = [
            [] for _ in range(self.n_sets)
        ]

    def _victim_index(self, entries) -> int:
        if self.temporal_priority:
            for k in range(len(entries) - 1, -1, -1):
                if not entries[k][2]:
                    return k
        return len(entries) - 1

    # -- lazy per-set sync and dynamic scheduling ----------------------
    def _sync_set(self, s: int, i: int) -> None:
        """Apply MRU moves and dirty/temporal bits of set ``s``'s pure
        hits before global position ``i``."""
        ls = self._last_sync[s]
        if ls >= i:
            return
        entries = self.sets_state[s]
        if entries:
            occ = self._occ
            slices = self._line_slice
            pw2 = self._pw2
            pt2 = self._pt2
            touched = None
            for entry in entries:
                span = slices.get(entry[0])
                if span is None:
                    continue
                lo, hi = span
                j1 = bisect_right(occ, ls, lo, hi)
                if j1 >= hi or occ[j1] >= i:
                    continue
                j2 = bisect_left(occ, i, j1, hi)
                if pw2[j2] > pw2[j1]:
                    entry[1] = True
                if pt2[j2] > pt2[j1]:
                    entry[2] = True
                if touched is None:
                    touched = []
                touched.append((occ[j2 - 1], entry))
            if touched is not None:
                # Each hit moves its entry to MRU, so the final order is
                # touched entries by last hit (most recent first), then
                # the untouched ones in their previous relative order.
                touched.sort(key=lambda item: item[0], reverse=True)
                hot = [entry for _, entry in touched]
                if len(hot) < len(entries):
                    hot_ids = {id(entry) for entry in hot}
                    hot.extend(
                        entry for entry in entries
                        if id(entry) not in hot_ids
                    )
                entries[:] = hot
        self._last_sync[s] = i

    def _on_removed(self, line: int, i: int) -> None:
        """``line`` left the main cache at event position ``i``: its
        next predicted occurrence can no longer be assumed a hit, so
        re-evaluate it live."""
        span = self._line_slice.get(line)
        if span is None:
            return
        lo, hi = span
        q_idx = bisect_right(self._occ, i, lo, hi)
        if q_idx < hi:
            q = self._occ[q_idx]
            if not self._scheduled[q]:
                self._scheduled[q] = True
                heapq.heappush(self._dyn, q)

    # -- bounce-back machinery (mirrors the reference model) -----------
    def _bounce_evicted(self, entry, start, blocked) -> int:
        if not (self.use_temporal and entry[2]):
            return self._discard(entry[1], start)
        target = entry[0] % self.n_sets
        if target in blocked:
            self.bounce_aborts += 1
            return self._discard(entry[1], start)
        self._sync_set(target, self._pos)
        entries = self.sets_state[target]
        stall = 0
        if len(entries) >= self.ways:
            occupant_index = self._victim_index(entries)
            occupant = entries[occupant_index]
            if occupant[1] and self.wb.is_full(start):
                self.bounce_aborts += 1
                return self._discard(entry[1], start)
            del entries[occupant_index]
            self._on_removed(occupant[0], self._pos)
            stall = self._discard(occupant[1], start)
        entries.insert(
            0, [entry[0], entry[1], entry[2] and not self.reset_on_bounce]
        )
        self.bounce_backs += 1
        return stall

    def _victim_to_bb(self, victim, start, blocked) -> int:
        if not self.use_bb:
            return self._discard(victim[1], start)
        if not self.admit_non_temporal and not victim[2]:
            return self._discard(victim[1], start)
        evicted = self.bb.insert(
            [victim[0], victim[1], victim[2], False, 0]
        )
        if evicted is None:
            return 0
        return self._bounce_evicted(evicted, start, blocked)

    # -- the chunk driver ----------------------------------------------
    def run_chunk(self, chunk, want_probes: bool):
        n = len(chunk)
        n_sets = self.n_sets
        H = self.H
        data = _assoc_chunk_arrays(chunk, self.line_shift, H)
        la_l, occ, line_slice, pw2, pt2, mg, wp = data
        _, w_col, t_col, sp_col, g_col = chunk.columns_list()
        sets_state = self.sets_state

        # Candidates: first occurrences of lines not resident in the
        # carried main state (a line in the carried bounce-back buffer
        # is never also in main, so those firsts are candidates too and
        # resolve to assist hits live).
        resident = set()
        for entries in sets_state:
            for entry in entries:
                resident.add(entry[0])
        scheduled = bytearray(n)
        cand: List[int] = []
        for line, (lo, _hi) in line_slice.items():
            if line not in resident:
                p0 = occ[lo]
                cand.append(p0)
                scheduled[p0] = True
        cand.sort()

        # Shared with the helper methods (sync / schedule / bounce).
        self._occ = occ
        self._line_slice = line_slice
        self._pw2 = pw2
        self._pt2 = pt2
        self._mg = mg
        self._wp = wp
        self._scheduled = scheduled
        dyn: List[int] = []
        self._dyn = dyn
        last_sync = [-1] * n_sets
        self._last_sync = last_sync

        # Telemetry capture (chunk-local).
        lock0, fresh0 = self.lock, self.fresh
        cycles0 = self.cycles
        ev_pos: List[int] = []
        ev_cyc: List[int] = []
        ev_kind: List[int] = []  # 0 = hit, 1 = assist, 2 = miss
        ev_words: List[int] = []
        ev_stall: List[int] = []

        bb_lookup = self.bb.lookup_remove
        bb_find = self.bb.find
        use_bb = self.use_bb
        vl = self.vl
        A = self.A
        SL = self.SL
        ways = self.ways
        heappop = heapq.heappop
        base = self.base
        lock = self.lock
        fresh = self.fresh
        cycles = 0
        hits_main = 0
        lf = self.last_fetch
        prev_k = -1  # chunk-local position of the last processed event
        ci = 0
        ncand = len(cand)
        while ci < ncand or dyn:
            if dyn and (ci >= ncand or dyn[0] < cand[ci]):
                i = heappop(dyn)
            else:
                i = cand[ci]
                ci += 1

            # Fold the intermediate hits in (prev_k, i) — the closed-form
            # timing recurrence — and compute the event's (start, wait).
            n_inter = i - prev_k - 1
            if n_inter == 0:
                g = g_col[i]
                if fresh:
                    fresh = False
                    start = g
                    wait = 0
                else:
                    wait = lock + H - g
                    if wait < 0:
                        wait = 0
                    gh = g - H
                    start = base + (gh if gh > lock else lock)
            else:
                g1 = g_col[prev_k + 1]
                if fresh:
                    fresh = False
                    wait_sum = wp[i] - wp[prev_k + 2]
                    start = g1 + (mg[i + 1] - mg[prev_k + 2])
                else:
                    w1 = lock + H - g1
                    if w1 < 0:
                        w1 = 0
                    gh = g1 - H
                    wait_sum = w1 + (wp[i] - wp[prev_k + 2])
                    start = (
                        base + (gh if gh > lock else lock)
                        + (mg[i + 1] - mg[prev_k + 2])
                    )
                cycles += wait_sum + n_inter * H
                hits_main += n_inter
                lf = []
                wait = H - g_col[i]
                if wait < 0:
                    wait = 0
            prev_k = i

            self._pos = i
            la = la_l[i]
            w = w_col[i]
            t = t_col[i]
            s0 = la % n_sets
            self._sync_set(s0, i)
            entries = sets_state[s0]

            hit = False
            for position, entry in enumerate(entries):
                if entry[0] == la:
                    # Live hit at a scheduled position (a bounce-back
                    # reinstalled the line): a plain main-cache hit.
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if w:
                        entry[1] = True
                    if t:
                        entry[2] = True
                    hit = True
                    break
            if hit:
                hits_main += 1
                lf = []
                cycles += wait + H
                base = start + H
                lock = 0
                if want_probes:
                    ev_pos.append(i)
                    ev_cyc.append(wait + H)
                    ev_kind.append(0)
                    ev_words.append(0)
                    ev_stall.append(0)
                continue

            found = bb_lookup(la) if use_bb else None
            if found is not None:
                # Bounce-back hit: swap with a victim of the full set.
                self.hits_assist += 1
                self.swaps += 1
                if w:
                    found[1] = True
                if t:
                    found[2] = True
                stall = 0
                if len(entries) >= ways:
                    victim = entries.pop(self._victim_index(entries))
                    self._on_removed(victim[0], i)
                    evicted = self.bb.insert(
                        [victim[0], victim[1], victim[2], False, 0]
                    )
                    if evicted is not None:
                        stall = self._bounce_evicted(
                            evicted, start, (s0,)
                        )
                entries.insert(0, [la, found[1], found[2]])
                lf = []
                e = stall + A
                cycles += wait + e
                base = start + e
                lock = SL
                if want_probes:
                    ev_pos.append(i)
                    ev_cyc.append(wait + e)
                    ev_kind.append(1)
                    ev_words.append(0)
                    ev_stall.append(stall)
                continue

            self.misses += 1
            if sp_col[i] and vl > 1:
                vbase = la - la % vl
                to_fetch = []
                for line in range(vbase, vbase + vl):
                    if line == la:
                        to_fetch.append(line)
                        continue
                    # Membership is event-only state — pending pure hits
                    # never change it — so no sync is needed to probe it.
                    line_set = sets_state[line % n_sets]
                    if any(e_[0] == line for e_ in line_set):
                        continue
                    to_fetch.append(line)
            else:
                to_fetch = [la]
            nf = len(to_fetch)
            penalty = self.latency + nf * self.transfer
            self.bus_free_at = start + penalty
            self.lines_fetched += nf
            self.words_fetched += nf * self.wpl
            lf = list(to_fetch)
            words = nf * self.wpl
            blocked = {line % n_sets for line in to_fetch}
            stall = 0
            for line in to_fetch:
                li = line % n_sets
                self._sync_set(li, i)
                line_set = sets_state[li]
                if use_bb and bb_find(line) is not None:
                    # The buffer's copy is the live one: the fetched
                    # slot is tagged invalid, costing the would-be
                    # victim its place.
                    self.invalidations += 1
                    if len(line_set) >= ways:
                        victim = line_set.pop(self._victim_index(line_set))
                        self._on_removed(victim[0], i)
                        stall += self._victim_to_bb(victim, start, blocked)
                    continue
                victim = None
                if len(line_set) >= ways:
                    victim = line_set.pop(self._victim_index(line_set))
                    self._on_removed(victim[0], i)
                line_set.insert(
                    0, [line, w and line == la, t and line == la]
                )
                if victim is not None:
                    stall += self._victim_to_bb(victim, start, blocked)
            e = stall + penalty
            cycles += wait + e
            base = start + e
            lock = 0
            if want_probes:
                ev_pos.append(i)
                ev_cyc.append(wait + e)
                ev_kind.append(2)
                ev_words.append(words)
                ev_stall.append(stall)

        # Flush pending syncs: MRU order and dirty/temporal bits of the
        # trailing pure hits must survive into the next chunk and the
        # final materialised state.
        self.base = base
        self.lock = lock
        self.fresh = fresh
        for s in range(n_sets):
            if sets_state[s] and last_sync[s] < n:
                self._sync_set(s, n)

        self.cycles += cycles
        self.hits_main += hits_main
        self.last_fetch = lf
        self._finish_chunk(prev_k, n, g_col)
        self.refs += n

        if not want_probes:
            return None
        return self._telemetry(
            n, chunk.gaps, lock0, fresh0, self.cycles - cycles0,
            ev_pos, ev_cyc, ev_kind, ev_words, ev_stall,
        )

    def finalise(self) -> SimResult:
        stats = self._finalise_common()
        self.model._sets = self.sets_state
        return stats
