"""Simulation results and derived metrics.

The paper's headline metric is AMAT (Average Memory Access Time) — the
source-level tracing destroys global execution time, so CPI cannot be
used (section 3.1).  The other reported metrics are the miss ratio
(figure 7b), memory traffic in words fetched per reference (figure 7a)
and the repartition of hits between main and bounce-back cache
(figure 6b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import EngineRefusal


@dataclass
class SimResult:
    """Counter record produced by one (cache, trace) simulation."""

    cache: str = ""
    trace: str = ""
    #: Which engine produced this record ("reference" or "fast").  The
    #: two engines are counter-identical by construction, so the field
    #: is excluded from equality; it exists for observability and for
    #: the result-cache fingerprint (fast/reference cells never alias).
    engine: str = field(default="", compare=False)
    #: When ``engine=auto`` passed over a higher tier — the reference
    #: loop ran instead of fast, or the fast tier served because the
    #: native one refused (``native-assisted`` / ``native-unavailable``)
    #: — the structured :class:`~repro.sim.engine.EngineRefusal`
    #: (stable ``.code`` + human message) explaining why; ``None`` when
    #: the top tier ran or the caller pinned the engine.
    #: Observability only — excluded from equality like ``engine``.
    engine_refusal: Optional["EngineRefusal"] = field(
        default=None, compare=False
    )
    refs: int = 0
    cycles: int = 0
    hits_main: int = 0
    hits_assist: int = 0
    misses: int = 0
    lines_fetched: int = 0
    words_fetched: int = 0
    writebacks: int = 0
    bounce_backs: int = 0
    bounce_aborts: int = 0
    swaps: int = 0
    invalidations: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    write_buffer_stalls: int = 0

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    @property
    def amat(self) -> float:
        """Average memory access time in cycles (figures 3, 6a, 8-12)."""
        return self.cycles / self.refs if self.refs else 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses per reference (figure 7b)."""
        return self.misses / self.refs if self.refs else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio

    @property
    def traffic(self) -> float:
        """Words fetched from memory per reference (figure 7a)."""
        return self.words_fetched / self.refs if self.refs else 0.0

    @property
    def line_utilization(self) -> float:
        """References served per word fetched from memory.

        The counter-level proxy for the paper's line-utilization notion:
        how much work each fetched word did.  ``1 / traffic``; 0.0 when
        nothing was fetched.  The analytic oracle
        (:mod:`repro.metrics.analytic`) predicts it in closed form on
        synthetic distributions.
        """
        return self.refs / self.words_fetched if self.words_fetched else 0.0

    @property
    def main_hit_fraction(self) -> float:
        """Fraction of all hits served by the main cache (figure 6b)."""
        hits = self.hits_main + self.hits_assist
        return self.hits_main / hits if hits else 0.0

    @property
    def assist_hit_fraction(self) -> float:
        """Fraction of all hits served by the bounce-back cache."""
        hits = self.hits_main + self.hits_assist
        return self.hits_assist / hits if hits else 0.0

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def misses_removed_vs(self, baseline: "SimResult") -> float:
        """Percent of the baseline's misses this configuration removed
        (figure 9a's metric)."""
        if baseline.misses == 0:
            return 0.0
        return 100.0 * (baseline.misses - self.misses) / baseline.misses

    def amat_gain_vs(self, baseline: "SimResult") -> float:
        """Absolute AMAT reduction relative to a baseline (figure 10b)."""
        return baseline.amat - self.amat

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (counters + derived), for tables and tests."""
        out: Dict[str, float] = {
            k: getattr(self, k)
            for k in (
                "refs", "cycles", "hits_main", "hits_assist", "misses",
                "lines_fetched", "words_fetched", "writebacks",
                "bounce_backs", "bounce_aborts", "swaps", "invalidations",
                "prefetches_issued", "prefetch_hits", "write_buffer_stalls",
            )
        }
        out.update(
            amat=self.amat,
            miss_ratio=self.miss_ratio,
            traffic=self.traffic,
            main_hit_fraction=self.main_hit_fraction,
        )
        return out

    def check(self) -> None:
        """Internal consistency; raises AssertionError on violation."""
        assert self.refs == self.hits_main + self.hits_assist + self.misses, (
            "hits + misses must equal references"
        )
        assert self.words_fetched >= self.lines_fetched, (
            "a fetched line is at least one word"
        )
        assert self.cycles >= self.refs, "every access costs at least a cycle"

    def __str__(self) -> str:
        return (
            f"{self.cache} on {self.trace}: AMAT={self.amat:.3f} "
            f"miss={self.miss_ratio:.4f} traffic={self.traffic:.3f} w/ref"
        )
