"""Cache bypassing baselines (paper figure 3a).

Bypassing is the "natural" way to avoid cache pollution: references
without temporal locality are simply not cached.  The paper shows its
major flaw — spatial locality of non-reusable data cannot be exploited,
so stride-one streams pay a full memory round-trip per *word* — and
evaluates a softened variant where bypassed fetches go through a small
buffer (i860-style), recovering the spatial locality of the stream
without polluting the cache.

Two models:

* :class:`BypassCache` — non-temporal references that miss are serviced
  with a single-word memory fetch and are never allocated.
* the same class with ``buffer_lines > 0`` — bypassed misses load a full
  line into a small fully-associative bypass buffer instead; subsequent
  references to the line hit the buffer at main-cache speed.
"""

from __future__ import annotations

from typing import List

from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer


class BypassCache:
    """Direct-mapped/set-associative cache with software-directed bypassing.

    Temporal-tagged references use the cache normally (allocate on miss).
    Non-temporal references still *probe* the cache — data cached by
    temporal references stays visible — but on a miss they bypass: either
    a 1-word fetch (``buffer_lines == 0``) or a line fetch into the
    bypass buffer.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        timing: MemoryTiming = MemoryTiming(),
        buffer_lines: int = 0,
        name: str = "",
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.buffer_lines = buffer_lines
        kind = "bypass-buffer" if buffer_lines else "bypass"
        self.name = name or f"{kind} {geometry}"
        self._sets: List[List[List]] = [[] for _ in range(geometry.n_sets)]
        self._buffer: List[List] = []  # MRU-first [line_address, dirty]
        self.write_buffer = WriteBuffer(
            timing.write_buffer_entries,
            timing.transfer_cycles(geometry.line_size),
        )
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0
        self._line_shift = geometry.line_shift
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._penalty = timing.miss_penalty(1, geometry.line_size)
        self._word_penalty = timing.word_fetch_penalty()
        self._words_per_line = geometry.line_size // 8
        self._hit_time = timing.hit_time

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self._buffer = []
        self.write_buffer.reset()
        self.stats = SimResult(cache=self.name)
        self._ready_at = 0

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        stats = self.stats
        stats.refs += 1
        wait = self._ready_at - now
        if wait < 0:
            wait = 0
        start = now + wait

        la = address >> self._line_shift
        entries = self._sets[la % self._n_sets]
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                if is_write:
                    entry[1] = True
                stats.hits_main += 1
                self._ready_at = start + self._hit_time
                return wait + self._hit_time

        # Check the bypass buffer (same access time as the cache: it is a
        # handful of registers next to the load/store unit).
        if self.buffer_lines:
            for i, entry in enumerate(self._buffer):
                if entry[0] == la:
                    if i:
                        del self._buffer[i]
                        self._buffer.insert(0, entry)
                    if is_write:
                        entry[1] = True
                    stats.hits_assist += 1
                    self._ready_at = start + self._hit_time
                    return wait + self._hit_time

        stats.misses += 1
        if temporal:
            # Reusable data: normal allocation in the cache.
            stall = 0
            if len(entries) >= self._ways:
                victim = entries.pop()
                if victim[1]:
                    stats.writebacks += 1
                    stall = self.write_buffer.push(start)
                    stats.write_buffer_stalls += stall
            entries.insert(0, [la, is_write])
            stats.lines_fetched += 1
            stats.words_fetched += self._words_per_line
            cycles = wait + stall + self._penalty
            self._ready_at = start + stall + self._penalty
            return cycles

        if self.buffer_lines:
            # Bypass through the buffer: fetch the line, keep it out of
            # the cache.
            stall = 0
            if len(self._buffer) >= self.buffer_lines:
                victim = self._buffer.pop()
                if victim[1]:
                    stats.writebacks += 1
                    stall = self.write_buffer.push(start)
                    stats.write_buffer_stalls += stall
            self._buffer.insert(0, [la, is_write])
            stats.lines_fetched += 1
            stats.words_fetched += self._words_per_line
            cycles = wait + stall + self._penalty
            self._ready_at = start + stall + self._penalty
            return cycles

        # Pure bypassing: fetch just the referenced word, cache nothing.
        stats.words_fetched += 1
        if is_write:
            # The store goes to memory through the write buffer.
            stats.writebacks += 1
            stall = self.write_buffer.push(start)
            stats.write_buffer_stalls += stall
            cycles = wait + stall + self._hit_time
            self._ready_at = start + stall + self._hit_time
            return cycles
        cycles = wait + self._word_penalty
        self._ready_at = start + self._word_penalty
        return cycles
