"""Engine selection: the three-tier simulation engine's front door.

Every simulation names an *engine*:

``reference``
    The per-reference Python loop (:mod:`repro.sim.driver` walking
    ``model.access``).  Always available, defines the semantics.
``fast``
    The batch kernels of :mod:`repro.sim.fast`.  Exact — counter- and
    state-identical to the reference engine — but only for
    configurations whose equivalence is *provable* from the config
    alone: write-back LRU caches, including the paper's full
    software-assisted family (bounce-back cache, virtual lines,
    temporal bits), but not prefetching, warm-up windows or warm
    starts.
``native``
    The compiled C kernels of :mod:`repro.sim.native`: the fast tier's
    plain write-back LRU subset (no assist structures) fused into one
    serial loop, built on demand with the system C compiler and loaded
    via ctypes.  Strictly above ``fast`` in the ladder, and
    additionally conditional on a toolchain or prebuilt library being
    present (the stable ``native-unavailable`` refusal when not).
``auto`` (the default)
    Walks the ladder top-down: ``native`` when
    :func:`native_refusal` proves equivalence and the library loads,
    else ``fast`` when the model proves equivalent, else silently
    falls back to ``reference``.  The selection is recorded in
    ``SimResult.engine``.

Models opt in by implementing ``fast_engine_refusal() ->
Optional[EngineRefusal]`` — returning ``None`` when the batch kernels
apply, or an :class:`EngineRefusal` carrying a stable machine-readable
``code`` plus a human-readable message.  The check is *conservative by
construction*: any model without the hook, and any configuration the
hook cannot vouch for, runs on the reference engine.

``REPRO_ENGINE`` sets the default engine when the caller passes none
(mirrors ``REPRO_JOBS``); :func:`cross_validate` runs every applicable
engine on fresh models and asserts every counter matches.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

from ..errors import ConfigError, ReproError
from .result import SimResult

#: Valid values of the engine knob.
ENGINES = ("auto", "reference", "fast", "native")

#: SimResult counter fields compared by cross-validation (everything
#: except the engine tag and the trace/cache labels).
PARITY_FIELDS = (
    "refs", "cycles", "hits_main", "hits_assist", "misses",
    "lines_fetched", "words_fetched", "writebacks", "bounce_backs",
    "bounce_aborts", "swaps", "invalidations", "prefetches_issued",
    "prefetch_hits", "write_buffer_stalls",
)


class EngineMismatchError(ReproError):
    """Cross-validation found fast/reference counters disagreeing."""

    code = "engine-mismatch"


class EngineRefusal(str):
    """Why the fast engine cannot run a simulation.

    A ``str`` subclass: legacy call sites that format or match the
    refusal as free text keep working, while programmatic consumers
    (the bench refusal matrix, ``--explain-engine``, tests) key on the
    stable :attr:`code` instead of string matching.  The string value
    is the human-readable message.
    """

    __slots__ = ("code",)

    #: Stable machine-readable refusal codes.
    CODES = (
        "warm-start",         # continuation from warm cache state
        "warmup-window",      # warm-up prefix discards counters
        "no-batch-kernel",    # model type has no fast path at all
        "prefetch",           # prefetch modes couple bus timing
        "degenerate-timing",  # miss penalty below the pipelined hit
        "write-policy",       # non-write-back standard cache
        "two-level-hierarchy",  # L2 replays L1 fetches per reference
        # Native tier only: configs the fast engine accepts but the
        # compiled kernels do not cover, or no toolchain/library.
        "native-assisted",    # assisted walkers stay in Python
        "native-unavailable",  # no C compiler and no prebuilt library
        # Pipelined streaming only (stream/pipeline.py): configs the
        # fast engine accepts but whose kernels have no carry-free half
        # to ship to workers.
        "pipeline-assisted",  # assisted walker is event-sequential
    )

    def __new__(cls, code: str, message: str) -> "EngineRefusal":
        if code not in cls.CODES:
            raise ValueError(f"unknown refusal code {code!r}")
        obj = str.__new__(cls, message)
        obj.code = code
        return obj

    @property
    def message(self) -> str:
        return str(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineRefusal({self.code!r}, {str(self)!r})"

    def __reduce__(self):
        # str.__reduce_ex__ cannot rebuild a subclass whose __new__
        # takes two arguments; sweeps pickle results across processes.
        return (EngineRefusal, (self.code, str(self)))


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the engine knob: explicit argument > ``REPRO_ENGINE`` >
    ``auto``; validates the value."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "auto"
    engine = engine.strip().lower()
    if engine not in ENGINES:
        raise ConfigError(f"engine {engine!r} not in {ENGINES}")
    return engine


def fast_refusal(
    model, reset: bool = True, warmup_refs: int = 0
) -> Optional[EngineRefusal]:
    """Why the fast engine cannot run this simulation (None = it can).

    Run-shape conditions (cold start, no warm-up) are checked here; the
    model vouches for its own configuration through its
    ``fast_engine_refusal`` hook.
    """
    if not reset:
        return EngineRefusal(
            "warm-start", "continuation from warm cache state"
        )
    if warmup_refs:
        return EngineRefusal(
            "warmup-window", "warm-up window discards a counter prefix"
        )
    hook = getattr(model, "fast_engine_refusal", None)
    if hook is None:
        return EngineRefusal(
            "no-batch-kernel", f"{type(model).__name__} has no batch kernel"
        )
    return hook()


def native_refusal(
    model, reset: bool = True, warmup_refs: int = 0
) -> Optional[EngineRefusal]:
    """Why the native tier cannot run this simulation (None = it can).

    Strictly stricter than :func:`fast_refusal`: any fast-engine
    refusal applies verbatim; on top of it the compiled kernels cover
    only the plain write-back LRU loops (the assisted family stays on
    the Python event-driven walkers), and a C toolchain or a prebuilt
    library must actually be present (``native-unavailable`` carries
    the compiler diagnostic).
    """
    reason = fast_refusal(model, reset=reset, warmup_refs=warmup_refs)
    if reason is not None:
        return reason
    from .fast_soft import is_assisted

    if is_assisted(model):
        return EngineRefusal(
            "native-assisted",
            "assisted configurations run the event-driven Python "
            "walkers, which have no compiled kernel",
        )
    from .native import availability

    diagnostic = availability()
    if diagnostic is not None:
        return EngineRefusal(
            "native-unavailable", f"no compiled kernel: {diagnostic}"
        )
    return None


def select_engine(
    engine: Optional[str],
    model,
    reset: bool = True,
    warmup_refs: int = 0,
) -> Tuple[str, Optional[EngineRefusal]]:
    """Resolve the knob against a concrete simulation.

    Returns ``(chosen, refusal)`` where ``chosen`` is ``"native"``,
    ``"fast"`` or ``"reference"``; ``refusal`` explains why a higher
    tier was passed over (None when the top tier runs).
    ``engine="fast"`` / ``engine="native"`` raise
    :class:`~repro.errors.ConfigError` when equivalence cannot be
    proved (for native, the message carries the compiler diagnostic),
    rather than silently running a different simulation.
    """
    engine = resolve_engine(engine)
    if engine == "reference":
        return "reference", None
    if engine == "native":
        reason = native_refusal(model, reset=reset, warmup_refs=warmup_refs)
        if reason is not None:
            raise ConfigError(
                f"engine='native' cannot run {model.name!r} "
                f"[{reason.code}]: {reason}"
            )
        return "native", None
    if engine == "fast":
        reason = fast_refusal(model, reset=reset, warmup_refs=warmup_refs)
        if reason is not None:
            raise ConfigError(
                f"engine='fast' is not equivalent for {model.name!r}: "
                f"{reason}"
            )
        return "fast", None
    # auto: walk the ladder top-down.  native_refusal layers on
    # fast_refusal, so a native-only refusal means the fast tier runs.
    reason = native_refusal(model, reset=reset, warmup_refs=warmup_refs)
    if reason is None:
        return "native", None
    if reason.code in ("native-assisted", "native-unavailable"):
        return "fast", reason
    return "reference", reason


def cross_validate(
    build: Callable[[], object],
    trace=None,
    engine_result: str = "reference",
    oracle=None,
    tol: float = 1.0,
) -> SimResult:
    """Run every applicable engine on fresh models and assert identical
    counters.

    ``build`` constructs a fresh model (a ``CacheSpec.build`` bound
    method, a preset factory...).  Always runs the reference and fast
    tiers; when :func:`native_refusal` clears the configuration the
    native tier joins as a third leg, so one call checks the whole
    ladder.  Returns the result of ``engine_result``.  Raises
    :class:`EngineMismatchError` listing every differing counter per
    engine, or :class:`~repro.errors.ConfigError` when the
    configuration has no fast path to validate against.

    ``oracle`` adds the analytic leg: pass a
    :class:`~repro.metrics.analytic.AccessDistribution` and the
    reference result is additionally checked against its closed-form
    bounds via :func:`~repro.metrics.analytic.oracle_check` (``tol``
    scales the statistical intervals), so the whole engine family is
    validated against a model that never simulates.  ``trace`` may then
    be omitted — the oracle's generated trace is used.
    """
    from .driver import simulate

    if trace is None:
        if oracle is None:
            raise ConfigError(
                "cross_validate needs a trace or an oracle distribution"
            )
        trace = oracle.trace()
    reference = simulate(build(), trace, engine="reference")
    others = {"fast": simulate(build(), trace, engine="fast")}
    if native_refusal(build()) is None:
        others["native"] = simulate(build(), trace, engine="native")
    mismatches = [
        f"{name}: reference={getattr(reference, name)} "
        f"{engine}={getattr(result, name)}"
        for engine, result in others.items()
        for name in PARITY_FIELDS
        if getattr(reference, name) != getattr(result, name)
    ]
    if mismatches:
        raise EngineMismatchError(
            f"engines disagree on {reference.cache!r} x {trace.name!r}: "
            + "; ".join(mismatches)
        )
    if oracle is not None:
        from ..metrics.analytic import oracle_check

        oracle_check(build(), oracle, reference, tol=tol)
    return others.get(engine_result, reference)


def cross_validate_stream(
    build: Callable[[], object], stream, engine: Optional[str] = None
) -> SimResult:
    """Assert chunked streaming matches the monolithic path exactly.

    Runs ``stream`` chunk-wise through :func:`~repro.sim.driver
    .simulate_stream` and its materialised trace through
    :func:`~repro.sim.driver.simulate`, on fresh models from ``build``,
    and compares every counter.  This is the orthogonal axis to
    :func:`cross_validate`: same engine, different trace delivery.
    Returns the streamed result; raises :class:`EngineMismatchError` on
    any difference.
    """
    from .driver import simulate, simulate_stream

    streamed = simulate_stream(build(), stream, engine=engine)
    monolithic = simulate(build(), stream.load(), engine=engine)
    mismatches = [
        f"{name}: monolithic={getattr(monolithic, name)} "
        f"streamed={getattr(streamed, name)}"
        for name in PARITY_FIELDS
        if getattr(monolithic, name) != getattr(streamed, name)
    ]
    if mismatches:
        raise EngineMismatchError(
            f"chunked streaming disagrees with the monolithic path on "
            f"{streamed.cache!r} x {stream.name!r}: " + "; ".join(mismatches)
        )
    return streamed
