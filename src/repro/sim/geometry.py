"""Cache geometry: sizes, lines, sets and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    Parameters
    ----------
    size_bytes
        Total capacity.
    line_size
        Physical line size in bytes (the paper keeps this small, 32 B,
        and exploits spatial locality with *virtual* lines instead).
    ways
        Associativity; 1 for direct-mapped.
    """

    size_bytes: int
    line_size: int
    ways: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_size):
            raise ConfigError(f"line size must be a power of two: {self.line_size}")
        if not _is_pow2(self.size_bytes):
            raise ConfigError(f"cache size must be a power of two: {self.size_bytes}")
        if self.ways < 1:
            raise ConfigError(f"associativity must be >= 1: {self.ways}")
        if self.size_bytes % (self.line_size * self.ways) != 0:
            raise ConfigError(
                f"cache of {self.size_bytes} B cannot hold an integral number "
                f"of {self.ways}-way sets of {self.line_size} B lines"
            )
        if self.n_sets < 1:
            raise ConfigError("cache must have at least one set")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.ways)

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    def line_address(self, address: int) -> int:
        """The line-granular address (byte address / line size)."""
        return address >> self.line_shift

    def set_index(self, line_address: int) -> int:
        """Set an (already line-granular) address maps to."""
        return line_address % self.n_sets

    def set_of(self, address: int) -> int:
        """Set a byte address maps to."""
        return self.set_index(self.line_address(address))

    def __str__(self) -> str:
        kind = "direct-mapped" if self.ways == 1 else f"{self.ways}-way"
        return f"{self.size_bytes // 1024}KB/{self.line_size}B {kind}"
