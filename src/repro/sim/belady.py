"""Belady (MIN/OPT) replacement — an offline upper bound.

The paper measures its mechanisms against LRU baselines; a natural
question it leaves open is how much headroom remains.  Belady's optimal
policy evicts the line whose next use is farthest in the future, which
no online policy can beat for a given geometry.  Because it needs the
future, the model is built from the whole trace up front
(:func:`simulate_belady`), not driven reference by reference.

Timing uses the same rules as :class:`~repro.sim.standard.StandardCache`
(1-cycle hits, ``t_lat + LS/w_b`` misses, write-back through the write
buffer), so AMAT values are directly comparable.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..errors import SimulationError
from ..memtrace.trace import Trace
from .geometry import CacheGeometry
from .result import SimResult
from .timing import MemoryTiming
from .write_buffer import WriteBuffer

#: Sentinel "never used again" distance.
INFINITE = 1 << 60


def _next_use_chains(line_addresses: List[int]) -> List[int]:
    """For each position, the index of the next access to the same line
    (or INFINITE)."""
    n = len(line_addresses)
    next_use = [INFINITE] * n
    last_seen: Dict[int, int] = {}
    for position in range(n - 1, -1, -1):
        la = line_addresses[position]
        next_use[position] = last_seen.get(la, INFINITE)
        last_seen[la] = position
    return next_use


def simulate_belady(
    trace: Trace,
    geometry: CacheGeometry,
    timing: MemoryTiming = MemoryTiming(),
) -> SimResult:
    """Run a trace under per-set Belady-optimal replacement.

    Returns a :class:`SimResult` comparable to the LRU baselines.  Note
    OPT is defined on *replacement* only: fetch policy, line size and
    associativity stay as configured.
    """
    stats = SimResult(cache=f"belady {geometry}", trace=trace.name)
    addresses, is_write, _, _, gaps = trace.columns()
    shift = geometry.line_shift
    n_sets = geometry.n_sets
    ways = geometry.ways
    penalty = timing.miss_penalty(1, geometry.line_size)
    words_per_line = geometry.line_size // 8
    hit_time = timing.hit_time
    write_buffer = WriteBuffer(
        timing.write_buffer_entries,
        timing.transfer_cycles(geometry.line_size),
    )

    line_addresses = [a >> shift for a in addresses]
    next_use = _next_use_chains(line_addresses)

    # Per-set state: resident lines with their dirtiness, plus a lazy
    # max-heap of (-next_use_position, line) for victim selection.
    resident: List[Dict[int, bool]] = [dict() for _ in range(n_sets)]
    future: List[Dict[int, int]] = [dict() for _ in range(n_sets)]
    heaps: List[List] = [[] for _ in range(n_sets)]

    clock = 0
    total = 0
    ready_at = 0
    for position, (la, w, g) in enumerate(
        zip(line_addresses, is_write, gaps)
    ):
        clock += g
        wait = ready_at - clock
        if wait < 0:
            wait = 0
        start = clock + wait
        set_index = la % n_sets
        lines = resident[set_index]
        upcoming = next_use[position]

        if la in lines:
            stats.hits_main += 1
            if w:
                lines[la] = True
            future[set_index][la] = upcoming
            heapq.heappush(heaps[set_index], (-upcoming, la))
            cycles = wait + hit_time
            ready_at = start + hit_time
        else:
            stats.misses += 1
            stall = 0
            if len(lines) >= ways:
                heap = heaps[set_index]
                live = future[set_index]
                while True:
                    if not heap:  # pragma: no cover - invariant guard
                        raise SimulationError("belady heap out of sync")
                    negative, victim = heapq.heappop(heap)
                    if victim in lines and live.get(victim) == -negative:
                        break
                if lines.pop(victim):
                    stats.writebacks += 1
                    stall = write_buffer.push(start)
                    stats.write_buffer_stalls += stall
                live.pop(victim, None)
            lines[la] = bool(w)
            future[set_index][la] = upcoming
            heapq.heappush(heaps[set_index], (-upcoming, la))
            stats.lines_fetched += 1
            stats.words_fetched += words_per_line
            cycles = wait + stall + penalty
            ready_at = start + stall + penalty

        total += cycles
        extra = cycles - hit_time
        if extra > 0:
            clock += extra

    stats.refs = len(addresses)
    stats.cycles = total
    stats.check()
    return stats
