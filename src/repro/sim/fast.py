"""Vectorized simulation engine (the "fast" tier).

The reference engine walks the trace one reference at a time through a
Python loop.  This module computes the *same* counters — exactly, not
approximately — with batch kernels, for the configurations
:mod:`repro.sim.engine` can prove equivalent: write-back LRU caches with
no bounce-back cache, no virtual lines and no prefetching (the paper's
"Standard" configuration for both :class:`~repro.sim.standard
.StandardCache` and the software-assisted model).

Why exactness is possible
-------------------------
*Functional* behaviour of a direct-mapped LRU cache is a pure group-by:
a reference hits iff the previous reference to the same set touched the
same line, and a victim is dirty iff any store touched the evicted
line's residency run.  Both reduce to numpy primitives over the trace
sorted (stably) by set index.  Set-associative geometries fall back to
per-set short-stream loops: the same per-reference logic, but stripped
of all timing/stats work and run over precomputed per-set subsequences.

*Timing* decouples because for the supported models every access
satisfies ``ready_at == now + cycles`` and costs at least the pipelined
hit time ``H``.  The driver's clock rule then gives, for every reference
``i > 0``::

    wait_i  = max(0, H - gap_i)                      (history-free!)
    start_i = start_{i-1} + stall_{i-1}
              + (penalty - H if miss_{i-1} else 0) + max(gap_i, H)

so start times are a prefix sum perturbed only by write-buffer stalls —
and stalls occur only at dirty-victim evictions, which are replayed
through the real :class:`~repro.sim.write_buffer.WriteBuffer` in a loop
over *push events only* (a small fraction of the trace).

The kernel also materialises the model's final state (cache contents,
``stats``, write buffer, ``_ready_at``), so a fast run is substitutable
for a reference run even for callers that inspect the model afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..memtrace.trace import Trace
from .result import SimResult
from .write_buffer import WriteBuffer


class _Functional:
    """Output of the functional pass, in original trace order."""

    __slots__ = ("hits", "victim_dirty", "final_sets")

    def __init__(
        self,
        hits: np.ndarray,
        victim_dirty: np.ndarray,
        final_sets: List[Tuple[int, int, bool, bool]],
    ) -> None:
        self.hits = hits
        self.victim_dirty = victim_dirty
        #: (set index, line address, dirty, temporal) of every line
        #: resident at the end of the trace, MRU-first within a set.
        self.final_sets = final_sets


def _functional_direct_mapped(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
) -> _Functional:
    """Exact hit/victim analysis of a direct-mapped LRU cache.

    Stable-sorting by set index makes each set's reference subsequence
    contiguous; within it, consecutive equal line addresses form a
    *residency run* (a fill plus its hits — any other line address would
    have evicted the resident line).  Hits, victim dirtiness and final
    contents are all per-run aggregates.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    la_s = la[order]
    set_s = sets[order]
    w_s = is_write[order]

    same_set = np.zeros(n, dtype=bool)
    same_set[1:] = set_s[1:] == set_s[:-1]
    hit_s = np.zeros(n, dtype=bool)
    hit_s[1:] = same_set[1:] & (la_s[1:] == la_s[:-1])
    miss_s = ~hit_s

    # Runs never span sets: a set-group boundary always starts a miss.
    run_id = np.cumsum(miss_s) - 1
    n_runs = int(run_id[-1]) + 1
    run_dirty = np.bincount(run_id, weights=w_s, minlength=n_runs) > 0
    run_temporal = (
        np.bincount(run_id, weights=temporal[order], minlength=n_runs) > 0
    )

    # A miss that is not first-in-set evicts the previous run's line.
    victim_s = miss_s & same_set
    victim_dirty_s = np.zeros(n, dtype=bool)
    victim_dirty_s[victim_s] = run_dirty[run_id[victim_s] - 1]

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_s
    victim_dirty = np.empty(n, dtype=bool)
    victim_dirty[order] = victim_dirty_s

    # Final contents: the last run of each set group survives.
    group_last = np.nonzero(set_s[1:] != set_s[:-1])[0].tolist() + [n - 1]
    final_sets = [
        (
            int(set_s[j]),
            int(la_s[j]),
            bool(run_dirty[run_id[j]]),
            bool(run_temporal[run_id[j]]),
        )
        for j in group_last
    ]
    return _Functional(hits, victim_dirty, final_sets)


def _functional_set_associative(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    ways: int,
    temporal_priority: bool,
) -> _Functional:
    """Per-set short-stream fallback for ``ways > 1`` geometries.

    Functionally the reference LRU loop, but run per set over
    precomputed index streams with no stats/timing work per reference.
    ``temporal_priority`` selects the figure-9b victim rule (LRU among
    non-temporal lines) instead of plain LRU.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    set_s = sets[order]
    boundaries = np.nonzero(set_s[1:] != set_s[:-1])[0] + 1
    starts = [0] + boundaries.tolist()
    ends = boundaries.tolist() + [n]

    hits = np.zeros(n, dtype=bool)
    victim_dirty = np.zeros(n, dtype=bool)
    final_sets: List[Tuple[int, int, bool, bool]] = []

    la_list = la.tolist()
    w_list = is_write.tolist()
    t_list = temporal.tolist()
    order_list = order.tolist()

    for lo, hi in zip(starts, ends):
        entries: List[List] = []  # MRU-first [addr, dirty, temporal]
        for j in range(lo, hi):
            index = order_list[j]
            line = la_list[index]
            for position, entry in enumerate(entries):
                if entry[0] == line:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if w_list[index]:
                        entry[1] = True
                    if t_list[index]:
                        entry[2] = True
                    hits[index] = True
                    break
            else:
                if len(entries) >= ways:
                    victim_index = len(entries) - 1
                    if temporal_priority:
                        for k in range(len(entries) - 1, -1, -1):
                            if not entries[k][2]:
                                victim_index = k
                                break
                    victim = entries.pop(victim_index)
                    victim_dirty[index] = victim[1]
                entries.insert(0, [line, w_list[index], t_list[index]])
        set_index = int(set_s[lo])
        for entry in entries:
            final_sets.append(
                (set_index, entry[0], bool(entry[1]), bool(entry[2]))
            )
    return _Functional(hits, victim_dirty, final_sets)


class _Timing:
    """Output of the timing pass."""

    __slots__ = (
        "cycles", "stalls", "write_buffer", "ready_at", "bus_free_at"
    )

    def __init__(self, cycles, stalls, write_buffer, ready_at, bus_free_at):
        self.cycles = cycles
        self.stalls = stalls
        self.write_buffer = write_buffer
        self.ready_at = ready_at
        self.bus_free_at = bus_free_at


def _accumulate_timing(
    gaps: np.ndarray,
    hits: np.ndarray,
    victim_dirty: np.ndarray,
    hit_time: int,
    penalty: int,
    wb_entries: int,
    wb_drain: int,
    per_ref_stalls: Optional[np.ndarray] = None,
) -> _Timing:
    """Exact cycle/stall accounting over the miss mask.

    ``start`` times without stalls are a prefix sum (see module
    docstring); each write-buffer stall shifts every later start by the
    same amount, so the replay walks push events only, carrying the
    cumulative offset.  Two closed forms skip even that walk: pushes
    happen at starts of dirty-miss accesses, which are at least
    ``penalty`` cycles apart — so with ``penalty >= drain`` a buffered
    write buffer can never back up (every push finds it empty), and an
    unbuffered one (``entries == 0``) stalls exactly ``drain`` per push.

    ``per_ref_stalls`` (an int64 zeros array of trace length, telemetry
    only) receives each push's stall at its reference index — together
    with the history-free per-reference wait this reconstructs every
    access's exact cycle charge (see :func:`_per_ref_cycles`).
    """
    n = len(gaps)
    n_hits = int(hits.sum())
    n_misses = n - n_hits

    wait = hit_time - gaps
    np.clip(wait, 0, None, out=wait)
    wait[0] = 0

    delta = np.maximum(gaps, hit_time)
    delta[0] = gaps[0]
    delta[1:] += (penalty - hit_time) * (~hits[:-1])
    base_start = np.cumsum(delta)

    write_buffer = WriteBuffer(wb_entries, wb_drain)
    offset = 0
    last_push_index = -1
    last_push_stall = 0
    pushes = np.nonzero(victim_dirty)[0]
    if len(pushes) and wb_entries == 0:
        # Unbuffered: the processor eats the full drain on every push.
        n_pushes = len(pushes)
        offset = n_pushes * wb_drain
        last_push_index = int(pushes[-1])
        last_push_stall = wb_drain
        write_buffer.pushes = n_pushes
        write_buffer.stall_cycles = offset
        if per_ref_stalls is not None:
            per_ref_stalls[pushes] = wb_drain
    elif len(pushes) and penalty >= wb_drain:
        # Never backs up: zero stall per push, and at the last push the
        # buffer was found empty, so exactly one entry is left draining.
        last_push_index = int(pushes[-1])
        write_buffer.pushes = len(pushes)
        write_buffer._completions.append(
            int(base_start[last_push_index]) + wb_drain
        )
    else:
        for index in pushes.tolist():
            stall = write_buffer.push(int(base_start[index]) + offset)
            offset += stall
            last_push_index = index
            last_push_stall = stall
            if per_ref_stalls is not None:
                per_ref_stalls[index] = stall

    cycles = (
        int(wait.sum()) + offset
        + hit_time * n_hits + penalty * n_misses
    )

    ready_at = (
        int(base_start[-1]) + offset
        + (hit_time if hits[-1] else penalty)
    )
    # The memory bus finishes with the last miss's transfer; its start
    # excludes that access's own victim stall (the fetch is requested
    # before the victim drains).
    misses = np.nonzero(~hits)[0]
    if len(misses):
        last_miss = int(misses[-1])
        before = offset - (
            last_push_stall if last_push_index == last_miss else 0
        )
        bus_free_at = int(base_start[last_miss]) + before + penalty
    else:
        bus_free_at = 0
    return _Timing(cycles, offset, write_buffer, ready_at, bus_free_at)


def _per_ref_cycles(
    gaps: np.ndarray,
    hits: np.ndarray,
    stalls: np.ndarray,
    hit_time: int,
    penalty: int,
    first: bool,
) -> np.ndarray:
    """Exact per-reference cycle charges, reconstructed closed-form.

    For the supported models the reference engine charges every access
    ``wait + stall + service`` where ``wait = max(0, H - gap)`` (zero
    for the very first reference — see the module docstring's
    history-free derivation), ``stall`` is the access's own write-buffer
    push stall and ``service`` is ``H`` on a hit, the miss penalty
    otherwise.  Summing reproduces the timing pass's totals exactly,
    which the probed entry points assert.
    """
    wait = hit_time - gaps.astype(np.int64)
    np.clip(wait, 0, None, out=wait)
    if first and len(wait):
        wait[0] = 0
    service = np.where(hits, hit_time, penalty)
    return wait + stalls + service


def simulate_fast(model, trace: Trace, probes=None) -> SimResult:
    """Run ``trace`` through the batch kernels and return the result.

    ``model`` must have been accepted by
    :func:`repro.sim.engine.fast_refusal` — a write-back LRU cache with
    no assist structures.  The model is reset, its counters computed in
    batch, and its final state materialised as if the reference engine
    had run.  With ``probes``, per-reference outcomes are reconstructed
    exactly from the kernel outputs and emitted as one telemetry batch.

    Software-assisted models (bounce-back cache or virtual lines)
    dispatch to the event-driven walkers of :mod:`repro.sim.fast_soft`;
    plain write-back LRU configurations use the pure batch kernels
    below.
    """
    from .fast_soft import is_assisted, simulate_soft

    if is_assisted(model):
        return simulate_soft(model, trace, probes=probes)
    model.reset()
    stats = model.stats
    stats.trace = trace.name
    stats.engine = "fast"
    n = len(trace)
    if n == 0:
        stats.check()
        if probes is not None:
            probes.finish(stats)
        return stats

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8

    la = trace.addresses >> geometry.line_shift
    sets = la % n_sets
    if ways == 1:
        functional = _functional_direct_mapped(
            la, sets, trace.is_write, trace.temporal
        )
    else:
        functional = _functional_set_associative(
            la, sets, trace.is_write, trace.temporal, ways,
            bool(getattr(model, "_temporal_priority", False)),
        )

    per_ref_stalls = (
        np.zeros(n, dtype=np.int64) if probes is not None else None
    )
    timed = _accumulate_timing(
        trace.gaps.astype(np.int64, copy=True),
        functional.hits,
        functional.victim_dirty,
        hit_time,
        penalty,
        model.write_buffer.entries,
        model.write_buffer.drain_cycles,
        per_ref_stalls=per_ref_stalls,
    )

    stats.refs = n
    stats.hits_main = int(functional.hits.sum())
    stats.misses = n - stats.hits_main
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = int(functional.victim_dirty.sum())
    stats.write_buffer_stalls = timed.stalls
    stats.cycles = timed.cycles

    _materialise_state(model, trace, functional, timed)
    stats.check()
    if probes is not None:
        from ..telemetry.events import TelemetryBatch

        miss = ~functional.hits
        cycles_col = _per_ref_cycles(
            trace.gaps, functional.hits, per_ref_stalls,
            hit_time, penalty, first=True,
        )
        assert int(cycles_col.sum()) == stats.cycles, (
            "per-reference cycle reconstruction disagrees with the "
            "timing pass"
        )
        probes.on_batch(
            TelemetryBatch(
                start=0,
                addresses=trace.addresses,
                is_write=trace.is_write,
                temporal=trace.temporal,
                spatial=trace.spatial,
                gaps=trace.gaps,
                miss=miss,
                assist_hit=np.zeros(n, dtype=bool),
                cycles=cycles_col,
                words=miss.astype(np.int64) * words_per_line,
                wb_stall=per_ref_stalls,
                ref_ids=trace.ref_ids,
            )
        )
        probes.finish(stats)
    return stats


def simulate_fast_stream(model, stream, probes=None) -> SimResult:
    """Chunk-wise batch simulation with explicit state carry-over.

    Consumes a :class:`~repro.stream.TraceStream` one chunk at a time —
    memory stays O(chunk) — and produces counters and final model state
    bit-identical to :func:`simulate_fast` on the materialised trace
    (and therefore to the reference engine).  Eligibility is the same
    as the monolithic fast path (:func:`repro.sim.engine.fast_refusal`).

    Carrying state across chunks is exact because both kernel passes
    admit a small sufficient statistic:

    * **functional** — per-set residency (line, dirty, temporal bit) is
      all the next chunk's group-by needs; a chunk's first reference to
      a set compares against the carried resident line instead of an
      empty slot, and the first residency *run* of such a group either
      continues the carried line's run (inheriting its dirty/temporal
      bits) or evicts it (a victim whose dirtiness is the carried bit);
    * **timing** — the prefix-sum recurrence only looks one reference
      back, so ``start + stall`` of a chunk's last reference, its
      hit/miss outcome and the live write buffer fully seed the next
      chunk's accumulation.

    Software-assisted models dispatch to the chunked walker of
    :mod:`repro.sim.fast_soft`, which carries the same sufficient
    statistic plus the live bounce-back buffer.
    """
    from .fast_soft import is_assisted, simulate_soft_stream

    if is_assisted(model):
        return simulate_soft_stream(model, stream, probes=probes)
    model.reset()
    stats = model.stats
    stats.trace = stream.name
    stats.engine = "fast"

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    line_shift = geometry.line_shift
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8
    tracks_temporal = model._entry_has_temporal
    temporal_priority = bool(getattr(model, "_temporal_priority", False))

    # Functional carry: per-set residency.
    if ways == 1:
        tags = np.full(n_sets, -1, dtype=np.int64)
        dirty = np.zeros(n_sets, dtype=bool)
        temporal_bits = np.zeros(n_sets, dtype=bool)
        sets_state = None
    else:
        tags = dirty = temporal_bits = None
        #: per-set MRU-first [line, dirty, temporal] entries.
        sets_state = [[] for _ in range(n_sets)]

    # Timing carry (see _chunk_timing).
    write_buffer = WriteBuffer(
        model.write_buffer.entries, model.write_buffer.drain_cycles
    )
    first = True
    prev_base = 0
    prev_miss = False
    cycles = 0
    stalls = 0
    refs = 0
    hits_total = 0
    writebacks = 0
    ready_at = 0
    bus_free_at = 0
    last_hit = True
    last_la = 0

    for chunk in stream.chunks():
        n = len(chunk)
        if n == 0:
            continue
        la = chunk.addresses >> line_shift
        sets = la % n_sets
        if ways == 1:
            hits, victim_dirty = _functional_dm_chunk(
                la, sets, chunk.is_write, chunk.temporal,
                tags, dirty, temporal_bits,
            )
        else:
            hits, victim_dirty = _functional_assoc_chunk(
                la, sets, chunk.is_write, chunk.temporal,
                ways, temporal_priority, sets_state,
            )
        per_ref_stalls = (
            np.zeros(n, dtype=np.int64) if probes is not None else None
        )
        timed = _chunk_timing(
            chunk.gaps, hits, victim_dirty, hit_time, penalty,
            write_buffer, first, prev_base, prev_miss,
            per_ref_stalls=per_ref_stalls,
        )
        chunk_cycles, chunk_stalls, prev_base, ready_at, chunk_bus = timed
        if probes is not None:
            from ..telemetry.events import TelemetryBatch

            miss = ~hits
            cycles_col = _per_ref_cycles(
                chunk.gaps, hits, per_ref_stalls,
                hit_time, penalty, first=first,
            )
            assert int(cycles_col.sum()) == chunk_cycles, (
                "per-reference cycle reconstruction disagrees with the "
                "chunk timing pass"
            )
            probes.on_batch(
                TelemetryBatch(
                    start=refs,
                    addresses=chunk.addresses,
                    is_write=chunk.is_write,
                    temporal=chunk.temporal,
                    spatial=chunk.spatial,
                    gaps=chunk.gaps,
                    miss=miss,
                    assist_hit=np.zeros(n, dtype=bool),
                    cycles=cycles_col,
                    words=miss.astype(np.int64) * words_per_line,
                    wb_stall=per_ref_stalls,
                    ref_ids=chunk.ref_ids,
                )
            )
        cycles += chunk_cycles
        stalls += chunk_stalls
        if chunk_bus is not None:
            bus_free_at = chunk_bus
        refs += n
        hits_total += int(hits.sum())
        writebacks += int(victim_dirty.sum())
        first = False
        last_hit = bool(hits[-1])
        prev_miss = not last_hit
        last_la = int(la[-1])

    stats.refs = refs
    stats.hits_main = hits_total
    stats.misses = refs - hits_total
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = writebacks
    stats.write_buffer_stalls = stalls
    stats.cycles = cycles

    # Materialise final model state, as the monolithic kernels do.
    model.write_buffer = write_buffer
    model._ready_at = ready_at
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = bus_free_at
    if refs:
        model.last_fetch = [] if last_hit else [last_la]
    if ways == 1:
        model._tags = tags.tolist()
        model._dirty = dirty.tolist()
        if tracks_temporal:
            model._temporal = temporal_bits.tolist()
    else:
        model._sets = [
            [
                entry if tracks_temporal else entry[:2]
                for entry in entries
            ]
            for entries in sets_state
        ]
    stats.check()
    if probes is not None:
        probes.finish(stats)
    return stats


class _DMChunkScan:
    """Carry-free half of the direct-mapped chunk group-by.

    Everything :func:`_dm_chunk_scan` computes depends only on the chunk
    itself, never on the residency carried in from earlier chunks — so
    it can run on a pipeline worker with no ordering constraint.  The
    carried state perturbs the scan's answer in O(set groups) places
    only, which :func:`_dm_apply_carry` patches on the sequential
    critical path:

    * ``hits`` treats every group-first reference as a miss; the carry
      can only flip it to a hit (when the carried line matches).
    * ``victim_dirty`` knows nothing about the carried line's eviction
      (group firsts) and may under-report the dirtiness of the victim
      at the head of a group's *second* run — the only victim whose
      previous run is the group's first run, which on a group-first hit
      continues the carried residency and inherits its dirty bit.
      ``pos2_glob`` records that position per group (-1 when the group
      has a single run).
    * the per-group tail aggregates (``la_last`` &c.) seed the carry
      update, where a continuation run again inherits carried bits when
      the group's first run is also its last (``first_is_last``).

    Positions (``gf_glob``, ``pos2_glob``) are in original trace order,
    matching the scattered ``hits``/``victim_dirty`` arrays.
    """

    __slots__ = (
        "hits", "victim_dirty", "gsets", "la_first", "gf_glob",
        "pos2_glob", "la_last", "last_run_dirty", "last_run_temporal",
        "first_is_last",
    )

    def __init__(
        self, hits, victim_dirty, gsets, la_first, gf_glob, pos2_glob,
        la_last, last_run_dirty, last_run_temporal, first_is_last,
    ) -> None:
        self.hits = hits
        self.victim_dirty = victim_dirty
        self.gsets = gsets
        self.la_first = la_first
        self.gf_glob = gf_glob
        self.pos2_glob = pos2_glob
        self.la_last = la_last
        self.last_run_dirty = last_run_dirty
        self.last_run_temporal = last_run_temporal
        self.first_is_last = first_is_last

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def _dm_chunk_scan(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
) -> _DMChunkScan:
    """Carry-free residency-run analysis of one direct-mapped chunk.

    Same group-by as :func:`_functional_direct_mapped`; set groups open
    with a provisional miss.  ``run_start = miss | gstart`` is invariant
    under the carry (a group first starts a run whether the carried line
    turns it into a hit or not), so run ids — and every within-chunk
    aggregate over them — are final here.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    la_s = la[order]
    set_s = sets[order]
    w_s = is_write[order]
    t_s = temporal[order]

    gstart = np.ones(n, dtype=bool)
    gstart[1:] = set_s[1:] != set_s[:-1]
    hit_s = np.zeros(n, dtype=bool)
    hit_s[1:] = ~gstart[1:] & (la_s[1:] == la_s[:-1])
    miss_s = ~hit_s

    run_start = miss_s | gstart
    run_id = np.cumsum(run_start) - 1
    n_runs = int(run_id[-1]) + 1
    run_dirty = np.bincount(run_id, weights=w_s, minlength=n_runs) > 0
    run_temporal = np.bincount(run_id, weights=t_s, minlength=n_runs) > 0

    # Victims: a non-first miss evicts the previous run's line.  All of
    # them reference fully within-chunk runs except the head of a
    # group's second run (see the class docstring).
    victim_s = miss_s & ~gstart
    victim_dirty_s = np.zeros(n, dtype=bool)
    victim_dirty_s[victim_s] = run_dirty[run_id[victim_s] - 1]

    group_first = np.nonzero(gstart)[0]
    group_last = np.append(group_first[1:] - 1, n - 1)
    group_end = np.append(group_first[1:], n)
    heads = np.nonzero(run_start)[0]
    rid_first = run_id[group_first]
    has2 = rid_first + 1 < n_runs
    cand = heads[np.minimum(rid_first + 1, n_runs - 1)]
    valid2 = has2 & (cand < group_end)

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_s
    victim_dirty = np.empty(n, dtype=bool)
    victim_dirty[order] = victim_dirty_s

    return _DMChunkScan(
        hits=hits,
        victim_dirty=victim_dirty,
        gsets=set_s[group_first],
        la_first=la_s[group_first],
        gf_glob=order[group_first],
        pos2_glob=np.where(valid2, order[np.minimum(cand, n - 1)], -1),
        la_last=la_s[group_last],
        last_run_dirty=run_dirty[run_id[group_last]],
        last_run_temporal=run_temporal[run_id[group_last]],
        first_is_last=rid_first == run_id[group_last],
    )


def _dm_apply_carry(
    scan: _DMChunkScan,
    tags: np.ndarray,
    dirty: np.ndarray,
    temporal_bits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Patch a carry-free scan with the carried per-set residency.

    O(set groups): flips group-first provisional misses into hits where
    the carried line matches, charges the carried line's eviction where
    it does not, propagates the carried dirty bit to the one victim per
    group it can reach, and advances the carry arrays in place to each
    touched set's final residency.  ``scan.hits``/``scan.victim_dirty``
    are corrected in place and returned.
    """
    gsets = scan.gsets
    carried_tag = tags[gsets]
    carried_dirty = dirty[gsets]
    carried_temporal = temporal_bits[gsets]
    first_hits = carried_tag == scan.la_first

    hits = scan.hits
    victim_dirty = scan.victim_dirty
    hits[scan.gf_glob[first_hits]] = True
    first_misses = ~first_hits
    victim_dirty[scan.gf_glob[first_misses]] = (
        carried_dirty[first_misses] & (carried_tag[first_misses] != -1)
    )
    fix2 = first_hits & carried_dirty & (scan.pos2_glob >= 0)
    victim_dirty[scan.pos2_glob[fix2]] = True

    continuation = scan.first_is_last & first_hits
    tags[gsets] = scan.la_last
    dirty[gsets] = scan.last_run_dirty | (continuation & carried_dirty)
    temporal_bits[gsets] = (
        scan.last_run_temporal | (continuation & carried_temporal)
    )
    return hits, victim_dirty


def _functional_dm_chunk(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    tags: np.ndarray,
    dirty: np.ndarray,
    temporal_bits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of the direct-mapped group-by, seeded by carried state.

    Composed of the carry-free :func:`_dm_chunk_scan` and the O(groups)
    :func:`_dm_apply_carry` — the exact seam the pipelined streaming
    engine (:mod:`repro.stream.pipeline`) splits across processes, so
    the serial path exercises the same two halves.  (a) a run may start
    at a set-group boundary even on a *hit* (the carried resident line
    continues its pre-chunk run, whose dirty and temporal bits it
    inherits), and (b) a group-first miss on an occupied set evicts the
    carried line.  The carry arrays are updated in place to each touched
    set's final residency.
    """
    scan = _dm_chunk_scan(la, sets, is_write, temporal)
    return _dm_apply_carry(scan, tags, dirty, temporal_bits)


class _AssocChunkScan:
    """Carry-free half of the set-associative chunk walk.

    Unlike the direct-mapped scan there is no provisional outcome to
    patch: every reference's hit/victim depends on its set's carried
    MRU order, so the walk itself stays sequential.  What *is*
    carry-free — and what the pipelined engine farms to workers — is
    everything upstream of the walk: chunk page-in, fingerprint verify,
    decode, the stable set-order argsort and the group boundaries.
    ``starts``/``ends`` are numpy index arrays (compact to pickle);
    :func:`_assoc_apply_carry` walks them on the critical path.
    """

    __slots__ = (
        "order", "set_s", "starts", "ends", "la", "is_write", "temporal",
    )

    def __init__(
        self, order, set_s, starts, ends, la, is_write, temporal,
    ) -> None:
        self.order = order
        self.set_s = set_s
        self.starts = starts
        self.ends = ends
        self.la = la
        self.is_write = is_write
        self.temporal = temporal

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def _assoc_chunk_scan(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
) -> _AssocChunkScan:
    """Carry-free set-group analysis of one set-associative chunk."""
    n = len(la)
    order = np.argsort(sets, kind="stable")
    set_s = sets[order]
    boundaries = np.nonzero(set_s[1:] != set_s[:-1])[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    return _AssocChunkScan(
        order=order, set_s=set_s, starts=starts, ends=ends,
        la=la, is_write=is_write, temporal=temporal,
    )


def _assoc_apply_carry(
    scan: _AssocChunkScan,
    ways: int,
    temporal_priority: bool,
    sets_state: List[List[List]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Walk a scanned chunk's set groups over the carried MRU state.

    Identical logic to :func:`_functional_set_associative`, but the
    MRU-first entry lists live in ``sets_state`` and carry across
    chunks (sets untouched by this chunk keep their entries untouched).
    """
    n = len(scan.la)
    hits = np.zeros(n, dtype=bool)
    victim_dirty = np.zeros(n, dtype=bool)

    la_list = scan.la.tolist()
    w_list = scan.is_write.tolist()
    t_list = scan.temporal.tolist()
    order_list = scan.order.tolist()
    set_s = scan.set_s

    for lo, hi in zip(scan.starts.tolist(), scan.ends.tolist()):
        entries = sets_state[int(set_s[lo])]
        for j in range(lo, hi):
            index = order_list[j]
            line = la_list[index]
            for position, entry in enumerate(entries):
                if entry[0] == line:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if w_list[index]:
                        entry[1] = True
                    if t_list[index]:
                        entry[2] = True
                    hits[index] = True
                    break
            else:
                if len(entries) >= ways:
                    victim_index = len(entries) - 1
                    if temporal_priority:
                        for k in range(len(entries) - 1, -1, -1):
                            if not entries[k][2]:
                                victim_index = k
                                break
                    victim = entries.pop(victim_index)
                    victim_dirty[index] = victim[1]
                entries.insert(0, [line, w_list[index], t_list[index]])
    return hits, victim_dirty


def _functional_assoc_chunk(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    ways: int,
    temporal_priority: bool,
    sets_state: List[List[List]],
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of the per-set LRU loop over persistent set state.

    Composed of the carry-free :func:`_assoc_chunk_scan` and the
    sequential :func:`_assoc_apply_carry` — the seam the pipelined
    streaming engine (:mod:`repro.stream.pipeline`) splits across
    processes, so the serial path exercises the same two halves.
    """
    scan = _assoc_chunk_scan(la, sets, is_write, temporal)
    return _assoc_apply_carry(scan, ways, temporal_priority, sets_state)


def _chunk_timing(
    gaps: np.ndarray,
    hits: np.ndarray,
    victim_dirty: np.ndarray,
    hit_time: int,
    penalty: int,
    write_buffer: WriteBuffer,
    first: bool,
    prev_base: int,
    prev_miss: bool,
    per_ref_stalls: Optional[np.ndarray] = None,
) -> Tuple[int, int, int, int, Optional[int]]:
    """One chunk of :func:`_accumulate_timing`, seeded by carried state.

    ``prev_base`` is ``start + stall`` of the previous chunk's last
    reference (absolute cycles, all earlier stalls included) and
    ``prev_miss`` its outcome; together with the live ``write_buffer``
    they are exactly what the one-reference-back recurrence needs.
    Returns ``(cycles, stalls, new_base, ready_at, bus_free_at)``
    where ``bus_free_at`` is None when the chunk had no miss.
    ``per_ref_stalls`` is the telemetry hook of
    :func:`_accumulate_timing`, chunk-local.
    """
    n = len(gaps)
    wait = hit_time - gaps
    np.clip(wait, 0, None, out=wait)
    delta = np.maximum(gaps, hit_time)
    if first:
        wait[0] = 0
        delta[0] = gaps[0]
        base0 = 0
    else:
        base0 = prev_base
        if prev_miss:
            delta[0] += penalty - hit_time
    delta[1:] += (penalty - hit_time) * (~hits[:-1])
    base_start = np.cumsum(delta) + base0

    wb_entries = write_buffer.entries
    wb_drain = write_buffer.drain_cycles
    offset = 0
    last_push_index = -1
    last_push_stall = 0
    pushes = np.nonzero(victim_dirty)[0]
    if len(pushes) and wb_entries == 0:
        n_pushes = len(pushes)
        offset = n_pushes * wb_drain
        last_push_index = int(pushes[-1])
        last_push_stall = wb_drain
        write_buffer.pushes += n_pushes
        write_buffer.stall_cycles += offset
        if per_ref_stalls is not None:
            per_ref_stalls[pushes] = wb_drain
    elif len(pushes) and penalty >= wb_drain:
        # Pushes are >= penalty >= drain cycles apart — across chunk
        # boundaries too, since chunking does not move push times — so
        # every push (including the first, against any carried entry)
        # finds the buffer empty: zero stall, one entry left draining.
        last_push_index = int(pushes[-1])
        write_buffer.pushes += len(pushes)
        write_buffer._completions.clear()
        write_buffer._completions.append(
            int(base_start[last_push_index]) + wb_drain
        )
    else:
        for index in pushes.tolist():
            stall = write_buffer.push(int(base_start[index]) + offset)
            offset += stall
            last_push_index = index
            last_push_stall = stall
            if per_ref_stalls is not None:
                per_ref_stalls[index] = stall

    n_hits = int(hits.sum())
    chunk_cycles = (
        int(wait.sum()) + offset
        + hit_time * n_hits + penalty * (n - n_hits)
    )
    new_base = int(base_start[-1]) + offset
    ready_at = new_base + (hit_time if hits[-1] else penalty)
    misses = np.nonzero(~hits)[0]
    bus_free_at = None
    if len(misses):
        last_miss = int(misses[-1])
        before = offset - (
            last_push_stall if last_push_index == last_miss else 0
        )
        bus_free_at = int(base_start[last_miss]) + before + penalty
    return chunk_cycles, offset, new_base, ready_at, bus_free_at


def _materialise_state(
    model, trace: Trace, functional: _Functional, timed: _Timing
) -> None:
    """Leave the model exactly as the reference engine would have."""
    model.write_buffer = timed.write_buffer
    model._ready_at = timed.ready_at
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = timed.bus_free_at

    last_la = int(trace.addresses[-1]) >> model.geometry.line_shift
    model.last_fetch = [] if functional.hits[-1] else [last_la]

    tracks_temporal = model._entry_has_temporal
    if getattr(model, "_tags", None) is not None:
        # Array-backed direct-mapped state.
        for set_index, line, dirty, temporal in functional.final_sets:
            model._tags[set_index] = line
            model._dirty[set_index] = dirty
            if tracks_temporal:
                model._temporal[set_index] = temporal
    else:
        for set_index, line, dirty, temporal in functional.final_sets:
            entry = [line, dirty, temporal] if tracks_temporal else [line, dirty]
            model._sets[set_index].append(entry)
