"""Vectorized simulation engine (the "fast" tier).

The reference engine walks the trace one reference at a time through a
Python loop.  This module computes the *same* counters — exactly, not
approximately — with batch kernels, for the configurations
:mod:`repro.sim.engine` can prove equivalent: write-back LRU caches with
no bounce-back cache, no virtual lines and no prefetching (the paper's
"Standard" configuration for both :class:`~repro.sim.standard
.StandardCache` and the software-assisted model).

Why exactness is possible
-------------------------
*Functional* behaviour of a direct-mapped LRU cache is a pure group-by:
a reference hits iff the previous reference to the same set touched the
same line, and a victim is dirty iff any store touched the evicted
line's residency run.  Both reduce to numpy primitives over the trace
sorted (stably) by set index.  Set-associative geometries fall back to
per-set short-stream loops: the same per-reference logic, but stripped
of all timing/stats work and run over precomputed per-set subsequences.

*Timing* decouples because for the supported models every access
satisfies ``ready_at == now + cycles`` and costs at least the pipelined
hit time ``H``.  The driver's clock rule then gives, for every reference
``i > 0``::

    wait_i  = max(0, H - gap_i)                      (history-free!)
    start_i = start_{i-1} + stall_{i-1}
              + (penalty - H if miss_{i-1} else 0) + max(gap_i, H)

so start times are a prefix sum perturbed only by write-buffer stalls —
and stalls occur only at dirty-victim evictions, which are replayed
through the real :class:`~repro.sim.write_buffer.WriteBuffer` in a loop
over *push events only* (a small fraction of the trace).

The kernel also materialises the model's final state (cache contents,
``stats``, write buffer, ``_ready_at``), so a fast run is substitutable
for a reference run even for callers that inspect the model afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..memtrace.trace import Trace
from .result import SimResult
from .write_buffer import WriteBuffer


class _Functional:
    """Output of the functional pass, in original trace order."""

    __slots__ = ("hits", "victim_dirty", "final_sets")

    def __init__(
        self,
        hits: np.ndarray,
        victim_dirty: np.ndarray,
        final_sets: List[Tuple[int, int, bool, bool]],
    ) -> None:
        self.hits = hits
        self.victim_dirty = victim_dirty
        #: (set index, line address, dirty, temporal) of every line
        #: resident at the end of the trace, MRU-first within a set.
        self.final_sets = final_sets


def _functional_direct_mapped(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
) -> _Functional:
    """Exact hit/victim analysis of a direct-mapped LRU cache.

    Stable-sorting by set index makes each set's reference subsequence
    contiguous; within it, consecutive equal line addresses form a
    *residency run* (a fill plus its hits — any other line address would
    have evicted the resident line).  Hits, victim dirtiness and final
    contents are all per-run aggregates.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    la_s = la[order]
    set_s = sets[order]
    w_s = is_write[order]

    same_set = np.zeros(n, dtype=bool)
    same_set[1:] = set_s[1:] == set_s[:-1]
    hit_s = np.zeros(n, dtype=bool)
    hit_s[1:] = same_set[1:] & (la_s[1:] == la_s[:-1])
    miss_s = ~hit_s

    # Runs never span sets: a set-group boundary always starts a miss.
    run_id = np.cumsum(miss_s) - 1
    n_runs = int(run_id[-1]) + 1
    run_dirty = np.bincount(run_id, weights=w_s, minlength=n_runs) > 0
    run_temporal = (
        np.bincount(run_id, weights=temporal[order], minlength=n_runs) > 0
    )

    # A miss that is not first-in-set evicts the previous run's line.
    victim_s = miss_s & same_set
    victim_dirty_s = np.zeros(n, dtype=bool)
    victim_dirty_s[victim_s] = run_dirty[run_id[victim_s] - 1]

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_s
    victim_dirty = np.empty(n, dtype=bool)
    victim_dirty[order] = victim_dirty_s

    # Final contents: the last run of each set group survives.
    group_last = np.nonzero(set_s[1:] != set_s[:-1])[0].tolist() + [n - 1]
    final_sets = [
        (
            int(set_s[j]),
            int(la_s[j]),
            bool(run_dirty[run_id[j]]),
            bool(run_temporal[run_id[j]]),
        )
        for j in group_last
    ]
    return _Functional(hits, victim_dirty, final_sets)


def _functional_set_associative(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    ways: int,
    temporal_priority: bool,
) -> _Functional:
    """Per-set short-stream fallback for ``ways > 1`` geometries.

    Functionally the reference LRU loop, but run per set over
    precomputed index streams with no stats/timing work per reference.
    ``temporal_priority`` selects the figure-9b victim rule (LRU among
    non-temporal lines) instead of plain LRU.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    set_s = sets[order]
    boundaries = np.nonzero(set_s[1:] != set_s[:-1])[0] + 1
    starts = [0] + boundaries.tolist()
    ends = boundaries.tolist() + [n]

    hits = np.zeros(n, dtype=bool)
    victim_dirty = np.zeros(n, dtype=bool)
    final_sets: List[Tuple[int, int, bool, bool]] = []

    la_list = la.tolist()
    w_list = is_write.tolist()
    t_list = temporal.tolist()
    order_list = order.tolist()

    for lo, hi in zip(starts, ends):
        entries: List[List] = []  # MRU-first [addr, dirty, temporal]
        for j in range(lo, hi):
            index = order_list[j]
            line = la_list[index]
            for position, entry in enumerate(entries):
                if entry[0] == line:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if w_list[index]:
                        entry[1] = True
                    if t_list[index]:
                        entry[2] = True
                    hits[index] = True
                    break
            else:
                if len(entries) >= ways:
                    victim_index = len(entries) - 1
                    if temporal_priority:
                        for k in range(len(entries) - 1, -1, -1):
                            if not entries[k][2]:
                                victim_index = k
                                break
                    victim = entries.pop(victim_index)
                    victim_dirty[index] = victim[1]
                entries.insert(0, [line, w_list[index], t_list[index]])
        set_index = int(set_s[lo])
        for entry in entries:
            final_sets.append(
                (set_index, entry[0], bool(entry[1]), bool(entry[2]))
            )
    return _Functional(hits, victim_dirty, final_sets)


class _Timing:
    """Output of the timing pass."""

    __slots__ = (
        "cycles", "stalls", "write_buffer", "ready_at", "bus_free_at"
    )

    def __init__(self, cycles, stalls, write_buffer, ready_at, bus_free_at):
        self.cycles = cycles
        self.stalls = stalls
        self.write_buffer = write_buffer
        self.ready_at = ready_at
        self.bus_free_at = bus_free_at


def _accumulate_timing(
    gaps: np.ndarray,
    hits: np.ndarray,
    victim_dirty: np.ndarray,
    hit_time: int,
    penalty: int,
    wb_entries: int,
    wb_drain: int,
    per_ref_stalls: Optional[np.ndarray] = None,
) -> _Timing:
    """Exact cycle/stall accounting over the miss mask.

    ``start`` times without stalls are a prefix sum (see module
    docstring); each write-buffer stall shifts every later start by the
    same amount, so the replay walks push events only, carrying the
    cumulative offset.  Two closed forms skip even that walk: pushes
    happen at starts of dirty-miss accesses, which are at least
    ``penalty`` cycles apart — so with ``penalty >= drain`` a buffered
    write buffer can never back up (every push finds it empty), and an
    unbuffered one (``entries == 0``) stalls exactly ``drain`` per push.

    ``per_ref_stalls`` (an int64 zeros array of trace length, telemetry
    only) receives each push's stall at its reference index — together
    with the history-free per-reference wait this reconstructs every
    access's exact cycle charge (see :func:`_per_ref_cycles`).
    """
    n = len(gaps)
    n_hits = int(hits.sum())
    n_misses = n - n_hits

    wait = hit_time - gaps
    np.clip(wait, 0, None, out=wait)
    wait[0] = 0

    delta = np.maximum(gaps, hit_time)
    delta[0] = gaps[0]
    delta[1:] += (penalty - hit_time) * (~hits[:-1])
    base_start = np.cumsum(delta)

    write_buffer = WriteBuffer(wb_entries, wb_drain)
    offset = 0
    last_push_index = -1
    last_push_stall = 0
    pushes = np.nonzero(victim_dirty)[0]
    if len(pushes) and wb_entries == 0:
        # Unbuffered: the processor eats the full drain on every push.
        n_pushes = len(pushes)
        offset = n_pushes * wb_drain
        last_push_index = int(pushes[-1])
        last_push_stall = wb_drain
        write_buffer.pushes = n_pushes
        write_buffer.stall_cycles = offset
        if per_ref_stalls is not None:
            per_ref_stalls[pushes] = wb_drain
    elif len(pushes) and penalty >= wb_drain:
        # Never backs up: zero stall per push, and at the last push the
        # buffer was found empty, so exactly one entry is left draining.
        last_push_index = int(pushes[-1])
        write_buffer.pushes = len(pushes)
        write_buffer._completions.append(
            int(base_start[last_push_index]) + wb_drain
        )
    else:
        for index in pushes.tolist():
            stall = write_buffer.push(int(base_start[index]) + offset)
            offset += stall
            last_push_index = index
            last_push_stall = stall
            if per_ref_stalls is not None:
                per_ref_stalls[index] = stall

    cycles = (
        int(wait.sum()) + offset
        + hit_time * n_hits + penalty * n_misses
    )

    ready_at = (
        int(base_start[-1]) + offset
        + (hit_time if hits[-1] else penalty)
    )
    # The memory bus finishes with the last miss's transfer; its start
    # excludes that access's own victim stall (the fetch is requested
    # before the victim drains).
    misses = np.nonzero(~hits)[0]
    if len(misses):
        last_miss = int(misses[-1])
        before = offset - (
            last_push_stall if last_push_index == last_miss else 0
        )
        bus_free_at = int(base_start[last_miss]) + before + penalty
    else:
        bus_free_at = 0
    return _Timing(cycles, offset, write_buffer, ready_at, bus_free_at)


def _per_ref_cycles(
    gaps: np.ndarray,
    hits: np.ndarray,
    stalls: np.ndarray,
    hit_time: int,
    penalty: int,
    first: bool,
) -> np.ndarray:
    """Exact per-reference cycle charges, reconstructed closed-form.

    For the supported models the reference engine charges every access
    ``wait + stall + service`` where ``wait = max(0, H - gap)`` (zero
    for the very first reference — see the module docstring's
    history-free derivation), ``stall`` is the access's own write-buffer
    push stall and ``service`` is ``H`` on a hit, the miss penalty
    otherwise.  Summing reproduces the timing pass's totals exactly,
    which the probed entry points assert.
    """
    wait = hit_time - gaps.astype(np.int64)
    np.clip(wait, 0, None, out=wait)
    if first and len(wait):
        wait[0] = 0
    service = np.where(hits, hit_time, penalty)
    return wait + stalls + service


def simulate_fast(model, trace: Trace, probes=None) -> SimResult:
    """Run ``trace`` through the batch kernels and return the result.

    ``model`` must have been accepted by
    :func:`repro.sim.engine.fast_refusal` — a write-back LRU cache with
    no assist structures.  The model is reset, its counters computed in
    batch, and its final state materialised as if the reference engine
    had run.  With ``probes``, per-reference outcomes are reconstructed
    exactly from the kernel outputs and emitted as one telemetry batch.

    Software-assisted models (bounce-back cache or virtual lines)
    dispatch to the event-driven walkers of :mod:`repro.sim.fast_soft`;
    plain write-back LRU configurations use the pure batch kernels
    below.
    """
    from .fast_soft import is_assisted, simulate_soft

    if is_assisted(model):
        return simulate_soft(model, trace, probes=probes)
    model.reset()
    stats = model.stats
    stats.trace = trace.name
    stats.engine = "fast"
    n = len(trace)
    if n == 0:
        stats.check()
        if probes is not None:
            probes.finish(stats)
        return stats

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8

    la = trace.addresses >> geometry.line_shift
    sets = la % n_sets
    if ways == 1:
        functional = _functional_direct_mapped(
            la, sets, trace.is_write, trace.temporal
        )
    else:
        functional = _functional_set_associative(
            la, sets, trace.is_write, trace.temporal, ways,
            bool(getattr(model, "_temporal_priority", False)),
        )

    per_ref_stalls = (
        np.zeros(n, dtype=np.int64) if probes is not None else None
    )
    timed = _accumulate_timing(
        trace.gaps.astype(np.int64, copy=True),
        functional.hits,
        functional.victim_dirty,
        hit_time,
        penalty,
        model.write_buffer.entries,
        model.write_buffer.drain_cycles,
        per_ref_stalls=per_ref_stalls,
    )

    stats.refs = n
    stats.hits_main = int(functional.hits.sum())
    stats.misses = n - stats.hits_main
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = int(functional.victim_dirty.sum())
    stats.write_buffer_stalls = timed.stalls
    stats.cycles = timed.cycles

    _materialise_state(model, trace, functional, timed)
    stats.check()
    if probes is not None:
        from ..telemetry.events import TelemetryBatch

        miss = ~functional.hits
        cycles_col = _per_ref_cycles(
            trace.gaps, functional.hits, per_ref_stalls,
            hit_time, penalty, first=True,
        )
        assert int(cycles_col.sum()) == stats.cycles, (
            "per-reference cycle reconstruction disagrees with the "
            "timing pass"
        )
        probes.on_batch(
            TelemetryBatch(
                start=0,
                addresses=trace.addresses,
                is_write=trace.is_write,
                temporal=trace.temporal,
                spatial=trace.spatial,
                gaps=trace.gaps,
                miss=miss,
                assist_hit=np.zeros(n, dtype=bool),
                cycles=cycles_col,
                words=miss.astype(np.int64) * words_per_line,
                wb_stall=per_ref_stalls,
                ref_ids=trace.ref_ids,
            )
        )
        probes.finish(stats)
    return stats


def simulate_fast_stream(model, stream, probes=None) -> SimResult:
    """Chunk-wise batch simulation with explicit state carry-over.

    Consumes a :class:`~repro.stream.TraceStream` one chunk at a time —
    memory stays O(chunk) — and produces counters and final model state
    bit-identical to :func:`simulate_fast` on the materialised trace
    (and therefore to the reference engine).  Eligibility is the same
    as the monolithic fast path (:func:`repro.sim.engine.fast_refusal`).

    Carrying state across chunks is exact because both kernel passes
    admit a small sufficient statistic:

    * **functional** — per-set residency (line, dirty, temporal bit) is
      all the next chunk's group-by needs; a chunk's first reference to
      a set compares against the carried resident line instead of an
      empty slot, and the first residency *run* of such a group either
      continues the carried line's run (inheriting its dirty/temporal
      bits) or evicts it (a victim whose dirtiness is the carried bit);
    * **timing** — the prefix-sum recurrence only looks one reference
      back, so ``start + stall`` of a chunk's last reference, its
      hit/miss outcome and the live write buffer fully seed the next
      chunk's accumulation.

    Software-assisted models dispatch to the chunked walker of
    :mod:`repro.sim.fast_soft`, which carries the same sufficient
    statistic plus the live bounce-back buffer.
    """
    from .fast_soft import is_assisted, simulate_soft_stream

    if is_assisted(model):
        return simulate_soft_stream(model, stream, probes=probes)
    model.reset()
    stats = model.stats
    stats.trace = stream.name
    stats.engine = "fast"

    geometry = model.geometry
    timing = model.timing
    n_sets = geometry.n_sets
    ways = geometry.ways
    line_shift = geometry.line_shift
    hit_time = timing.hit_time
    penalty = timing.latency + timing.transfer_cycles(geometry.line_size)
    words_per_line = geometry.line_size // 8
    tracks_temporal = model._entry_has_temporal
    temporal_priority = bool(getattr(model, "_temporal_priority", False))

    # Functional carry: per-set residency.
    if ways == 1:
        tags = np.full(n_sets, -1, dtype=np.int64)
        dirty = np.zeros(n_sets, dtype=bool)
        temporal_bits = np.zeros(n_sets, dtype=bool)
        sets_state = None
    else:
        tags = dirty = temporal_bits = None
        #: per-set MRU-first [line, dirty, temporal] entries.
        sets_state = [[] for _ in range(n_sets)]

    # Timing carry (see _chunk_timing).
    write_buffer = WriteBuffer(
        model.write_buffer.entries, model.write_buffer.drain_cycles
    )
    first = True
    prev_base = 0
    prev_miss = False
    cycles = 0
    stalls = 0
    refs = 0
    hits_total = 0
    writebacks = 0
    ready_at = 0
    bus_free_at = 0
    last_hit = True
    last_la = 0

    for chunk in stream.chunks():
        n = len(chunk)
        if n == 0:
            continue
        la = chunk.addresses >> line_shift
        sets = la % n_sets
        if ways == 1:
            hits, victim_dirty = _functional_dm_chunk(
                la, sets, chunk.is_write, chunk.temporal,
                tags, dirty, temporal_bits,
            )
        else:
            hits, victim_dirty = _functional_assoc_chunk(
                la, sets, chunk.is_write, chunk.temporal,
                ways, temporal_priority, sets_state,
            )
        per_ref_stalls = (
            np.zeros(n, dtype=np.int64) if probes is not None else None
        )
        timed = _chunk_timing(
            chunk.gaps, hits, victim_dirty, hit_time, penalty,
            write_buffer, first, prev_base, prev_miss,
            per_ref_stalls=per_ref_stalls,
        )
        chunk_cycles, chunk_stalls, prev_base, ready_at, chunk_bus = timed
        if probes is not None:
            from ..telemetry.events import TelemetryBatch

            miss = ~hits
            cycles_col = _per_ref_cycles(
                chunk.gaps, hits, per_ref_stalls,
                hit_time, penalty, first=first,
            )
            assert int(cycles_col.sum()) == chunk_cycles, (
                "per-reference cycle reconstruction disagrees with the "
                "chunk timing pass"
            )
            probes.on_batch(
                TelemetryBatch(
                    start=refs,
                    addresses=chunk.addresses,
                    is_write=chunk.is_write,
                    temporal=chunk.temporal,
                    spatial=chunk.spatial,
                    gaps=chunk.gaps,
                    miss=miss,
                    assist_hit=np.zeros(n, dtype=bool),
                    cycles=cycles_col,
                    words=miss.astype(np.int64) * words_per_line,
                    wb_stall=per_ref_stalls,
                    ref_ids=chunk.ref_ids,
                )
            )
        cycles += chunk_cycles
        stalls += chunk_stalls
        if chunk_bus is not None:
            bus_free_at = chunk_bus
        refs += n
        hits_total += int(hits.sum())
        writebacks += int(victim_dirty.sum())
        first = False
        last_hit = bool(hits[-1])
        prev_miss = not last_hit
        last_la = int(la[-1])

    stats.refs = refs
    stats.hits_main = hits_total
    stats.misses = refs - hits_total
    stats.lines_fetched = stats.misses
    stats.words_fetched = stats.misses * words_per_line
    stats.writebacks = writebacks
    stats.write_buffer_stalls = stalls
    stats.cycles = cycles

    # Materialise final model state, as the monolithic kernels do.
    model.write_buffer = write_buffer
    model._ready_at = ready_at
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = bus_free_at
    if refs:
        model.last_fetch = [] if last_hit else [last_la]
    if ways == 1:
        model._tags = tags.tolist()
        model._dirty = dirty.tolist()
        if tracks_temporal:
            model._temporal = temporal_bits.tolist()
    else:
        model._sets = [
            [
                entry if tracks_temporal else entry[:2]
                for entry in entries
            ]
            for entries in sets_state
        ]
    stats.check()
    if probes is not None:
        probes.finish(stats)
    return stats


def _functional_dm_chunk(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    tags: np.ndarray,
    dirty: np.ndarray,
    temporal_bits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of the direct-mapped group-by, seeded by carried state.

    Same residency-run analysis as :func:`_functional_direct_mapped`,
    except (a) a run may start at a set-group boundary even on a *hit*
    (the carried resident line continues its pre-chunk run, whose dirty
    and temporal bits it inherits), and (b) a group-first miss on an
    occupied set evicts the carried line.  The carry arrays are updated
    in place to each touched set's final residency.
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    la_s = la[order]
    set_s = sets[order]
    w_s = is_write[order]
    t_s = temporal[order]

    gstart = np.ones(n, dtype=bool)
    gstart[1:] = set_s[1:] != set_s[:-1]
    hit_s = np.zeros(n, dtype=bool)
    hit_s[1:] = ~gstart[1:] & (la_s[1:] == la_s[:-1])

    group_first = np.nonzero(gstart)[0]
    group_sets = set_s[group_first]
    carried_tag = tags[group_sets]
    carried_dirty = dirty[group_sets]
    carried_temporal = temporal_bits[group_sets]
    first_hits = carried_tag == la_s[group_first]
    hit_s[group_first] = first_hits
    miss_s = ~hit_s

    # Runs restart at every miss AND at every group boundary, so a
    # group-first hit opens a fresh run that continues the carried line.
    run_start = miss_s | gstart
    run_id = np.cumsum(run_start) - 1
    n_runs = int(run_id[-1]) + 1
    run_dirty = np.bincount(run_id, weights=w_s, minlength=n_runs) > 0
    run_temporal = np.bincount(run_id, weights=t_s, minlength=n_runs) > 0
    continuation = group_first[first_hits]
    run_dirty[run_id[continuation]] |= carried_dirty[first_hits]
    run_temporal[run_id[continuation]] |= carried_temporal[first_hits]

    # Victims: a non-first miss evicts the previous run's line; a
    # group-first miss evicts the carried line when the set is occupied.
    victim_s = miss_s & ~gstart
    victim_dirty_s = np.zeros(n, dtype=bool)
    victim_dirty_s[victim_s] = run_dirty[run_id[victim_s] - 1]
    first_misses = group_first[~first_hits]
    victim_dirty_s[first_misses] = (
        carried_dirty[~first_hits] & (carried_tag[~first_hits] != -1)
    )

    # Update the carry to each touched set's final residency run.
    group_last = np.append(group_first[1:] - 1, n - 1)
    tags[group_sets] = la_s[group_last]
    dirty[group_sets] = run_dirty[run_id[group_last]]
    temporal_bits[group_sets] = run_temporal[run_id[group_last]]

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_s
    victim_dirty = np.empty(n, dtype=bool)
    victim_dirty[order] = victim_dirty_s
    return hits, victim_dirty


def _functional_assoc_chunk(
    la: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    temporal: np.ndarray,
    ways: int,
    temporal_priority: bool,
    sets_state: List[List[List]],
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of the per-set LRU loop over persistent set state.

    Identical logic to :func:`_functional_set_associative`, but the
    MRU-first entry lists live in ``sets_state`` and carry across
    chunks (sets untouched by this chunk keep their entries untouched).
    """
    n = len(la)
    order = np.argsort(sets, kind="stable")
    set_s = sets[order]
    boundaries = np.nonzero(set_s[1:] != set_s[:-1])[0] + 1
    starts = [0] + boundaries.tolist()
    ends = boundaries.tolist() + [n]

    hits = np.zeros(n, dtype=bool)
    victim_dirty = np.zeros(n, dtype=bool)

    la_list = la.tolist()
    w_list = is_write.tolist()
    t_list = temporal.tolist()
    order_list = order.tolist()

    for lo, hi in zip(starts, ends):
        entries = sets_state[int(set_s[lo])]
        for j in range(lo, hi):
            index = order_list[j]
            line = la_list[index]
            for position, entry in enumerate(entries):
                if entry[0] == line:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if w_list[index]:
                        entry[1] = True
                    if t_list[index]:
                        entry[2] = True
                    hits[index] = True
                    break
            else:
                if len(entries) >= ways:
                    victim_index = len(entries) - 1
                    if temporal_priority:
                        for k in range(len(entries) - 1, -1, -1):
                            if not entries[k][2]:
                                victim_index = k
                                break
                    victim = entries.pop(victim_index)
                    victim_dirty[index] = victim[1]
                entries.insert(0, [line, w_list[index], t_list[index]])
    return hits, victim_dirty


def _chunk_timing(
    gaps: np.ndarray,
    hits: np.ndarray,
    victim_dirty: np.ndarray,
    hit_time: int,
    penalty: int,
    write_buffer: WriteBuffer,
    first: bool,
    prev_base: int,
    prev_miss: bool,
    per_ref_stalls: Optional[np.ndarray] = None,
) -> Tuple[int, int, int, int, Optional[int]]:
    """One chunk of :func:`_accumulate_timing`, seeded by carried state.

    ``prev_base`` is ``start + stall`` of the previous chunk's last
    reference (absolute cycles, all earlier stalls included) and
    ``prev_miss`` its outcome; together with the live ``write_buffer``
    they are exactly what the one-reference-back recurrence needs.
    Returns ``(cycles, stalls, new_base, ready_at, bus_free_at)``
    where ``bus_free_at`` is None when the chunk had no miss.
    ``per_ref_stalls`` is the telemetry hook of
    :func:`_accumulate_timing`, chunk-local.
    """
    n = len(gaps)
    wait = hit_time - gaps
    np.clip(wait, 0, None, out=wait)
    delta = np.maximum(gaps, hit_time)
    if first:
        wait[0] = 0
        delta[0] = gaps[0]
        base0 = 0
    else:
        base0 = prev_base
        if prev_miss:
            delta[0] += penalty - hit_time
    delta[1:] += (penalty - hit_time) * (~hits[:-1])
    base_start = np.cumsum(delta) + base0

    wb_entries = write_buffer.entries
    wb_drain = write_buffer.drain_cycles
    offset = 0
    last_push_index = -1
    last_push_stall = 0
    pushes = np.nonzero(victim_dirty)[0]
    if len(pushes) and wb_entries == 0:
        n_pushes = len(pushes)
        offset = n_pushes * wb_drain
        last_push_index = int(pushes[-1])
        last_push_stall = wb_drain
        write_buffer.pushes += n_pushes
        write_buffer.stall_cycles += offset
        if per_ref_stalls is not None:
            per_ref_stalls[pushes] = wb_drain
    elif len(pushes) and penalty >= wb_drain:
        # Pushes are >= penalty >= drain cycles apart — across chunk
        # boundaries too, since chunking does not move push times — so
        # every push (including the first, against any carried entry)
        # finds the buffer empty: zero stall, one entry left draining.
        last_push_index = int(pushes[-1])
        write_buffer.pushes += len(pushes)
        write_buffer._completions.clear()
        write_buffer._completions.append(
            int(base_start[last_push_index]) + wb_drain
        )
    else:
        for index in pushes.tolist():
            stall = write_buffer.push(int(base_start[index]) + offset)
            offset += stall
            last_push_index = index
            last_push_stall = stall
            if per_ref_stalls is not None:
                per_ref_stalls[index] = stall

    n_hits = int(hits.sum())
    chunk_cycles = (
        int(wait.sum()) + offset
        + hit_time * n_hits + penalty * (n - n_hits)
    )
    new_base = int(base_start[-1]) + offset
    ready_at = new_base + (hit_time if hits[-1] else penalty)
    misses = np.nonzero(~hits)[0]
    bus_free_at = None
    if len(misses):
        last_miss = int(misses[-1])
        before = offset - (
            last_push_stall if last_push_index == last_miss else 0
        )
        bus_free_at = int(base_start[last_miss]) + before + penalty
    return chunk_cycles, offset, new_base, ready_at, bus_free_at


def _materialise_state(
    model, trace: Trace, functional: _Functional, timed: _Timing
) -> None:
    """Leave the model exactly as the reference engine would have."""
    model.write_buffer = timed.write_buffer
    model._ready_at = timed.ready_at
    if hasattr(model, "_bus_free_at"):
        model._bus_free_at = timed.bus_free_at

    last_la = int(trace.addresses[-1]) >> model.geometry.line_shift
    model.last_fetch = [] if functional.hits[-1] else [last_la]

    tracks_temporal = model._entry_has_temporal
    if getattr(model, "_tags", None) is not None:
        # Array-backed direct-mapped state.
        for set_index, line, dirty, temporal in functional.final_sets:
            model._tags[set_index] = line
            model._dirty[set_index] = dirty
            if tracks_temporal:
                model._temporal[set_index] = temporal
    else:
        for set_index, line, dirty, temporal in functional.final_sets:
            entry = [line, dirty, temporal] if tracks_temporal else [line, dirty]
            model._sets[set_index].append(entry)
