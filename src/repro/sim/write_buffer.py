"""Write buffer model.

Dirty victims are transferred to a small write buffer (2 cycles, hidden
under the miss latency) and drained to memory over the bus.  The buffer
only affects the processor when it is *full*: the evicting access then
stalls until an entry drains.  The paper also aborts bounce-back
transfers that would displace a dirty line while the write buffer is
full; :meth:`is_full` exposes the state for that rule.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..errors import ConfigError


class WriteBuffer:
    """FIFO write buffer draining one line per ``drain_cycles``."""

    def __init__(self, entries: int, drain_cycles: int) -> None:
        if entries < 0:
            raise ConfigError(f"write buffer entries must be >= 0: {entries}")
        if drain_cycles < 1:
            raise ConfigError(f"drain cycles must be >= 1: {drain_cycles}")
        self.entries = entries
        self.drain_cycles = drain_cycles
        self._completions: Deque[int] = deque()
        self.pushes = 0
        self.stall_cycles = 0

    def advance(self, now: int) -> None:
        """Retire entries whose drain finished by ``now``."""
        completions = self._completions
        while completions and completions[0] <= now:
            completions.popleft()

    def is_full(self, now: int) -> bool:
        """True when no slot is free at ``now`` (used by the bounce-back
        abort rule)."""
        if self.entries == 0:
            return True
        self.advance(now)
        return len(self._completions) >= self.entries

    def push(self, now: int) -> int:
        """Insert a dirty line at ``now``; returns processor stall cycles.

        With no buffer at all (``entries == 0``) the write goes straight
        to memory and the processor eats the full drain time.
        """
        self.pushes += 1
        if self.entries == 0:
            self.stall_cycles += self.drain_cycles
            return self.drain_cycles
        self.advance(now)
        stall = 0
        if len(self._completions) >= self.entries:
            # Wait for the oldest entry to drain, freeing one slot.
            stall = self._completions.popleft() - now
            now += stall
            self.stall_cycles += stall
        start = max(now, self._completions[-1] if self._completions else now)
        self._completions.append(start + self.drain_cycles)
        return stall

    @property
    def occupancy(self) -> int:
        return len(self._completions)

    def reset(self) -> None:
        self._completions.clear()
        self.pushes = 0
        self.stall_cycles = 0
