"""Common interface of all cache simulators.

A cache model is a stateful object with one hot method::

    cycles = model.access(
        address, is_write, temporal=temporal, spatial=spatial, now=now
    )

``now`` is the issue time of the reference (cycles); the returned value
is the number of cycles the access took, *including* any wait for a
locked cache or a full write buffer.  AMAT is the mean of these values.

Models keep their own :class:`~repro.sim.result.SimResult` counters; the
driver (:mod:`repro.sim.driver`) walks a trace, maintains the clock and
finalises the result.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .result import SimResult


@runtime_checkable
class CacheModel(Protocol):
    """Structural interface every simulator implements."""

    #: Human-readable configuration label, used in result tables.
    name: str

    #: Mutable counter record; the driver stamps trace metadata into it.
    stats: SimResult

    def access(
        self,
        address: int,
        is_write: bool = False,
        *,
        temporal: bool = False,
        spatial: bool = False,
        now: int = 0,
    ) -> int:
        """Simulate one reference issued at time ``now``; return cycles."""
        ...

    def reset(self) -> None:
        """Clear all cache state and counters."""
        ...
