"""repro — reproduction of "Software Assistance for Data Caches"
(O. Temam & N. Drach, HPCA 1995).

The package implements the paper's software-assisted data cache —
virtual lines for spatial locality and a bounce-back cache for temporal
locality, driven by one-bit per-instruction compiler tags — together
with every substrate its evaluation needs: a loop-nest compiler with the
section 2.3 locality analysis, instrumented trace generation, baseline
cache simulators (standard, victim, bypassing), the benchmark suite and
the per-figure experiment drivers.

Quick start::

    from repro import simulate, get_trace

    trace = get_trace("MV")                 # instrumented matrix-vector trace
    standard = simulate("standard", trace)  # preset name, spec or model
    soft = simulate("soft", trace)
    print(standard.amat, "->", soft.amat)

:func:`simulate` is the unified run surface (:mod:`repro.api`): it
accepts a preset name, a :class:`CacheSpec` or a built model, an
in-memory :class:`Trace`, a :class:`TraceStream` or a stored-trace
path, and returns a :class:`SimResult` — or a full
:class:`TelemetryReport` when ``telemetry=`` is given.
"""

from .core import (
    PAPER_SOFT,
    PAPER_STANDARD,
    CacheSpec,
    SoftCacheConfig,
    SoftwareAssistedCache,
)
from . import presets
from .errors import (
    CompilerError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from .api import simulate
from .memtrace import Trace, TraceBuilder, TraceEntry, TraceStore
from .sim import (
    BypassCache,
    CacheGeometry,
    MemoryTiming,
    SimResult,
    StandardCache,
    simulate_many,
    simulate_stream,
)
from .stream import TraceStream, open_trace
from .telemetry import TelemetryReport, TelemetrySpec, analyze
from .workloads import get_trace, suite_traces

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CacheSpec",
    "SoftCacheConfig",
    "SoftwareAssistedCache",
    "PAPER_SOFT",
    "PAPER_STANDARD",
    "presets",
    # simulation
    "CacheGeometry",
    "MemoryTiming",
    "SimResult",
    "StandardCache",
    "BypassCache",
    "simulate",
    "simulate_many",
    "simulate_stream",
    # traces & workloads
    "Trace",
    "TraceBuilder",
    "TraceEntry",
    "TraceStore",
    "TraceStream",
    "open_trace",
    "get_trace",
    "suite_traces",
    # telemetry
    "TelemetryReport",
    "TelemetrySpec",
    "analyze",
    # errors
    "ReproError",
    "ConfigError",
    "TraceError",
    "CompilerError",
    "SimulationError",
]
