"""repro — reproduction of "Software Assistance for Data Caches"
(O. Temam & N. Drach, HPCA 1995).

The package implements the paper's software-assisted data cache —
virtual lines for spatial locality and a bounce-back cache for temporal
locality, driven by one-bit per-instruction compiler tags — together
with every substrate its evaluation needs: a loop-nest compiler with the
section 2.3 locality analysis, instrumented trace generation, baseline
cache simulators (standard, victim, bypassing), the benchmark suite and
the per-figure experiment drivers.

Quick start::

    from repro import presets, simulate, get_trace

    trace = get_trace("MV")                 # instrumented matrix-vector trace
    standard = simulate(presets.standard(), trace)
    soft = simulate(presets.soft(), trace)
    print(standard.amat, "->", soft.amat)
"""

from .core import (
    PAPER_SOFT,
    PAPER_STANDARD,
    CacheSpec,
    SoftCacheConfig,
    SoftwareAssistedCache,
)
from . import presets
from .errors import (
    CompilerError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from .memtrace import Trace, TraceBuilder, TraceEntry, TraceStore
from .sim import (
    BypassCache,
    CacheGeometry,
    MemoryTiming,
    SimResult,
    StandardCache,
    simulate,
    simulate_many,
    simulate_stream,
)
from .stream import TraceStream, open_trace
from .telemetry import TelemetryReport, TelemetrySpec, analyze
from .workloads import get_trace, suite_traces

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CacheSpec",
    "SoftCacheConfig",
    "SoftwareAssistedCache",
    "PAPER_SOFT",
    "PAPER_STANDARD",
    "presets",
    # simulation
    "CacheGeometry",
    "MemoryTiming",
    "SimResult",
    "StandardCache",
    "BypassCache",
    "simulate",
    "simulate_many",
    "simulate_stream",
    # traces & workloads
    "Trace",
    "TraceBuilder",
    "TraceEntry",
    "TraceStore",
    "TraceStream",
    "open_trace",
    "get_trace",
    "suite_traces",
    # telemetry
    "TelemetryReport",
    "TelemetrySpec",
    "analyze",
    # errors
    "ReproError",
    "ConfigError",
    "TraceError",
    "CompilerError",
    "SimulationError",
]
