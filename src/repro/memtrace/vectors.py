"""Spatial-reuse (vector length) analysis of a trace (paper figure 1b).

The paper measures, per static load/store instruction, the *vector length*
of the address stream it issues: the byte span covered by consecutive
accesses of that instruction.  A vector sequence terminates when

* the instruction has not been used for more than 500 references (a value
  much smaller than the average lifetime of a cache line), or
* the stride between two consecutive accesses exceeds 32 bytes (such
  spatial locality would not be exploited by a 32-byte line anyway).

Figure 1b buckets references by the length of the vector they belong to:
<=32 B, 32-64 B, 64-128 B, 128-256 B, 256-512 B, > 512 B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import TraceError
from .trace import Trace

#: Termination rule constants from the paper's footnote 1.
MAX_IDLE_REFS = 500
MAX_STRIDE_BYTES = 32

#: Figure 1b bucket boundaries: (label, inclusive upper bound in bytes).
VECTOR_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("<= 32 B", 32),
    ("32 - 64 B", 64),
    ("64 - 128 B", 128),
    ("128 - 256 B", 256),
    ("256 - 512 B", 512),
    ("> 512 B", float("inf")),
)


def vector_lengths(trace: Trace) -> List[Tuple[int, int]]:
    """Decompose a trace into per-instruction vector sequences.

    Returns a list of ``(length_bytes, n_refs)`` pairs, one per vector
    sequence, where ``length_bytes`` is the span covered by the sequence
    and ``n_refs`` the number of dynamic references it contains.
    """
    if trace.ref_ids is None:
        raise TraceError(
            "vector-length analysis requires a trace with ref_ids "
            "(per-instruction identifiers)"
        )
    addresses = trace.addresses.tolist()
    ref_ids = trace.ref_ids.tolist()
    # Per-instruction open sequence: (last_pos, last_addr, start_addr, count).
    open_seqs: Dict[int, Tuple[int, int, int, int]] = {}
    finished: List[Tuple[int, int]] = []

    def close(seq: Tuple[int, int, int, int]) -> None:
        _, last_addr, start_addr, count = seq
        finished.append((abs(last_addr - start_addr) + 1, count))

    for pos, (addr, rid) in enumerate(zip(addresses, ref_ids)):
        seq = open_seqs.get(rid)
        if seq is not None:
            last_pos, last_addr, start_addr, count = seq
            idle = pos - last_pos
            stride = abs(addr - last_addr)
            if idle > MAX_IDLE_REFS or stride > MAX_STRIDE_BYTES:
                close(seq)
                open_seqs[rid] = (pos, addr, addr, 1)
            else:
                open_seqs[rid] = (pos, addr, start_addr, count + 1)
        else:
            open_seqs[rid] = (pos, addr, addr, 1)
    for seq in open_seqs.values():
        close(seq)
    return finished


def bucket_of(length_bytes: int) -> str:
    """Map a vector length in bytes to its figure 1b bucket label."""
    for label, upper in VECTOR_BUCKETS:
        if length_bytes <= upper:
            return label
    return VECTOR_BUCKETS[-1][0]  # pragma: no cover - inf always matches


@dataclass(frozen=True)
class VectorProfile:
    """Distribution of references across the figure 1b length buckets."""

    name: str
    fractions: Dict[str, float]
    mean_length: float
    total_refs: int

    def fraction(self, label: str) -> float:
        return self.fractions[label]

    def fraction_longer_than(self, length_bytes: int) -> float:
        """Fraction of references in vectors longer than ``length_bytes``."""
        total = 0.0
        for label, upper in VECTOR_BUCKETS:
            if upper > length_bytes:
                total += self.fractions[label]
        return total


def vector_profile(trace: Trace) -> VectorProfile:
    """Compute the figure 1b vector-length distribution of a trace.

    Each dynamic reference is attributed to the bucket of the vector
    sequence it belongs to (the figure weights buckets by references, not
    by sequences).
    """
    sequences = vector_lengths(trace)
    counts = {label: 0 for label, _ in VECTOR_BUCKETS}
    total_refs = 0
    weighted_length = 0.0
    for length_bytes, n_refs in sequences:
        counts[bucket_of(length_bytes)] += n_refs
        total_refs += n_refs
        weighted_length += length_bytes * n_refs
    denominator = max(1, total_refs)
    return VectorProfile(
        name=trace.name,
        fractions={label: c / denominator for label, c in counts.items()},
        mean_length=weighted_length / denominator,
        total_refs=total_refs,
    )
