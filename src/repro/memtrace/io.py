"""Trace persistence.

Traces are expensive to regenerate and the paper's methodology depends
on re-simulating *identical* traces (gaps are recorded in the trace, not
drawn at simulation time).  This module stores traces as compressed
``.npz`` archives with a format version, so experiments can be split
across processes or machines.
"""

from __future__ import annotations

import os
import zipfile
from typing import Union

import numpy as np

from ..errors import TraceError
from .trace import Trace

#: On-disk format version; bump on incompatible changes.  Version 2 is
#: the chunked store directory (:mod:`repro.memtrace.store`); this
#: module remains the v1 single-archive compatibility shim.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write a trace to ``path`` as a compressed npz archive."""
    payload = {
        "version": np.int64(FORMAT_VERSION),
        "fingerprint": np.str_(trace.fingerprint()),
        "name": np.str_(trace.name),
        "addresses": trace.addresses,
        "is_write": trace.is_write,
        "temporal": trace.temporal,
        "spatial": trace.spatial,
        "gaps": trace.gaps,
    }
    if trace.ref_ids is not None:
        payload["ref_ids"] = trace.ref_ids
    np.savez_compressed(path, **payload)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace from any supported on-disk format.

    A v1 ``.npz`` archive (written by :func:`save_trace`) loads
    directly; a v2 chunked store directory is materialised through
    :class:`~repro.memtrace.store.TraceStore` — prefer
    :func:`repro.stream.open_trace` when O(trace) memory is a concern.
    Truncated or corrupt inputs raise :class:`~repro.errors.TraceError`
    (never a bare ``KeyError``/``ValueError``), and the stored
    fingerprint is verified against the loaded columns.
    """
    from .store import TraceStore, is_store

    if is_store(path):
        return TraceStore.open(path).load()
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["version"])
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"trace file {path!s} has format version {version}, "
                    f"expected {FORMAT_VERSION}"
                )
            ref_ids = archive["ref_ids"] if "ref_ids" in archive else None
            trace = Trace(
                archive["addresses"],
                archive["is_write"],
                archive["temporal"],
                archive["spatial"],
                archive["gaps"],
                name=str(archive["name"]),
                ref_ids=ref_ids,
            )
            if "fingerprint" in archive:
                stored = str(archive["fingerprint"])
                if stored != trace.fingerprint():
                    raise TraceError(
                        f"trace file {path!s} is corrupt: stored fingerprint "
                        f"{stored[:12]}… does not match the columns"
                    )
            return trace
    except (
        OSError,
        KeyError,
        ValueError,
        EOFError,
        zipfile.BadZipFile,
    ) as error:
        raise TraceError(f"cannot load trace from {path!s}: {error}") from error
