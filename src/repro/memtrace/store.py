"""Chunked on-disk trace store (format v2).

The v1 ``.npz`` format (:mod:`repro.memtrace.io`) holds a whole trace as
monolithic column arrays: loading is all-or-nothing and memory is
O(trace).  :class:`TraceStore` is the out-of-core replacement: a trace
is a *directory* of fixed-size column chunks plus a JSON manifest::

    store/
        manifest.json            # format, name, refs, chunk table
        chunks/chunk-000000.npz  # column slices of refs [0, chunk_refs)
        chunks/chunk-000001.npz  # ...

Each chunk archive holds the same five (optionally six) columns as a
:class:`~repro.memtrace.trace.Trace`, sliced row-wise, and the manifest
records a per-chunk SHA-256 fingerprint so corruption is detected at the
chunk level.  The manifest also records the *trace-level* fingerprint —
computed to be byte-identical to :meth:`Trace.fingerprint
<repro.memtrace.trace.Trace.fingerprint>` on the materialised trace — so
the sweep engine's content-addressed result cache keys on exactly the
same value whether a trace arrives in memory or as a store (identical
traces always share cache entries).

Writing streams: :meth:`TraceStore.create` returns a
:class:`TraceStoreWriter` that buffers O(chunk) rows and flushes full
chunks as they fill, so converting or ingesting a trace never
materialises more than one chunk.  Reading streams likewise:
:meth:`TraceStore.chunks` yields one in-memory :class:`Trace` per chunk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..errors import TraceError
from .trace import Trace

#: On-disk format version of the chunked store.
STORE_VERSION = 2

#: Default rows per chunk: ~6.8 MB of column data — small enough that a
#: handful of resident chunks stay cache-friendly, large enough that the
#: batch kernels amortise their per-chunk setup.
DEFAULT_CHUNK_REFS = 1 << 18

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Column order; fingerprints depend on it (same order as
#: :meth:`Trace.fingerprint`).
_COLUMNS = ("addresses", "is_write", "temporal", "spatial", "gaps")

_DTYPES = {
    "addresses": np.int64,
    "is_write": bool,
    "temporal": bool,
    "spatial": bool,
    "gaps": np.int64,
    "ref_ids": np.int64,
}

_COMPRESSIONS = ("zlib", "none")


def is_store(path: Union[str, os.PathLike]) -> bool:
    """Whether ``path`` looks like a v2 chunked trace store."""
    return (Path(path) / MANIFEST_NAME).is_file()


def _chunk_fingerprint(columns: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the chunk's column bytes, in canonical column order."""
    digest = hashlib.sha256()
    for name in _COLUMNS:
        digest.update(np.ascontiguousarray(columns[name]).tobytes())
    if "ref_ids" in columns:
        digest.update(np.ascontiguousarray(columns["ref_ids"]).tobytes())
    return digest.hexdigest()


class TraceStore:
    """A chunked, format-versioned on-disk trace (read side).

    Open an existing store with :meth:`open`, write one with
    :meth:`save` (from an in-memory trace) or :meth:`create` (streaming
    writer).  The store is immutable once written.
    """

    def __init__(self, path: Path, manifest: Dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "TraceStore":
        """Open a store directory, validating its manifest."""
        root = Path(path)
        manifest_path = root / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as error:
            raise TraceError(
                f"cannot open trace store at {root}: {error}"
            ) from error
        except ValueError as error:
            raise TraceError(
                f"trace store manifest {manifest_path} is not valid JSON: "
                f"{error}"
            ) from error
        if manifest.get("format") != "trace-store":
            raise TraceError(
                f"{manifest_path} is not a trace-store manifest"
            )
        version = manifest.get("version")
        if version != STORE_VERSION:
            raise TraceError(
                f"trace store {root} has format version {version}, "
                f"expected {STORE_VERSION}"
            )
        for key in ("name", "refs", "chunk_refs", "fingerprint", "chunks"):
            if key not in manifest:
                raise TraceError(
                    f"trace store manifest {manifest_path} is missing "
                    f"required key {key!r}"
                )
        return cls(root, manifest)

    @classmethod
    def save(
        cls,
        trace: Trace,
        path: Union[str, os.PathLike],
        chunk_refs: int = DEFAULT_CHUNK_REFS,
        compression: str = "zlib",
    ) -> "TraceStore":
        """Write an in-memory trace as a chunked store."""
        with cls.create(
            path,
            name=trace.name,
            chunk_refs=chunk_refs,
            compression=compression,
            has_ref_ids=trace.ref_ids is not None,
        ) as writer:
            writer.append_trace(trace)
            # The monolithic fingerprint is already computable in memory;
            # skip the writer's column-streaming re-read.
            writer.set_fingerprint(trace.fingerprint())
        return writer.store

    @classmethod
    def create(
        cls,
        path: Union[str, os.PathLike],
        name: str = "trace",
        chunk_refs: int = DEFAULT_CHUNK_REFS,
        compression: str = "zlib",
        has_ref_ids: bool = False,
    ) -> "TraceStoreWriter":
        """Start a streaming writer (use as a context manager)."""
        return TraceStoreWriter(
            Path(path),
            name=name,
            chunk_refs=chunk_refs,
            compression=compression,
            has_ref_ids=has_ref_ids,
        )

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def chunk_refs(self) -> int:
        return self.manifest["chunk_refs"]

    @property
    def n_chunks(self) -> int:
        return len(self.manifest["chunks"])

    @property
    def has_ref_ids(self) -> bool:
        return bool(self.manifest.get("has_ref_ids", False))

    @property
    def compression(self) -> str:
        return self.manifest.get("compression", "zlib")

    def __len__(self) -> int:
        return self.manifest["refs"]

    def fingerprint(self) -> str:
        """The trace-level content hash — identical to
        ``Trace.fingerprint()`` of the materialised trace, so result
        cache keys do not depend on how the trace is stored."""
        return self.manifest["fingerprint"]

    def describe(self) -> Dict:
        """Flat summary for ``repro trace info`` (no chunk data read)."""
        return {
            "path": str(self.path),
            "format": f"trace-store v{STORE_VERSION}",
            "name": self.name,
            "refs": len(self),
            "chunks": self.n_chunks,
            "chunk_refs": self.chunk_refs,
            "compression": self.compression,
            "has_ref_ids": self.has_ref_ids,
            "fingerprint": self.fingerprint(),
        }

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _chunk_columns(self, index: int, verify: bool) -> Dict[str, np.ndarray]:
        entry = self.manifest["chunks"][index]
        chunk_path = self.path / entry["file"]
        try:
            with np.load(chunk_path, allow_pickle=False) as archive:
                columns = {name: archive[name] for name in _COLUMNS}
                if self.has_ref_ids:
                    columns["ref_ids"] = archive["ref_ids"]
        except Exception as error:  # np.load raises a zoo of types
            raise TraceError(
                f"cannot read chunk {index} of trace store {self.path}: "
                f"{error}"
            ) from error
        if len(columns["addresses"]) != entry["refs"]:
            raise TraceError(
                f"chunk {index} of {self.path} holds "
                f"{len(columns['addresses'])} refs, manifest says "
                f"{entry['refs']}"
            )
        if verify and _chunk_fingerprint(columns) != entry["fingerprint"]:
            raise TraceError(
                f"chunk {index} of trace store {self.path} is corrupt: "
                f"content does not match its manifest fingerprint"
            )
        return columns

    def chunk(self, index: int, verify: bool = True) -> Trace:
        """Materialise one chunk as an in-memory :class:`Trace`."""
        columns = self._chunk_columns(index, verify)
        return Trace(
            columns["addresses"],
            columns["is_write"],
            columns["temporal"],
            columns["spatial"],
            columns["gaps"],
            name=f"{self.name}[{index}]",
            ref_ids=columns.get("ref_ids"),
        )

    def chunks(self, verify: bool = True) -> Iterator[Trace]:
        """Yield every chunk in order; memory stays O(chunk)."""
        for index in range(self.n_chunks):
            yield self.chunk(index, verify=verify)

    def load(self, verify: bool = True) -> Trace:
        """Materialise the whole trace (the monolithic escape hatch).

        The concatenated columns are checked against the manifest's
        trace-level fingerprint, so silent chunk reordering or loss
        cannot produce a plausible-looking trace.
        """
        parts = [self._chunk_columns(i, verify) for i in range(self.n_chunks)]

        def cat(name: str) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=_DTYPES[name])
            return np.concatenate([p[name] for p in parts])

        trace = Trace(
            cat("addresses"),
            cat("is_write"),
            cat("temporal"),
            cat("spatial"),
            cat("gaps"),
            name=self.name,
            ref_ids=cat("ref_ids") if self.has_ref_ids else None,
        )
        if len(trace) != len(self):
            raise TraceError(
                f"trace store {self.path} materialised {len(trace)} refs, "
                f"manifest says {len(self)}"
            )
        if verify and trace.fingerprint() != self.fingerprint():
            raise TraceError(
                f"trace store {self.path} is corrupt: materialised trace "
                f"does not match the manifest fingerprint "
                f"{self.fingerprint()[:12]}…"
            )
        return trace


class TraceStoreWriter:
    """Streaming writer: buffers O(chunk) rows, flushes full chunks.

    Usage::

        with TraceStore.create(path, name="t") as writer:
            writer.append_block(addresses, is_write, temporal, spatial, gaps)
        store = writer.store

    On :meth:`close` the manifest is finalised; unless the caller
    supplied the trace-level fingerprint (:meth:`set_fingerprint`, used
    when the whole trace was in memory anyway), it is computed by
    streaming each column across the written chunks — O(chunk) memory,
    byte-identical to ``Trace.fingerprint()``.
    """

    def __init__(
        self,
        path: Path,
        name: str,
        chunk_refs: int,
        compression: str,
        has_ref_ids: bool,
    ) -> None:
        if chunk_refs < 1:
            raise TraceError(f"chunk_refs must be >= 1: {chunk_refs}")
        if compression not in _COMPRESSIONS:
            raise TraceError(
                f"compression {compression!r} not in {_COMPRESSIONS}"
            )
        self.path = Path(path)
        self.name = name
        self.chunk_refs = chunk_refs
        self.compression = compression
        self.has_ref_ids = has_ref_ids
        self.store: Optional[TraceStore] = None
        self._refs = 0
        self._chunk_entries: List[Dict] = []
        self._buffer: Dict[str, List[np.ndarray]] = {
            name: [] for name in self._column_names()
        }
        self._buffered = 0
        self._fingerprint: Optional[str] = None
        self._closed = False
        (self.path / "chunks").mkdir(parents=True, exist_ok=True)

    def _column_names(self) -> List[str]:
        names = list(_COLUMNS)
        if self.has_ref_ids:
            names.append("ref_ids")
        return names

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_block(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        temporal: np.ndarray,
        spatial: np.ndarray,
        gaps: np.ndarray,
        ref_ids: Optional[np.ndarray] = None,
    ) -> None:
        """Append parallel column arrays (any length, any alignment)."""
        block = {
            "addresses": np.asarray(addresses, dtype=np.int64),
            "is_write": np.asarray(is_write, dtype=bool),
            "temporal": np.asarray(temporal, dtype=bool),
            "spatial": np.asarray(spatial, dtype=bool),
            "gaps": np.asarray(gaps, dtype=np.int64),
        }
        if self.has_ref_ids:
            if ref_ids is None:
                raise TraceError(
                    "store was created with has_ref_ids=True but the "
                    "appended block has none"
                )
            block["ref_ids"] = np.asarray(ref_ids, dtype=np.int64)
        n = len(block["addresses"])
        for label, column in block.items():
            if len(column) != n:
                raise TraceError(
                    f"append_block: column {label!r} has length "
                    f"{len(column)}, expected {n}"
                )
        for label, column in block.items():
            self._buffer[label].append(column)
        self._buffered += n
        while self._buffered >= self.chunk_refs:
            self._flush_chunk(self.chunk_refs)

    def append_trace(self, trace: Trace) -> None:
        """Append a whole in-memory trace."""
        self.append_block(
            trace.addresses,
            trace.is_write,
            trace.temporal,
            trace.spatial,
            trace.gaps,
            ref_ids=trace.ref_ids,
        )

    def set_fingerprint(self, fingerprint: str) -> None:
        """Supply the trace-level fingerprint, skipping the closing
        column-streaming pass (caller vouches it is
        ``Trace.fingerprint()`` of the appended rows)."""
        self._fingerprint = fingerprint

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _take(self, count: int) -> Dict[str, np.ndarray]:
        """Remove the first ``count`` buffered rows, column by column."""
        taken: Dict[str, np.ndarray] = {}
        for label, blocks in self._buffer.items():
            merged = (
                np.concatenate(blocks)
                if len(blocks) != 1
                else blocks[0]
            )
            taken[label] = merged[:count]
            rest = merged[count:]
            self._buffer[label] = [rest] if len(rest) else []
        self._buffered -= count
        return taken

    def _flush_chunk(self, count: int) -> None:
        columns = self._take(count)
        index = len(self._chunk_entries)
        relative = f"chunks/chunk-{index:06d}.npz"
        target = self.path / relative
        save = np.savez_compressed if self.compression == "zlib" else np.savez
        # Atomic publish so a crashed writer never leaves a half chunk
        # that a later open would read.
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                save(handle, **columns)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._chunk_entries.append(
            {
                "file": relative,
                "refs": count,
                "fingerprint": _chunk_fingerprint(columns),
            }
        )
        self._refs += count

    def _stream_fingerprint(self) -> str:
        """Compute ``Trace.fingerprint()`` of the written rows without
        materialising them: one pass per column across the chunks."""
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        for label in self._column_names():
            for index in range(len(self._chunk_entries)):
                chunk_path = self.path / self._chunk_entries[index]["file"]
                with np.load(chunk_path, allow_pickle=False) as archive:
                    digest.update(
                        np.ascontiguousarray(archive[label]).tobytes()
                    )
        return digest.hexdigest()

    def close(self) -> TraceStore:
        """Flush the tail chunk and publish the manifest."""
        if self._closed:
            return self.store
        if self._buffered:
            self._flush_chunk(self._buffered)
        if self._fingerprint is None:
            self._fingerprint = self._stream_fingerprint()
        manifest = {
            "format": "trace-store",
            "version": STORE_VERSION,
            "name": self.name,
            "refs": self._refs,
            "chunk_refs": self.chunk_refs,
            "compression": self.compression,
            "has_ref_ids": self.has_ref_ids,
            "fingerprint": self._fingerprint,
            "chunks": self._chunk_entries,
        }
        manifest_path = self.path / MANIFEST_NAME
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path), prefix=".tmp-", suffix=".json"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, manifest_path)
        self._closed = True
        self.store = TraceStore(self.path, manifest)
        return self.store

    def __enter__(self) -> "TraceStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
