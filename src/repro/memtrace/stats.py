"""Instrumentation statistics (paper figure 4).

Figure 4a reports, per benchmark, the fraction of trace entries carrying
each combination of software tags (temporal x spatial).  Figure 4b is the
inter-reference time histogram; :func:`gap_histogram` recovers it from a
generated trace so the timing model can be validated round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .timing import FIG4B_DISTRIBUTION, GapDistribution
from .trace import Trace

#: Figure 4a category labels, in the paper's stacking order.
TAG_CATEGORIES = (
    "no temporal, no spatial",
    "no temporal, spatial",
    "temporal, no spatial",
    "temporal, spatial",
)


@dataclass(frozen=True)
class TagProfile:
    """Fractions of references per tag combination (figure 4a)."""

    name: str
    fractions: Dict[str, float]

    @property
    def temporal_fraction(self) -> float:
        """Fraction of references with the temporal tag set."""
        return (
            self.fractions["temporal, no spatial"]
            + self.fractions["temporal, spatial"]
        )

    @property
    def spatial_fraction(self) -> float:
        """Fraction of references with the spatial tag set."""
        return (
            self.fractions["no temporal, spatial"]
            + self.fractions["temporal, spatial"]
        )

    @property
    def untagged_fraction(self) -> float:
        """Fraction of references carrying no tag at all."""
        return self.fractions["no temporal, no spatial"]


def tag_profile(trace: Trace) -> TagProfile:
    """Compute the figure 4a tag breakdown for a trace."""
    n = max(1, len(trace))
    temporal = trace.temporal
    spatial = trace.spatial
    counts = {
        "no temporal, no spatial": int((~temporal & ~spatial).sum()),
        "no temporal, spatial": int((~temporal & spatial).sum()),
        "temporal, no spatial": int((temporal & ~spatial).sum()),
        "temporal, spatial": int((temporal & spatial).sum()),
    }
    return TagProfile(name=trace.name, fractions={k: v / n for k, v in counts.items()})


def gap_histogram(
    trace: Trace, distribution: GapDistribution = FIG4B_DISTRIBUTION
) -> Dict[int, float]:
    """Histogram of the trace's inter-reference gaps (figure 4b).

    Buckets follow the supplied distribution's support, so a trace
    generated from :data:`FIG4B_DISTRIBUTION` should reproduce its
    probabilities up to sampling noise.
    """
    return distribution.histogram(trace.gaps.tolist())
