"""Inter-reference timing model (paper section 3.1, figure 4b).

Source-code tracing cannot recover the number of cycles between two
references, so the paper measures the distribution of time distances
between consecutive load/store instructions with Spa on real traces, and
then *randomly draws* a gap from that distribution for each trace entry
("a time distance is randomly generated for each new trace entry,
according to that distribution").  Crucially the gap is recorded *in the
trace*, so repeated simulations of the same trace are identical.

:data:`FIG4B_DISTRIBUTION` approximates the histogram of figure 4b: most
load/stores are 1-2 cycles apart (the paper pessimistically counts every
instruction as one cycle), with a tail out past 20 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class GapDistribution:
    """A discrete distribution of inter-reference gaps (cycles).

    Parameters
    ----------
    values
        The possible gap values, in cycles.
    weights
        Relative probability of each value; normalised internally.
    """

    values: Tuple[int, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ConfigError("values and weights must have the same length")
        if not self.values:
            raise ConfigError("gap distribution must not be empty")
        if any(v < 0 for v in self.values):
            raise ConfigError("gap values must be non-negative")
        if any(w < 0 for w in self.weights):
            raise ConfigError("gap weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ConfigError("gap weights must not all be zero")

    @property
    def probabilities(self) -> np.ndarray:
        """Normalised probabilities aligned with :attr:`values`."""
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def mean(self) -> float:
        """Expected gap in cycles."""
        return float(np.dot(self.values, self.probabilities))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` gaps using the supplied (seeded) generator."""
        if n < 0:
            raise ConfigError(f"cannot sample a negative count: {n}")
        return rng.choice(
            np.asarray(self.values, dtype=np.int64), size=n, p=self.probabilities
        )

    def histogram(self, gaps: Sequence[int]) -> Dict[int, float]:
        """Fraction of ``gaps`` falling on each distribution value.

        Gaps not equal to any distribution value are attributed to the
        nearest larger value (or the largest value), mirroring the binning
        of figure 4b where the last bucket is "> 20 cycles".
        """
        counts = {v: 0 for v in self.values}
        ordered = sorted(self.values)
        for g in gaps:
            for v in ordered:
                if g <= v:
                    counts[v] += 1
                    break
            else:
                counts[ordered[-1]] += 1
        total = max(1, len(gaps))
        return {v: c / total for v, c in counts.items()}


#: Approximation of the figure 4b histogram: the bulk of consecutive
#: load/stores are 1-5 cycles apart, with buckets at 10, 15, 20 and a
#: ">20" tail (represented by 25 cycles).
FIG4B_DISTRIBUTION = GapDistribution(
    values=(1, 2, 3, 4, 5, 10, 15, 20, 25),
    weights=(0.38, 0.22, 0.12, 0.08, 0.06, 0.06, 0.03, 0.03, 0.02),
)

#: A degenerate distribution used by unit tests and analyses that do not
#: care about time (every reference one cycle after the previous one).
UNIT_GAPS = GapDistribution(values=(1,), weights=(1.0,))


def draw_gaps(
    n: int,
    distribution: GapDistribution = FIG4B_DISTRIBUTION,
    seed: int = 0,
) -> np.ndarray:
    """Convenience wrapper: draw ``n`` gaps with a fresh seeded generator."""
    rng = np.random.default_rng(seed)
    return distribution.sample(n, rng)
