"""Memory reference traces.

The paper drives its cache simulator from *instrumented source-code traces*:
each array reference in the benchmark source is replaced by a call to a
tracing subroutine that records ``(reference, read/write, temporal bit,
spatial bit)`` plus a randomly drawn inter-reference time gap (paper, fig 5
and section 3.1).  :class:`Trace` is the in-memory equivalent: a column-major
(numpy-backed) sequence of such entries.

Columns
-------
address
    Byte address of the reference.
is_write
    True for stores.
temporal / spatial
    The per-instruction software locality tags of section 2.3.
gap
    Cycles elapsed since the previous reference (the fig 4b time model).
ref_id (optional)
    Identifier of the static load/store instruction that issued the
    reference.  Needed only by the figure 1b vector-length analysis, which
    groups dynamic references by static instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TraceError

#: Size, in bytes, of one data word.  The paper works in double-precision
#: floating point, so a word is 8 bytes (a 32-byte line holds 4 words).
WORD_SIZE = 8


@dataclass(frozen=True)
class TraceEntry:
    """A single traced memory reference."""

    address: int
    is_write: bool = False
    temporal: bool = False
    spatial: bool = False
    gap: int = 1

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"negative address: {self.address}")
        if self.gap < 0:
            raise TraceError(f"negative time gap: {self.gap}")


class Trace:
    """An immutable sequence of traced references with column access.

    Simulators iterate traces millions of times, so the columns are stored
    as numpy arrays and exposed as plain Python lists (:meth:`columns`) for
    the hot simulation loop.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        temporal: np.ndarray,
        spatial: np.ndarray,
        gaps: np.ndarray,
        name: str = "trace",
        ref_ids: np.ndarray = None,
    ) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        temporal = np.asarray(temporal, dtype=bool)
        spatial = np.asarray(spatial, dtype=bool)
        gaps = np.asarray(gaps, dtype=np.int64)
        n = len(addresses)
        for label, col in (
            ("is_write", is_write),
            ("temporal", temporal),
            ("spatial", spatial),
            ("gaps", gaps),
        ):
            if len(col) != n:
                raise TraceError(
                    f"column {label!r} has length {len(col)}, expected {n}"
                )
        if n and addresses.min() < 0:
            raise TraceError("trace contains negative addresses")
        if n and gaps.min() < 0:
            raise TraceError("trace contains negative time gaps")
        if ref_ids is not None:
            ref_ids = np.asarray(ref_ids, dtype=np.int64)
            if len(ref_ids) != n:
                raise TraceError(
                    f"column 'ref_ids' has length {len(ref_ids)}, expected {n}"
                )
        self.ref_ids = ref_ids
        self.addresses = addresses
        self.is_write = is_write
        self.temporal = temporal
        self.spatial = spatial
        self.gaps = gaps
        self.name = name
        self._fingerprint = None
        self._columns_list = None

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[TraceEntry]:
        for a, w, t, s, g in zip(
            self.addresses, self.is_write, self.temporal, self.spatial, self.gaps
        ):
            yield TraceEntry(int(a), bool(w), bool(t), bool(s), int(g))

    def __getitem__(self, i: int) -> TraceEntry:
        return TraceEntry(
            int(self.addresses[i]),
            bool(self.is_write[i]),
            bool(self.temporal[i]),
            bool(self.spatial[i]),
            int(self.gaps[i]),
        )

    def columns(self) -> Tuple[List[int], List[bool], List[bool], List[bool], List[int]]:
        """Return the five columns as fresh plain Python lists."""
        return (
            self.addresses.tolist(),
            self.is_write.tolist(),
            self.temporal.tolist(),
            self.spatial.tolist(),
            self.gaps.tolist(),
        )

    def columns_list(
        self,
    ) -> Tuple[List[int], List[bool], List[bool], List[bool], List[int]]:
        """The five columns as plain Python lists, materialised once.

        The ``.tolist()`` conversion turns numpy scalars into native ints
        and bools, which the per-reference simulation loop consumes far
        faster than numpy scalar extraction.  The conversion is cached so
        ``simulate_many`` and the sweep/hierarchy drivers pay it once per
        trace rather than once per model.  Callers must treat the lists
        as read-only (traces are immutable by convention).
        """
        if self._columns_list is None:
            self._columns_list = self.columns()
        return self._columns_list

    def fingerprint(self) -> str:
        """Stable content hash over every column plus the name (hex).

        Used as the trace component of the on-disk sweep result-cache key
        and as an integrity check in the ``.npz`` persistence layer.  The
        hash is computed once per trace object (the columns are
        immutable by convention).
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(self.name.encode())
            for column in (
                self.addresses, self.is_write, self.temporal,
                self.spatial, self.gaps,
            ):
                digest.update(np.ascontiguousarray(column).tobytes())
            if self.ref_ids is not None:
                digest.update(np.ascontiguousarray(self.ref_ids).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def with_tags_cleared(self, temporal: bool = True, spatial: bool = True) -> "Trace":
        """Return a copy with temporal and/or spatial tags cleared.

        Used to model a cache without software assistance (tags ignored) or
        the single-mechanism configurations of figure 6a.
        """
        return Trace(
            self.addresses,
            self.is_write,
            np.zeros_like(self.temporal) if temporal else self.temporal,
            np.zeros_like(self.spatial) if spatial else self.spatial,
            self.gaps,
            name=self.name,
            ref_ids=self.ref_ids,
        )

    def concat(self, other: "Trace", name: str = "") -> "Trace":
        """Concatenate two traces (the second follows the first in time)."""
        ref_ids = None
        if self.ref_ids is not None and other.ref_ids is not None:
            # Keep instruction identities distinct across the two traces.
            shift = int(self.ref_ids.max()) + 1 if len(self.ref_ids) else 0
            ref_ids = np.concatenate([self.ref_ids, other.ref_ids + shift])
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.is_write, other.is_write]),
            np.concatenate([self.temporal, other.temporal]),
            np.concatenate([self.spatial, other.spatial]),
            np.concatenate([self.gaps, other.gaps]),
            name=name or f"{self.name}+{other.name}",
            ref_ids=ref_ids,
        )

    @staticmethod
    def from_entries(entries: Iterable[TraceEntry], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of :class:`TraceEntry`."""
        rows = list(entries)
        return Trace(
            np.array([e.address for e in rows], dtype=np.int64),
            np.array([e.is_write for e in rows], dtype=bool),
            np.array([e.temporal for e in rows], dtype=bool),
            np.array([e.spatial for e in rows], dtype=bool),
            np.array([e.gap for e in rows], dtype=np.int64),
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, refs={len(self)})"


class TraceBuilder:
    """Incrementally accumulate trace entries, then :meth:`freeze`.

    Workload generators append whole numpy blocks (vectorised generation)
    or single references; the builder concatenates them once at the end.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._addr: List[np.ndarray] = []
        self._write: List[np.ndarray] = []
        self._temporal: List[np.ndarray] = []
        self._spatial: List[np.ndarray] = []
        self._gaps: List[np.ndarray] = []
        self._ref_ids: List[np.ndarray] = []

    def append(
        self,
        address: int,
        is_write: bool = False,
        temporal: bool = False,
        spatial: bool = False,
        gap: int = 1,
        ref_id: int = 0,
    ) -> None:
        """Append one reference."""
        self.append_block(
            np.array([address], dtype=np.int64),
            np.array([is_write]),
            np.array([temporal]),
            np.array([spatial]),
            np.array([gap], dtype=np.int64),
            np.array([ref_id], dtype=np.int64),
        )

    def append_block(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        temporal: np.ndarray,
        spatial: np.ndarray,
        gaps: np.ndarray,
        ref_ids: np.ndarray = None,
    ) -> None:
        """Append a block of references given as parallel arrays."""
        n = len(addresses)
        cols = (is_write, temporal, spatial, gaps)
        if any(len(c) != n for c in cols):
            raise TraceError("append_block: column length mismatch")
        if ref_ids is None:
            ref_ids = np.zeros(n, dtype=np.int64)
        elif len(ref_ids) != n:
            raise TraceError("append_block: ref_ids length mismatch")
        self._addr.append(np.asarray(addresses, dtype=np.int64))
        self._write.append(np.asarray(is_write, dtype=bool))
        self._temporal.append(np.asarray(temporal, dtype=bool))
        self._spatial.append(np.asarray(spatial, dtype=bool))
        self._gaps.append(np.asarray(gaps, dtype=np.int64))
        self._ref_ids.append(np.asarray(ref_ids, dtype=np.int64))

    def __len__(self) -> int:
        return sum(len(block) for block in self._addr)

    def freeze(self) -> Trace:
        """Concatenate everything appended so far into an immutable Trace."""
        if not self._addr:
            empty = np.empty(0, dtype=np.int64)
            return Trace(empty, empty.astype(bool), empty.astype(bool),
                         empty.astype(bool), empty, name=self.name,
                         ref_ids=empty)
        return Trace(
            np.concatenate(self._addr),
            np.concatenate(self._write),
            np.concatenate(self._temporal),
            np.concatenate(self._spatial),
            np.concatenate(self._gaps),
            name=self.name,
            ref_ids=np.concatenate(self._ref_ids),
        )
