"""Memory-trace substrate: trace containers, timing model and analyses.

This package is the reproduction of the paper's tracing methodology
(section 3.1): instrumented source-code traces carrying per-reference
software tags and randomly drawn inter-reference time gaps, plus the
locality analyses behind figures 1 and 4.
"""

from .io import load_trace, save_trace
from .lifetime import LifetimeProfile, lifetime_profile, line_lifetimes
from .store import DEFAULT_CHUNK_REFS, STORE_VERSION, TraceStore, is_store
from .reuse import (
    REUSE_BUCKETS,
    ReuseProfile,
    forward_reuse_distances,
    fraction_beyond,
    reuse_profile,
)
from .stats import TAG_CATEGORIES, TagProfile, gap_histogram, tag_profile
from .timing import FIG4B_DISTRIBUTION, UNIT_GAPS, GapDistribution, draw_gaps
from .trace import WORD_SIZE, Trace, TraceBuilder, TraceEntry
from .vectors import (
    VECTOR_BUCKETS,
    VectorProfile,
    vector_lengths,
    vector_profile,
)

__all__ = [
    "save_trace",
    "load_trace",
    "DEFAULT_CHUNK_REFS",
    "STORE_VERSION",
    "TraceStore",
    "is_store",
    "LifetimeProfile",
    "lifetime_profile",
    "line_lifetimes",
    "WORD_SIZE",
    "Trace",
    "TraceBuilder",
    "TraceEntry",
    "GapDistribution",
    "FIG4B_DISTRIBUTION",
    "UNIT_GAPS",
    "draw_gaps",
    "REUSE_BUCKETS",
    "ReuseProfile",
    "forward_reuse_distances",
    "fraction_beyond",
    "reuse_profile",
    "VECTOR_BUCKETS",
    "VectorProfile",
    "vector_lengths",
    "vector_profile",
    "TAG_CATEGORIES",
    "TagProfile",
    "tag_profile",
    "gap_histogram",
]
