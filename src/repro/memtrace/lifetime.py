"""Cache-line lifetime measurement (paper section 1).

The paper's motivating arithmetic: "the average lifetime of a cache
line in a 8-kbyte cache with a 32-byte cache line is approximately equal
to 2500 references", against which the observed reuse distances (often
beyond 1000) show temporal reuse being destroyed by pollution.  This
module measures that lifetime directly on a trace — the number of
references between a line's fill and its eviction in a standard cache —
so the constant the temporal argument rests on can be validated per
benchmark instead of assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..sim.geometry import CacheGeometry
from .trace import Trace


@dataclass(frozen=True)
class LifetimeProfile:
    """Distribution summary of line lifetimes, in references."""

    name: str
    evictions: int
    mean: float
    median: float
    still_resident: int

    def __str__(self) -> str:
        return (
            f"{self.name}: mean lifetime {self.mean:.0f} refs over "
            f"{self.evictions} evictions"
        )


def line_lifetimes(
    trace: Trace, geometry: Optional[CacheGeometry] = None
) -> List[int]:
    """Lifetime (fill-to-eviction, in references) of every evicted line.

    Uses an LRU cache of the given geometry (default: the paper's 8 KB /
    32 B direct-mapped standard cache).  Lines still resident at the end
    of the trace are not included.
    """
    geometry = geometry or CacheGeometry(8 * 1024, 32, 1)
    shift = geometry.line_shift
    n_sets = geometry.n_sets
    ways = geometry.ways
    # Per-set MRU-first [line_address, birth_position] entries.
    sets: List[List[List[int]]] = [[] for _ in range(n_sets)]
    lifetimes: List[int] = []
    for position, address in enumerate(trace.addresses.tolist()):
        la = address >> shift
        entries = sets[la % n_sets]
        for i, entry in enumerate(entries):
            if entry[0] == la:
                if i:
                    del entries[i]
                    entries.insert(0, entry)
                break
        else:
            if len(entries) >= ways:
                victim = entries.pop()
                lifetimes.append(position - victim[1])
            entries.insert(0, [la, position])
    return lifetimes


def lifetime_profile(
    trace: Trace, geometry: Optional[CacheGeometry] = None
) -> LifetimeProfile:
    """Mean/median line lifetime of a trace under the given geometry."""
    geometry = geometry or CacheGeometry(8 * 1024, 32, 1)
    lifetimes = sorted(line_lifetimes(trace, geometry))
    resident_bound = geometry.n_lines
    if not lifetimes:
        return LifetimeProfile(trace.name, 0, 0.0, 0.0, resident_bound)
    return LifetimeProfile(
        name=trace.name,
        evictions=len(lifetimes),
        mean=sum(lifetimes) / len(lifetimes),
        median=float(lifetimes[len(lifetimes) // 2]),
        still_resident=resident_bound,
    )
