"""Temporal-reuse analysis of a trace (paper figure 1a).

For every dynamic reference we compute its *forward reuse distance*: the
number of intervening references until the same data word is referenced
again.  References whose word is never referenced again fall in the
"no reuse" category (the paper's "0 corresponds to data referenced only
once").  Figure 1a buckets these distances as: no reuse, 1-10^2,
10^2-10^3, 10^3-10^4, > 10^4 references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .trace import Trace, WORD_SIZE

#: Figure 1a bucket boundaries: (label, inclusive upper bound on distance).
REUSE_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("no reuse", 0),
    ("1 - 10^2", 100),
    ("10^2 - 10^3", 1_000),
    ("10^3 - 10^4", 10_000),
    ("> 10^4", float("inf")),
)


def forward_reuse_distances(trace: Trace, granularity: int = WORD_SIZE) -> np.ndarray:
    """Per-reference forward reuse distance at ``granularity`` bytes.

    Returns an int64 array aligned with the trace; ``-1`` marks references
    whose datum is never referenced again.
    """
    words = (trace.addresses // granularity).tolist()
    n = len(words)
    distances = np.full(n, -1, dtype=np.int64)
    next_use: Dict[int, int] = {}
    # Walk backwards: the next use of a word seen at position i is the last
    # recorded position for that word.
    for i in range(n - 1, -1, -1):
        w = words[i]
        j = next_use.get(w)
        if j is not None:
            distances[i] = j - i
        next_use[w] = i
    return distances


@dataclass(frozen=True)
class ReuseProfile:
    """Distribution of references across the figure 1a reuse buckets."""

    name: str
    fractions: Dict[str, float]
    mean_distance: float
    total_refs: int

    def fraction(self, label: str) -> float:
        return self.fractions[label]


def bucket_of(distance: int) -> str:
    """Map a forward reuse distance to its figure 1a bucket label."""
    if distance < 0:
        return REUSE_BUCKETS[0][0]
    for label, upper in REUSE_BUCKETS[1:]:
        if distance <= upper:
            return label
    return REUSE_BUCKETS[-1][0]  # pragma: no cover - inf always matches


def reuse_profile(trace: Trace, granularity: int = WORD_SIZE) -> ReuseProfile:
    """Compute the figure 1a reuse-distance distribution of a trace."""
    distances = forward_reuse_distances(trace, granularity)
    n = max(1, len(distances))
    counts = {label: 0 for label, _ in REUSE_BUCKETS}
    for d in distances.tolist():
        counts[bucket_of(d)] += 1
    reused = distances[distances >= 0]
    mean = float(reused.mean()) if len(reused) else 0.0
    return ReuseProfile(
        name=trace.name,
        fractions={label: c / n for label, c in counts.items()},
        mean_distance=mean,
        total_refs=len(distances),
    )


def fraction_beyond(trace: Trace, distance: int, granularity: int = WORD_SIZE) -> float:
    """Fraction of references reused, but only after more than ``distance``.

    The paper observes that reuse distances are often larger than the
    average lifetime of a cache line (~2500 references for 8 KB / 32 B),
    i.e. temporal reuse is likely to be destroyed by pollution.
    """
    distances = forward_reuse_distances(trace, granularity)
    if not len(distances):
        return 0.0
    return float(np.count_nonzero(distances > distance) / len(distances))
