"""Slalom — modelled after the SLALOM benchmark's dense solver phase.

SLALOM spends its time in a dense Gaussian factorisation of the
radiosity matrix.  The model is the right-looking update that dominates
it::

    DO k = 0,K-1                ! elimination steps
       DO j = k+1,N-1           ! remaining columns
          DO i = k+1,N-1        ! remaining rows
             A(i,j) -= A(i,k) * A(k,j)
          ENDDO
       ENDDO
    ENDDO

(The triangularity is approximated by rectangular loops over the
trailing submatrix — the locality structure, not the flop count, is what
the cache sees.)  ``A(i,k)`` is a stride-one column reused across all
``j`` (temporal + spatial); ``A(k,j)`` is invariant in the inner loop
(temporal); the ``A(i,j)`` read/write pair is a uniformly generated
group.  The matrix itself is several times the cache size, so the pivot
column keeps getting flushed between uses — bounce-back territory —
while the ``A(i,j)`` sweep wants virtual lines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, Program, nest, var

#: Sizes per scale: (matrix_order, elimination_steps).
SLALOM_SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (24, 2),
    "test": (60, 3),
    "paper": (112, 4),
}


def slalom_program(scale: str = "paper") -> Program:
    """The dense right-looking factorisation update of SLALOM."""
    if scale not in SLALOM_SCALES:
        raise ConfigError(f"unknown Slalom scale {scale!r}")
    n, steps = SLALOM_SCALES[scale]
    i, j, k = var("i"), var("j"), var("k")
    arrays = [Array("A", (n, n))]
    update = nest(
        [Loop("k", 0, steps), Loop("j", 1, n), Loop("i", 1, n)],
        body=[
            ArrayRef("A", (i, k)),
            ArrayRef("A", (k, j)),
            ArrayRef("A", (i, j)),
            ArrayRef("A", (i, j), is_write=True),
        ],
        name="slalom-update",
    )
    return Program("Slalom", arrays, [update])
