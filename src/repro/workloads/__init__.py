"""The paper's benchmark suite, modelled as loop-nest programs."""

from .blocked import FIG11B_LEADING_DIMS, blocked_mm_program
from .dense import FIG11A_BLOCK_SIZES, blocked_mv_program, mv_program
from .livermore import liv_program
from .nas import nas_program
from .perfect import perfect_kernel, perfect_program
from .registry import (
    BENCHMARK_ORDER,
    KERNEL_ORDER,
    benchmark_names,
    build_program,
    get_blocked_mm_trace,
    get_blocked_mv_trace,
    get_kernel_trace,
    get_trace,
    suite_traces,
)
from .slalom import slalom_program
from .sparse import spmv_program

__all__ = [
    "BENCHMARK_ORDER",
    "KERNEL_ORDER",
    "FIG11A_BLOCK_SIZES",
    "FIG11B_LEADING_DIMS",
    "benchmark_names",
    "build_program",
    "get_trace",
    "get_kernel_trace",
    "get_blocked_mv_trace",
    "get_blocked_mm_trace",
    "suite_traces",
    "mv_program",
    "blocked_mv_program",
    "blocked_mm_program",
    "spmv_program",
    "liv_program",
    "nas_program",
    "slalom_program",
    "perfect_program",
    "perfect_kernel",
]
