"""Sparse matrix-vector multiply (section 4.1: scarce locality)::

    DO j1 = 0,N-1
       reg = Y(j1)
       DO j2 = D(j1), D(j1+1)-1
          reg += A(j2) * X(Index(j2))
       ENDDO
       Y(j1) = reg
    ENDDO

The reuse of ``X`` is *scarce*: each element is reused only as many
times as its row has non-zeros (10-80 in 3-D problems), at large,
randomised distances — indirect addressing defeats any compile-time
analysis.  Section 4.1's answer is user directives: ``X`` is tagged
temporal by hand; the compiler still tags ``A`` and ``Index`` spatial
(stride one) and non-temporal, so they never pollute past the
bounce-back cache.

The synthetic matrix has a fixed number of non-zeros per column, which
makes the nest rectangular (``A``/``Index`` positions are affine in
``(j1, j2)``), with the row indices drawn uniformly — mimicking the
randomised access pattern of an unstructured 3-D mesh.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, Program, nest, var

#: Sizes per scale: (n_rows, nnz_per_column, n_columns_swept).
SPMV_SCALES: Dict[str, Tuple[int, int, int]] = {
    "tiny": (128, 4, 64),
    "test": (1000, 8, 250),
    "paper": (3000, 12, 2500),
}


def spmv_program(scale: str = "paper", seed: int = 12345) -> Program:
    """Sparse matrix-vector multiply with user-directive tags on ``X``."""
    if scale not in SPMV_SCALES:
        raise ConfigError(f"unknown SpMV scale {scale!r}")
    n_rows, nnz, n_cols = SPMV_SCALES[scale]
    rng = np.random.default_rng(seed)
    # Row index of every stored element, column-by-column.  Unstructured
    # 3-D meshes are banded: a column's non-zeros scatter around the
    # diagonal within the mesh bandwidth, so reuses of an X element
    # cluster over a window of nearby columns (randomised within it).
    band = max(4, n_rows // 5)
    diag = (np.arange(n_cols) * n_rows) // n_cols
    jitter = rng.integers(-band // 2, band // 2 + 1, size=(n_cols, nnz))
    index = np.clip(diag[:, None] + jitter, 0, n_rows - 1)
    index.sort(axis=1)
    table = tuple(int(v) for v in index.reshape(-1))

    j1, j2 = var("j1"), var("j2")
    position = j1 * nnz + j2
    arrays = [
        Array("Y", (n_cols,)),
        Array("D", (n_cols + 1,)),
        Array("A", (n_cols * nnz,)),
        Array("Index", (n_cols * nnz,)),
        Array("X", (n_rows,)),
    ]
    loop = nest(
        [Loop("j1", 0, n_cols), Loop("j2", 0, nnz)],
        body=[
            ArrayRef("Index", (position,)),
            ArrayRef("A", (position,)),
            # Scarce locality: the user directive forces the temporal tag
            # the compiler cannot derive through the indirection.
            ArrayRef("X", (position,), indirect=table, temporal=True),
        ],
        pre=[
            ArrayRef("D", (j1,)),
            ArrayRef("D", (j1 + 1,)),
            ArrayRef("Y", (j1,)),
        ],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="spmv",
    )
    return Program("SpMV", arrays, [loop])
