"""NAS — modelled after the NAS kernel benchmarks (MG-style relaxation).

The dominant phase is a five-point relaxation sweep over a 2-D grid much
larger than the cache, plus a residual-norm reduction pass.  Nearly
every reference is stride one with long vector lengths, so the NAS entry
of figure 1b is dominated by long vectors and its figure 6a gains come
mostly from the virtual-line mechanism (compulsory/capacity misses on
vector accesses).

The five stencil taps on ``U`` are uniformly generated (constants
``-n, -1, 0, +1, +n`` over the same linear form ``i + n*j``), giving all
of them the temporal tag; the leader ``U(i,j+1)`` keeps the spatial tag
while the trailing taps ride on its fetches.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, Program, nest, var

#: Sizes per scale: (grid_edge, sweeps).
NAS_SCALES: Dict[str, Tuple[int, int]] = {
    # Odd grid edges keep U and R from landing cache-size-aligned (a
    # power-of-two grid would make every U(i,j)/R(i,j) pair collide).
    "tiny": (25, 1),
    "test": (67, 1),
    "paper": (171, 1),
}


def nas_program(scale: str = "paper") -> Program:
    """Relaxation sweep plus residual reduction over an out-of-cache grid."""
    if scale not in NAS_SCALES:
        raise ConfigError(f"unknown NAS scale {scale!r}")
    n, sweeps = NAS_SCALES[scale]
    i, j = var("i"), var("j")
    arrays = [Array("U", (n, n)), Array("R", (n, n))]

    relax = nest(
        [Loop("j", 1, n - 1), Loop("i", 1, n - 1)],
        body=[
            ArrayRef("U", (i - 1, j)),
            ArrayRef("U", (i, j)),
            ArrayRef("U", (i + 1, j)),
            ArrayRef("U", (i, j - 1)),
            ArrayRef("U", (i, j + 1)),
            ArrayRef("R", (i, j), is_write=True),
        ],
        name="nas-relax",
    )
    # Residual norm: a pure stride-one read sweep of R (no reuse at all —
    # virtual lines hide its compulsory misses).
    norm = nest(
        [Loop("j", 0, n), Loop("i", 0, n)],
        body=[ArrayRef("R", (i, j))],
        name="nas-norm",
    )
    return Program("NAS", arrays, [relax, norm], repeat=sweeps)
