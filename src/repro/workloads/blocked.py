"""Blocked matrix-matrix multiply with optional data copying (fig 11b).

Lam, Rothberg & Wolf observed that the usable block size of blocked
algorithms is limited by self-interference of the reused block, which
depends erratically on the matrix *leading dimension*.  Data copying
fixes this by copying the block into a contiguous local array — at a
cost that can exceed its benefit when the leading dimension happens to
interfere little.  The paper's figure 11b sweeps the leading dimension
from 116 to 126 and shows that a software-assisted cache (a) keeps the
local array from being flushed during the refill and (b) makes copying
consistently worthwhile.

The modelled kernel multiplies an ``n x Bk`` block of ``A`` (the reused
operand, stored inside a matrix of leading dimension ``ld``) by a
``Bk x m`` slab of ``B``::

    [copy phase, optional]           [compute phase]
    DO k = 0,Bk-1                    DO j = 0,m-1
       DO i = 0,n-1                     DO i = 0,n-1
          LA(i,k) = A(i,k)                 reg = C(i,j)
       ENDDO                               DO k = 0,Bk-1
    ENDDO                                     reg += A(i,k)*B(k,j)
                                           ENDDO
                                           C(i,j) = reg
                                        ENDDO
                                     ENDDO

Without copying, ``A(i,k)`` rows are ``8*ld`` bytes apart and the block
self-interferes for unlucky ``ld``; with copying the compute phase reads
the contiguous ``LA`` instead.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, Program, nest, var

#: Figure 11b x-axis.
FIG11B_LEADING_DIMS = tuple(range(116, 127))

#: Sizes per scale: (block_rows_n, block_depth_Bk, columns_m).
BLOCKED_MM_SCALES: Dict[str, Tuple[int, int, int]] = {
    # The reused A block (n x Bk doubles) must stay comparable to the
    # 8 KB cache for the leading-dimension interference to exist, so the
    # smaller scales shrink the number of columns, not the block.
    "tiny": (24, 4, 10),
    "test": (116, 8, 24),
    "paper": (116, 8, 110),
}


def blocked_mm_program(
    leading_dim: int,
    copying: bool,
    scale: str = "paper",
) -> Program:
    """One figure 11b data point: blocked MM at a given leading dimension,
    with or without the copy phase."""
    if scale not in BLOCKED_MM_SCALES:
        raise ConfigError(f"unknown blocked-MM scale {scale!r}")
    n, bk, m = BLOCKED_MM_SCALES[scale]
    if leading_dim < n:
        raise ConfigError(
            f"leading dimension {leading_dim} below the block height {n}"
        )
    i, j, k = var("i"), var("j"), var("k")
    arrays = [
        Array("A", (leading_dim, bk)),
        Array("B", (bk, m)),
        Array("C", (leading_dim, m)),
        Array("LA", (n, bk)),
    ]

    reused = "LA" if copying else "A"
    compute = nest(
        [Loop("j", 0, m), Loop("i", 0, n), Loop("k", 0, bk)],
        body=[ArrayRef(reused, (i, k)), ArrayRef("B", (k, j))],
        pre=[ArrayRef("C", (i, j))],
        post=[ArrayRef("C", (i, j), is_write=True)],
        name="mm-compute",
    )
    items = [compute]
    if copying:
        copy = nest(
            [Loop("k", 0, bk), Loop("i", 0, n)],
            body=[
                ArrayRef("A", (i, k)),
                ArrayRef("LA", (i, k), is_write=True),
            ],
            name="mm-copy",
        )
        items = [copy, compute]
    suffix = "copy" if copying else "nocopy"
    return Program(f"MM-ld{leading_dim}-{suffix}", arrays, items)
