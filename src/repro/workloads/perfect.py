"""Synthetic models of the Perfect Club codes (MDG, BDN, DYF, TRF — plus
ADM, ARC, FLO for figure 10a).

The Perfect Club sources are not reproducible here, so each code is
modelled as a mixture of loop idioms chosen to match what the paper
reports about it (substitution documented in DESIGN.md):

* **small working sets** (the distributed test inputs) — the paper notes
  the Perfect codes ship with small test examples, so standard-cache
  AMAT stays low and the potential improvement is modest (figure 6a);
* **a large share of untagged references** (figure 4a): references
  outside loops (scalar blocks) and loop bodies containing CALLs, for
  which the paper's instrumentation clears all tags;
* **dusty-deck pathologies**: badly ordered loops (non-stride-one inner
  subscripts) and time loops that call sweep subroutines (``opaque``
  loops — reuse across them is invisible to the analysis);
* per-code signatures: DYF is temporal-dominated (the biggest
  bounce-back winner of figure 6a), TRF is spatial-dominated and is the
  one code whose memory traffic grows with virtual lines (figure 7a —
  modelled by stride-2 accesses that are tagged spatial but use only
  half of each virtual line), MDG/BDN are call/scalar-heavy.

``perfect_kernel`` returns the "most time-consuming subroutine" variant
of figure 10a: the computational nests alone, fully instrumented —
no CALL bodies, no outside-loop references.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..compiler import (
    Array,
    ArrayRef,
    Loop,
    LoopNest,
    Program,
    ScalarBlock,
    nest,
    var,
)

#: Region where the synthetic scalar variables live, far above any array.
SCALAR_REGION = 1 << 26

#: Scale factors applied to the reference counts below.
PERFECT_SCALES: Dict[str, float] = {"tiny": 0.02, "test": 0.12, "paper": 1.0}

_CODES = ("ADM", "MDG", "BDN", "DYF", "ARC", "FLO", "TRF")

#: A code model: (arrays, computational nests, support items, repetitions).
CodeModel = Tuple[List[Array], List[LoopNest], List[ScalarBlock], int]


def _scaled(scale: str, n: int, minimum: int = 2) -> int:
    if scale not in PERFECT_SCALES:
        raise ConfigError(f"unknown Perfect Club scale {scale!r}")
    return max(minimum, int(n * PERFECT_SCALES[scale]))


def _scalars(count: int, name: str, n_addresses: int = 12) -> ScalarBlock:
    """Outside-loop references: a handful of scalar variables."""
    addresses = tuple(SCALAR_REGION + 8 * k for k in range(n_addresses))
    return ScalarBlock(addresses, count=count, write_every=5, name=name)


# ---------------------------------------------------------------------------
# MDG — molecular dynamics of water.  Pairwise-interaction loops whose
# bodies call the potential subroutine (tags cleared), a tagged
# neighbour-accumulation loop, plenty of scalar traffic.  Small arrays.
# ---------------------------------------------------------------------------
def _mdg(scale: str) -> CodeModel:
    n_mol = _scaled(scale, 100)
    sweeps = _scaled(scale, 60)
    w_len = _scaled(scale, 1600)
    i, j, s, k = var("i"), var("j"), var("s"), var("k")
    arrays = [
        Array("XM", (n_mol,)),
        Array("FM", (n_mol,)),
        Array("VM", (n_mol,)),
        Array("W", (w_len,)),
    ]
    pair = nest(
        [Loop("i", 0, n_mol), Loop("j", 0, n_mol)],
        body=[
            ArrayRef("XM", (j,)),
            ArrayRef("FM", (j,)),
            ArrayRef("FM", (j,), is_write=True),
        ],
        name="mdg-pair",
    )
    forces_call = nest(
        [Loop("s", 0, sweeps), Loop("k", 0, n_mol)],
        body=[
            ArrayRef("XM", (k,)),
            ArrayRef("VM", (k,)),
            ArrayRef("FM", (k,), is_write=True),
        ],
        has_call=True,
        name="mdg-forces(call)",
    )
    predict = nest(
        # The predictor time loop calls the sweep subroutine: reuse across
        # its iterations is invisible to the analysis.
        [Loop("s", 0, _scaled(scale, 8), opaque=True), Loop("k", 0, w_len)],
        body=[ArrayRef("W", (k,))],
        name="mdg-predict",
    )
    scalars = _scalars(_scaled(scale, 60_000), "mdg-scalars")
    return arrays, [pair, forces_call, predict], [scalars], 1


# ---------------------------------------------------------------------------
# BDN — engineering design code.  Dusty-deck: a badly ordered 2-D sweep
# (inner subscript strides by the leading dimension), stride-one update
# sweeps, a CALL loop and scalar traffic.
# ---------------------------------------------------------------------------
def _bdn(scale: str) -> CodeModel:
    # Odd leading dimension: the strided inner sweep spreads over all
    # cache sets (a power-of-two dimension would pathologically alias).
    n = _scaled(scale, 90)
    v_len = _scaled(scale, 1400)
    reps = _scaled(scale, 6)
    i, j, r, k = var("i"), var("j"), var("r"), var("k")
    arrays = [
        Array("G", (n, n)),
        Array("U", (v_len,)),
        Array("V", (v_len,)),
    ]
    bad_order = nest(
        # A(I,J) with J innermost: the inner stride is the leading
        # dimension — no spatial tag, no visible reuse, pure pollution.
        [Loop("r", 0, reps, opaque=True), Loop("i", 0, n), Loop("j", 0, n)],
        body=[ArrayRef("G", (i, j))],
        name="bdn-badorder",
    )
    update = nest(
        [Loop("r", 0, reps * 3, opaque=True), Loop("k", 0, v_len)],
        body=[ArrayRef("U", (k,)), ArrayRef("V", (k,), is_write=True)],
        name="bdn-update",
    )
    assembly_call = nest(
        [Loop("r", 0, reps, opaque=True), Loop("k", 0, v_len)],
        body=[ArrayRef("U", (k,)), ArrayRef("G", (0, 0))],
        has_call=True,
        name="bdn-assembly(call)",
    )
    # Dusty-deck alias idiom (section 3.2): the subscript is computed
    # into a temporary (KK = 2*K), so without subscript expansion the
    # stride is invisible and the reference stays untagged.
    kk = var("kk")
    aliased = nest(
        [Loop("r", 0, reps, opaque=True), Loop("k", 0, v_len // 2)],
        body=[ArrayRef("V", (kk,))],
        aliases={"kk": k * 2},
        name="bdn-aliased",
    )
    scalars = _scalars(_scaled(scale, 55_000), "bdn-scalars")
    return arrays, [bad_order, update, assembly_call, aliased], [scalars], 1


# ---------------------------------------------------------------------------
# DYF — hydrodynamics (the paper's biggest bounce-back winner: temporal
# bit set on >30% of entries).  Each time step sweeps the state vectors
# twice (predictor/corrector — visible, tagged temporal reuse) and then
# re-gathers a cell table whose scan strides a full cache line per
# reference: untagged pollution that flushes the state between steps.
# ---------------------------------------------------------------------------
def _dyf(scale: str) -> CodeModel:
    n = _scaled(scale, 300)
    gather_lines = _scaled(scale, 300)
    steps = _scaled(scale, 40)
    i, t = var("i"), var("t")
    arrays = [
        Array("VS", (n,)),
        Array("WS", (n,)),
        Array("GP", (4 * gather_lines,)),
    ]
    state = nest(
        [Loop("t", 0, 2), Loop("i", 0, n)],
        body=[
            ArrayRef("VS", (i,)),
            ArrayRef("WS", (i,)),
            ArrayRef("WS", (i,), is_write=True),
        ],
        name="dyf-state",
    )
    # An indexed gather over the cell table: one 32-byte line per
    # reference, in permuted order.  Indirect addressing leaves it
    # untagged (no spatial, no temporal) — pure pollution that the
    # bounce-back cache absorbs, and that defeats next-line prefetching.
    permutation = np.random.default_rng(97).permutation(gather_lines) * 4
    gather = nest(
        [Loop("i", 0, gather_lines)],
        body=[
            ArrayRef("GP", (i,), indirect=tuple(int(v) for v in permutation))
        ],
        name="dyf-gather",
    )
    scalars = _scalars(_scaled(scale, 900), "dyf-scalars")
    return arrays, [state, gather], [scalars], steps


# ---------------------------------------------------------------------------
# TRF — transform/analysis code: long stride-one sweeps over large
# arrays (spatial-dominated), stride-2 passes (tagged spatial but using
# only half of every virtual line: the figure 7a traffic growth), and a
# cross-interfering vector pair one cache-size apart (victim/bounce-back
# territory).
# ---------------------------------------------------------------------------
def _trf(scale: str) -> CodeModel:
    big = _scaled(scale, 4000)
    half = _scaled(scale, 1800)
    pair_n = _scaled(scale, 256)
    small = _scaled(scale, 240)
    i, r, t = var("i"), var("r"), var("t")
    cache_bytes = 8 * 1024
    arrays = [
        Array("TA", (2 * big,)),
        Array("TB", (2 * big,)),
        # P and Q padded so they map onto the same cache sets.
        Array("P", (cache_bytes // 8,)),
        Array("Q", (pair_n,)),
        Array("TC", (small,)),
        Array("TD", (small,)),
        Array("TE", (_scaled(scale, 5200) * 41 + 6,)),
    ]
    transform = nest(
        [Loop("r", 0, _scaled(scale, 3), opaque=True), Loop("i", 0, big)],
        body=[ArrayRef("TA", (i,)), ArrayRef("TB", (i,), is_write=True)],
        name="trf-transform",
    )
    stride2 = nest(
        # Stride two: tagged spatial (2 < 4 elements) but only half of
        # every fetched virtual line is used — the figure 7a traffic
        # growth that singles TRF out.
        [Loop("r", 0, _scaled(scale, 3), opaque=True), Loop("i", 0, half)],
        body=[ArrayRef("TA", (i * 2,)), ArrayRef("TB", (i * 2,))],
        name="trf-stride2",
    )
    conflict = nest(
        [Loop("r", 0, _scaled(scale, 6)), Loop("i", 0, pair_n)],
        body=[
            ArrayRef("P", (i,)),
            ArrayRef("Q", (i,)),
            ArrayRef("Q", (i,), is_write=True),
        ],
        name="trf-conflict",
    )
    short_rows = nest(
        # Many short (6-element) stride-one rows starting at unaligned
        # offsets (41-element row pitch, so the 64-byte alignment of
        # row starts rotates): tagged spatial, but each
        # virtual-line fetch drags in words past the end of the row that
        # are never referenced — the figure 7a traffic growth of TRF.
        [Loop("r", 0, _scaled(scale, 5200)), Loop("i", 0, 6)],
        body=[ArrayRef("TE", (r * 41 + i,))],
        name="trf-shortrows",
    )
    window = nest(
        [Loop("t", 0, _scaled(scale, 30)), Loop("i", 0, small)],
        body=[
            ArrayRef("TC", (i,)),
            ArrayRef("TD", (i,)),
            ArrayRef("TD", (i,), is_write=True),
        ],
        name="trf-window",
    )
    scalars = _scalars(_scaled(scale, 36_000), "trf-scalars")
    return (
        arrays,
        [transform, stride2, conflict, window, short_rows],
        [scalars],
        1,
    )


# ---------------------------------------------------------------------------
# ADM — pseudospectral air-pollution model: alternating-direction
# sweeps over a 2-D field (kernel-only code, used by figure 10a).
# ---------------------------------------------------------------------------
def _adm(scale: str) -> CodeModel:
    n = _scaled(scale, 120)
    i, j = var("i"), var("j")
    arrays = [Array("F", (n, n)), Array("D", (n, n)), Array("CF", (n,))]
    x_sweep = nest(
        [Loop("j", 0, n), Loop("i", 1, n - 1)],
        body=[
            ArrayRef("F", (i - 1, j)),
            ArrayRef("F", (i, j)),
            ArrayRef("F", (i + 1, j)),
            ArrayRef("CF", (i,)),
            ArrayRef("D", (i, j), is_write=True),
        ],
        name="adm-xsweep",
    )
    y_sweep = nest(
        [Loop("j", 1, n - 1), Loop("i", 0, n)],
        body=[
            ArrayRef("D", (i, j - 1)),
            ArrayRef("D", (i, j)),
            ArrayRef("D", (i, j + 1)),
            ArrayRef("F", (i, j), is_write=True),
        ],
        name="adm-ysweep",
    )
    scalars = _scalars(_scaled(scale, 16_000), "adm-scalars")
    return arrays, [x_sweep, y_sweep], [scalars], 1


# ---------------------------------------------------------------------------
# ARC — 2-D implicit fluid code: per-column recurrences (forward
# elimination / back substitution shape).
# ---------------------------------------------------------------------------
def _arc(scale: str) -> CodeModel:
    n = _scaled(scale, 150)
    i, j = var("i"), var("j")
    arrays = [Array("XA", (n, n)), Array("AB", (n, n)), Array("BB", (n, n))]
    eliminate = nest(
        [Loop("j", 0, n), Loop("i", 1, n)],
        body=[
            ArrayRef("XA", (i - 1, j)),
            ArrayRef("AB", (i, j)),
            ArrayRef("BB", (i, j)),
            ArrayRef("XA", (i, j), is_write=True),
        ],
        name="arc-eliminate",
    )
    smooth = nest(
        [Loop("j", 0, n), Loop("i", 0, n)],
        body=[ArrayRef("AB", (i, j)), ArrayRef("BB", (i, j), is_write=True)],
        name="arc-smooth",
    )
    scalars = _scalars(_scaled(scale, 18_000), "arc-scalars")
    return arrays, [eliminate, smooth], [scalars], 1


# ---------------------------------------------------------------------------
# FLO — transonic-flow solver: flux-difference stencils with a reused
# per-row coefficient vector.
# ---------------------------------------------------------------------------
def _flo(scale: str) -> CodeModel:
    n = _scaled(scale, 140)
    i, j = var("i"), var("j")
    arrays = [Array("UF", (n, n)), Array("FX", (n, n)), Array("CV", (n,))]
    flux = nest(
        [Loop("j", 0, n), Loop("i", 0, n - 1)],
        body=[
            ArrayRef("UF", (i, j)),
            ArrayRef("UF", (i + 1, j)),
            ArrayRef("CV", (i,)),
            ArrayRef("FX", (i, j), is_write=True),
        ],
        name="flo-flux",
    )
    accumulate = nest(
        [Loop("j", 0, n), Loop("i", 1, n)],
        body=[
            ArrayRef("FX", (i - 1, j)),
            ArrayRef("FX", (i, j)),
            ArrayRef("UF", (i, j), is_write=True),
        ],
        name="flo-accumulate",
    )
    scalars = _scalars(_scaled(scale, 18_000), "flo-scalars")
    return arrays, [flux, accumulate], [scalars], 1


_BUILDERS = {
    "ADM": _adm,
    "MDG": _mdg,
    "BDN": _bdn,
    "DYF": _dyf,
    "ARC": _arc,
    "FLO": _flo,
    "TRF": _trf,
}


def perfect_program(code: str, scale: str = "paper") -> Program:
    """The full synthetic Perfect Club code: kernels + CALL loops +
    outside-loop scalar references."""
    if code not in _BUILDERS:
        raise ConfigError(f"unknown Perfect Club code {code!r} (have {_CODES})")
    arrays, nests, scalars, repeat = _BUILDERS[code](scale)
    return Program(code, arrays, list(nests) + list(scalars), repeat=repeat)


def perfect_kernel(code: str, scale: str = "paper") -> Program:
    """The figure 10a variant: the most time-consuming subroutines,
    manually and fully instrumented (CALL bodies and scalar noise
    removed, tags active everywhere)."""
    if code not in _BUILDERS:
        raise ConfigError(f"unknown Perfect Club code {code!r} (have {_CODES})")
    arrays, nests, _, repeat = _BUILDERS[code](scale)
    kernels = [
        LoopNest(
            loops=n.loops,
            body=n.body,
            pre=n.pre,
            post=n.post,
            has_call=False,
            name=n.name,
            aliases=n.aliases,
        )
        for n in nests
    ]
    return Program(f"{code}-kernel", arrays, kernels, repeat=repeat)
