"""Dense matrix-vector workloads: MV and its blocked variant.

``MV`` is the paper's running example (section 2.2)::

    DO j1 = 0,N-1
       reg = Y(j1)
       DO j2 = 0,N-1
          reg += A(j2,j1) * X(j2)
       ENDDO
       Y(j1) = reg
    ENDDO

``X`` is reused on every outer iteration but, when ``N`` exceeds the
cache capacity divided by the line density of ``A``'s sweep, most of it
is flushed by ``A`` between reuses — the textbook pollution case the
bounce-back cache targets.  ``A`` is scanned with stride one and never
reused: virtual-line territory.

``blocked MV`` (figure 11a) tiles the ``j2`` loop so a block of ``X``
stays cache-resident across all rows; software assistance lets much
larger blocks survive pollution.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, Program, nest, var

#: Problem sizes per scale: (N, outer_rows).
MV_SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (96, 8),
    "test": (400, 16),
    "paper": (1200, 60),
}


def mv_program(scale: str = "paper") -> Program:
    """Matrix-vector multiply; ``X`` (8*N bytes) overflows an 8 KB cache
    at the paper scale."""
    if scale not in MV_SCALES:
        raise ConfigError(f"unknown MV scale {scale!r}")
    n, rows = MV_SCALES[scale]
    j1, j2 = var("j1"), var("j2")
    arrays = [Array("Y", (n,)), Array("A", (n, n)), Array("X", (n,))]
    loop = nest(
        [Loop("j1", 0, rows), Loop("j2", 0, n)],
        body=[ArrayRef("A", (j2, j1)), ArrayRef("X", (j2,))],
        pre=[ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="mv",
    )
    return Program("MV", arrays, [loop])


#: Blocked-MV sizes per scale: (N, rows).  N is chosen highly divisible
#: so the figure 11a block sizes tile it exactly.
BLOCKED_MV_SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (120, 4),
    "test": (600, 8),
    "paper": (6000, 20),
}

#: The block sizes of figure 11a's x-axis.
FIG11A_BLOCK_SIZES = (10, 20, 30, 40, 50, 100, 500, 1000, 1500, 2000)


def blocked_mv_program(block: int, scale: str = "paper") -> Program:
    """Blocked matrix-vector multiply (figure 11a)::

        DO jb = 0,N/B-1            ! block of X
           DO j1 = 0,rows-1        ! all rows
              reg = Y(j1)
              DO j2 = 0,B-1        ! within the block
                 reg += A(jb*B+j2, j1) * X(jb*B+j2)
              ENDDO
              Y(j1) = reg
           ENDDO
        ENDDO

    A block of ``X`` (8*B bytes) is reused across every row; the sweep of
    ``A`` pollutes the cache in between.
    """
    if scale not in BLOCKED_MV_SCALES:
        raise ConfigError(f"unknown blocked-MV scale {scale!r}")
    n, rows = BLOCKED_MV_SCALES[scale]
    if block < 1 or n % block != 0:
        raise ConfigError(
            f"block size {block} does not tile the vector length {n}"
        )
    jb, j1, j2 = var("jb"), var("j1"), var("j2")
    position = jb * block + j2
    arrays = [Array("Y", (rows,)), Array("A", (n, rows)), Array("X", (n,))]
    loop = nest(
        [Loop("jb", 0, n // block), Loop("j1", 0, rows), Loop("j2", 0, block)],
        body=[ArrayRef("A", (position, j1)), ArrayRef("X", (position,))],
        pre=[ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name=f"blocked-mv-B{block}",
    )
    return Program(f"MV-B{block}", arrays, [loop])
