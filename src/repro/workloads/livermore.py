"""LIV — the Livermore Loops benchmark.

A battery of short Fortran kernels swept repeatedly over medium-sized
vectors.  The working set (a handful of ~600-element double vectors) is
larger than an 8 KB cache but fits into 16 KB — which is why the paper's
figure 9a shows the mechanism becoming "almost useless" for LIV at
16 KB and beyond.

Kernels modelled (classic numbering):

* K1  hydro fragment          ``x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))``
* K2  ICCG-style compaction   ``x(k) = x(2k) - z(2k+1)`` (stride halving)
* K3  inner product           ``q += z(k)*x(k)``
* K5  tri-diagonal elimination ``x(i) = z(i)*(y(i) - x(i-1))``
* K7  equation of state       ``x(k) = y(k) + r*(z(k) + r*y(k+3)) + y(k+6)...``
* K11 first sum               ``x(k) = x(k-1) + y(k)``
* K12 first difference        ``x(k) = y(k+1) - y(k)``

The group dependences (``z(k+10)``/``z(k+11)``, the three-member
``y(k)/y(k+3)/y(k+6)`` group of K7, ``x(i-1)`` against the ``x(i)``
store, ``y(k+1)``/``y(k)``) give the temporal tags; nearly everything
is stride one or two, so the spatial tags are pervasive — the paper's
figure 4a shows LIV with both bits set on most references.  K2's
compaction write is a non-uniform dependence the simple analysis
rightly misses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from ..compiler import Array, ArrayRef, Loop, LoopNest, Program, nest, var

#: Sizes per scale: (vector_length, sweep_repetitions).
LIV_SCALES: Dict[str, Tuple[int, int]] = {
    "tiny": (64, 2),
    "test": (300, 4),
    "paper": (600, 12),
}


def _kernels(n: int) -> List[LoopNest]:
    """One LoopNest per modelled Livermore kernel over vectors of ``n``."""
    k = var("k")
    pad = 16  # slack for the k+10 / k+11 subscripts

    hydro = nest(
        [Loop("k", 0, n)],
        body=[
            ArrayRef("Y", (k,)),
            ArrayRef("Z", (k + 10,)),
            ArrayRef("Z", (k + 11,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k1-hydro",
    )
    iccg = nest(
        # Stride-halving compaction: the reads stride by two (still
        # spatial: 2 < 4 elements); the read/write dependence is
        # non-uniform, so no temporal tag — correctly.
        [Loop("k", 0, n // 2)],
        body=[
            ArrayRef("X", (k * 2,)),
            ArrayRef("Z", (k * 2 + 1,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k2-iccg",
    )
    inner_product = nest(
        [Loop("k", 0, n)],
        body=[ArrayRef("Z", (k,)), ArrayRef("X", (k,))],
        name="liv-k3-inner",
    )
    state = nest(
        # Equation of state: a three-member uniformly generated group on
        # Y (constants 0, 3, 6) — all temporal, only Y(k+6) leads.
        [Loop("k", 0, n)],
        body=[
            ArrayRef("Y", (k,)),
            ArrayRef("Y", (k + 3,)),
            ArrayRef("Y", (k + 6,)),
            ArrayRef("Z", (k,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k7-state",
    )
    tridiag = nest(
        [Loop("k", 1, n)],
        body=[
            ArrayRef("X", (k - 1,)),
            ArrayRef("Y", (k,)),
            ArrayRef("Z", (k,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k5-tridiag",
    )
    first_sum = nest(
        [Loop("k", 1, n)],
        body=[
            ArrayRef("X", (k - 1,)),
            ArrayRef("Y", (k,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k11-firstsum",
    )
    first_diff = nest(
        [Loop("k", 0, n)],
        body=[
            ArrayRef("Y", (k + 1,)),
            ArrayRef("Y", (k,)),
            ArrayRef("X", (k,), is_write=True),
        ],
        name="liv-k12-firstdiff",
    )
    return [hydro, iccg, inner_product, tridiag, state, first_sum, first_diff]


def liv_program(scale: str = "paper") -> Program:
    """The Livermore Loops sweep, repeated as the benchmark harness does."""
    if scale not in LIV_SCALES:
        raise ConfigError(f"unknown LIV scale {scale!r}")
    n, repeats = LIV_SCALES[scale]
    pad = 16
    arrays = [
        Array("X", (n + pad,)),
        Array("Y", (n + pad,)),
        Array("Z", (n + pad,)),
    ]
    return Program("LIV", arrays, _kernels(n), repeat=repeats)
