"""Benchmark registry: the paper's suite by name, with trace caching.

The nine benchmarks of the main evaluation (figures 1, 3, 4, 6-9, 12)
are ``MDG, BDN, DYF, TRF, NAS, Slalom, LIV, MV, SpMV`` — always listed
in the paper's plotting order.  Figure 10a adds the manually
instrumented kernels of seven Perfect Club codes
(``ADM, MDG, BDN, DYF, ARC, FLO, TRF``).

Traces are deterministic (seeded) and cached per ``(name, scale, seed)``
so a whole experiment battery generates each one once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from ..errors import ConfigError
from ..compiler import Program, generate_trace
from ..memtrace.trace import Trace
from .blocked import blocked_mm_program
from .dense import blocked_mv_program, mv_program
from .livermore import liv_program
from .nas import nas_program
from .perfect import perfect_kernel, perfect_program
from .slalom import slalom_program
from .sparse import spmv_program

#: The paper's benchmark order on every bar chart.
BENCHMARK_ORDER: Tuple[str, ...] = (
    "MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV",
)

#: Figure 10a's kernel set, in the paper's order.
KERNEL_ORDER: Tuple[str, ...] = (
    "ADM", "MDG", "BDN", "DYF", "ARC", "FLO", "TRF",
)

_PROGRAM_BUILDERS: Dict[str, Callable[[str], Program]] = {
    "MDG": lambda scale: perfect_program("MDG", scale),
    "BDN": lambda scale: perfect_program("BDN", scale),
    "DYF": lambda scale: perfect_program("DYF", scale),
    "TRF": lambda scale: perfect_program("TRF", scale),
    "NAS": nas_program,
    "Slalom": slalom_program,
    "LIV": liv_program,
    "MV": mv_program,
    "SpMV": spmv_program,
}


def benchmark_names() -> List[str]:
    """All registered benchmark names, in plotting order."""
    return list(BENCHMARK_ORDER)


def build_program(name: str, scale: str = "paper") -> Program:
    """The loop-nest program of a registered benchmark."""
    try:
        builder = _PROGRAM_BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {sorted(_PROGRAM_BUILDERS)}"
        ) from None
    return builder(scale)


@lru_cache(maxsize=128)
def get_trace(name: str, scale: str = "paper", seed: int = 0) -> Trace:
    """The instrumented trace of a benchmark (cached)."""
    return generate_trace(build_program(name, scale), seed=seed)


@lru_cache(maxsize=64)
def get_kernel_trace(code: str, scale: str = "paper", seed: int = 0) -> Trace:
    """Figure 10a: trace of a manually instrumented Perfect Club kernel."""
    return generate_trace(perfect_kernel(code, scale), seed=seed)


@lru_cache(maxsize=64)
def get_blocked_mv_trace(
    block: int, scale: str = "paper", seed: int = 0
) -> Trace:
    """Figure 11a: blocked matrix-vector multiply at one block size."""
    return generate_trace(blocked_mv_program(block, scale), seed=seed)


@lru_cache(maxsize=64)
def get_blocked_mm_trace(
    leading_dim: int, copying: bool, scale: str = "paper", seed: int = 0
) -> Trace:
    """Figure 11b: blocked matrix-matrix multiply at one leading dimension."""
    return generate_trace(
        blocked_mm_program(leading_dim, copying, scale), seed=seed
    )


def suite_traces(scale: str = "paper", seed: int = 0) -> Dict[str, Trace]:
    """All nine main benchmarks, in order (the common experiment input)."""
    return {name: get_trace(name, scale, seed) for name in BENCHMARK_ORDER}
