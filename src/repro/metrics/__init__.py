"""Metrics: result records live in :mod:`repro.sim.result`; this package
adds cross-benchmark aggregation and the analytic oracle leg."""

from ..sim.result import SimResult
from .analytic import (
    DISTRIBUTIONS,
    AccessDistribution,
    BlockedLoopDistribution,
    IRMDistribution,
    Interval,
    OracleMismatch,
    Prediction,
    SequentialScanDistribution,
    battery_distributions,
    make_distribution,
    oracle_check,
    verify_oracle,
)
from .attribution import Attribution, InstructionProfile, attribute
from .summary import (
    amat_improvement,
    geometric_mean,
    geomean,
    miss_reduction,
    suite_summary,
    traffic_ratio,
)

__all__ = [
    "SimResult",
    "Attribution",
    "InstructionProfile",
    "attribute",
    "geometric_mean",
    "geomean",
    "amat_improvement",
    "miss_reduction",
    "traffic_ratio",
    "suite_summary",
    "AccessDistribution",
    "IRMDistribution",
    "SequentialScanDistribution",
    "BlockedLoopDistribution",
    "DISTRIBUTIONS",
    "Interval",
    "Prediction",
    "OracleMismatch",
    "battery_distributions",
    "make_distribution",
    "oracle_check",
    "verify_oracle",
]
