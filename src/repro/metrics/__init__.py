"""Metrics: result records live in :mod:`repro.sim.result`; this package
adds cross-benchmark aggregation."""

from ..sim.result import SimResult
from .attribution import Attribution, InstructionProfile, attribute
from .summary import (
    amat_improvement,
    geometric_mean,
    miss_reduction,
    suite_summary,
    traffic_ratio,
)

__all__ = [
    "SimResult",
    "Attribution",
    "InstructionProfile",
    "attribute",
    "geometric_mean",
    "amat_improvement",
    "miss_reduction",
    "traffic_ratio",
    "suite_summary",
]
