"""Per-instruction miss attribution.

The paper's related work (§5) cites Abraham et al.: code profiling shows
that *few load/store instructions induce many cache misses*, which is
what makes per-instruction tags (and labeled load/stores generally)
worthwhile — a handful of static instructions carry the hint bits that
matter.  This module measures that concentration on our traces: it runs
a simulation while attributing every miss and stall cycle to the static
instruction (``ref_id``) that issued the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..errors import TraceError
from ..memtrace.trace import Trace
from ..sim.base import CacheModel


@dataclass
class InstructionProfile:
    """Counters for one static load/store instruction."""

    ref_id: int
    refs: int = 0
    misses: int = 0
    cycles: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.refs if self.refs else 0.0


@dataclass
class Attribution:
    """Miss/cycle attribution of a whole simulation."""

    cache: str
    trace: str
    per_instruction: Dict[int, InstructionProfile] = field(default_factory=dict)

    @property
    def total_misses(self) -> int:
        return sum(p.misses for p in self.per_instruction.values())

    @property
    def total_refs(self) -> int:
        return sum(p.refs for p in self.per_instruction.values())

    @property
    def static_instructions(self) -> int:
        return len(self.per_instruction)

    def top(self, n: int = 10, by: str = "misses") -> List[InstructionProfile]:
        """The ``n`` instructions with the most misses (or cycles/refs)."""
        return sorted(
            self.per_instruction.values(),
            key=lambda p: getattr(p, by),
            reverse=True,
        )[:n]

    def instructions_covering(self, fraction: float = 0.9) -> int:
        """How many static instructions account for ``fraction`` of all
        misses (the Abraham-et-al. concentration measure)."""
        if not 0 < fraction <= 1:
            raise TraceError(f"fraction must be in (0, 1]: {fraction}")
        target = fraction * self.total_misses
        covered = 0.0
        for count, profile in enumerate(self.top(len(self.per_instruction)), 1):
            covered += profile.misses
            if covered >= target:
                return count
        return len(self.per_instruction)

    def concentration(self, fraction: float = 0.9) -> float:
        """Fraction of static instructions needed to cover ``fraction``
        of the misses (small = concentrated)."""
        if self.static_instructions == 0 or self.total_misses == 0:
            return 0.0
        return self.instructions_covering(fraction) / self.static_instructions


def attribute(model: CacheModel, trace: Trace) -> Attribution:
    """Simulate ``trace`` on ``model``, attributing misses per instruction.

    The clock discipline matches :func:`repro.sim.driver.simulate`; the
    model is reset first.
    """
    if trace.ref_ids is None:
        raise TraceError("attribution requires a trace with ref_ids")
    model.reset()
    addresses, is_write, temporal, spatial, gaps = trace.columns()
    ref_ids = trace.ref_ids.tolist()
    access = model.access
    timing = getattr(model, "timing", None)
    pipelined = timing.hit_time if timing is not None else 1

    result = Attribution(cache=model.name, trace=trace.name)
    profiles = result.per_instruction
    clock = 0
    misses_before = 0
    for addr, w, t, s, g, rid in zip(
        addresses, is_write, temporal, spatial, gaps, ref_ids
    ):
        clock += g
        cycles = access(addr, w, temporal=t, spatial=s, now=clock)
        extra = cycles - pipelined
        if extra > 0:
            clock += extra
        profile = profiles.get(rid)
        if profile is None:
            profile = profiles[rid] = InstructionProfile(rid)
        profile.refs += 1
        profile.cycles += cycles
        misses_now = model.stats.misses
        if misses_now != misses_before:
            profile.misses += misses_now - misses_before
            misses_before = misses_now
    return result
