"""Per-instruction miss attribution.

The paper's related work (§5) cites Abraham et al.: code profiling shows
that *few load/store instructions induce many cache misses*, which is
what makes per-instruction tags (and labeled load/stores generally)
worthwhile — a handful of static instructions carry the hint bits that
matter.  This module measures that concentration on our traces.

The instrumentation itself lives in the telemetry probe layer
(:class:`~repro.telemetry.probes.AttributionProbe` consuming the
engines' canonical event batches); :func:`attribute` attaches that
probe through the normal ``simulate(..., probes=...)`` entry and
re-shapes its profiles into the :class:`Attribution` API — one
instrumentation path, engine- and chunking-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import TraceError
from ..memtrace.trace import Trace
from ..sim.base import CacheModel


@dataclass
class InstructionProfile:
    """Counters for one static load/store instruction."""

    ref_id: int
    refs: int = 0
    misses: int = 0
    cycles: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.refs if self.refs else 0.0


@dataclass
class Attribution:
    """Miss/cycle attribution of a whole simulation."""

    cache: str
    trace: str
    per_instruction: Dict[int, InstructionProfile] = field(default_factory=dict)

    @property
    def total_misses(self) -> int:
        return sum(p.misses for p in self.per_instruction.values())

    @property
    def total_refs(self) -> int:
        return sum(p.refs for p in self.per_instruction.values())

    @property
    def static_instructions(self) -> int:
        return len(self.per_instruction)

    def top(self, n: int = 10, by: str = "misses") -> List[InstructionProfile]:
        """The ``n`` instructions with the most misses (or cycles/refs)."""
        return sorted(
            self.per_instruction.values(),
            key=lambda p: getattr(p, by),
            reverse=True,
        )[:n]

    def instructions_covering(self, fraction: float = 0.9) -> int:
        """How many static instructions account for ``fraction`` of all
        misses (the Abraham-et-al. concentration measure)."""
        if not 0 < fraction <= 1:
            raise TraceError(f"fraction must be in (0, 1]: {fraction}")
        target = fraction * self.total_misses
        covered = 0.0
        for count, profile in enumerate(self.top(len(self.per_instruction)), 1):
            covered += profile.misses
            if covered >= target:
                return count
        return len(self.per_instruction)

    def concentration(self, fraction: float = 0.9) -> float:
        """Fraction of static instructions needed to cover ``fraction``
        of the misses (small = concentrated)."""
        if self.static_instructions == 0 or self.total_misses == 0:
            return 0.0
        return self.instructions_covering(fraction) / self.static_instructions


def attribute(model: CacheModel, trace: Trace) -> Attribution:
    """Simulate ``trace`` on ``model``, attributing misses per instruction.

    Runs the normal simulation entry (any engine) with an
    :class:`~repro.telemetry.probes.AttributionProbe` attached; the
    model is reset first and counters match an un-probed run exactly.
    """
    from ..sim.driver import simulate
    from ..telemetry.probes import AttributionProbe, ProbeSet

    if trace.ref_ids is None:
        raise TraceError("attribution requires a trace with ref_ids")
    probe = AttributionProbe()
    simulate(model, trace, probes=ProbeSet([probe]))
    result = Attribution(cache=model.name, trace=trace.name)
    for rid, (refs, misses, cycles) in sorted(probe.profiles.items()):
        result.per_instruction[rid] = InstructionProfile(
            int(rid), refs=int(refs), misses=int(misses), cycles=int(cycles)
        )
    return result
