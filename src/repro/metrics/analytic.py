"""Closed-form cache-behaviour oracles: a third correctness leg.

The reference, fast and native engines cross-validate each other
bit-for-bit, but they share one failure mode: all three *simulate*, so
a systematic modelling bug (a miscounted hit, a mispriced miss) could
pass parity in every tier at once.  This module predicts the counters
of distribution-generated traces *without simulating*, in the spirit of
the classic analytical cache studies ("Analytical Studies of Strategies
for Utilization of Cache Memory"): exact expressions where the access
pattern admits them, provable bounds elsewhere.

Three parameterised synthetic distributions are modelled (all
read-only, untagged, unit inter-reference gap — the regime in which
the simulator's timing collapses to a closed form, see below):

``irm`` — independent reference model
    Every reference picks one of ``n_lines`` cache lines independently
    and uniformly.  For plain LRU caches the *expected* hit count has
    an exact per-set expression; the prediction is that expectation
    plus a concentration band (the per-reference hit indicators are
    1-dependent Bernoullis, so the deviation is O(sqrt(refs))).
``scan`` — cyclic sequential sweep
    A contiguous array is swept front to back, ``passes`` times.  Per
    set the reference stream is a cyclic repetition of its ``k_s``
    distinct lines: under LRU that is *deterministic* — ``k_s`` misses
    when the set fits (``k_s <= ways``), every line access a miss when
    it does not (the classic LRU worst case).  Exact, zero tolerance.
``blocked`` — blocked working-set loop
    Disjoint contiguous blocks, each swept ``repeats`` times before
    moving on (the paper's blocked-kernel shape).  With each block
    fitting its sets, misses are exactly the compulsory floor: one per
    distinct line.

**Timing closed form.**  Under a unit gap and a read-only trace the
driver's clock discipline (``clock += gap`` then ``clock += cycles -
hit_time`` beyond the pipelined slot) keeps every access's queueing
wait at zero and the write buffer empty, so total cycles collapse to
``hits * hit_time + misses * miss_penalty`` for plain caches — exact.
Assisted configurations add bounded swap-lock effects; where the
distribution provably never hits the bounce-back cache the same exact
form holds, elsewhere the oracle emits provable bounds instead.

**Assisted (software) configurations.**  The distributions are
untagged, so virtual lines never trigger (spatial-tagged misses only)
and temporal-priority replacement degenerates to LRU; what remains is
the bounce-back victim buffer of ``bounce_back_lines`` entries:

* ``scan``: with ``distinct_lines >= (ways + 1) * n_sets +
  bounce_back_lines + 1`` every victim is flushed from the buffer
  before its line returns, so assist hits are exactly zero and the
  plain closed form applies (exact).
* ``blocked``: blocks that fit never evict live lines — the buffer
  stays cold, compulsory floor applies (exact).
* ``irm``: two provable bounds — misses are at least the residency
  bound ``refs * (1 - (main_lines + bounce_back_lines) / n_lines)``
  (the combined caches hold at most that many distinct lines at any
  instant) and at most the plain per-set expectation (the main cache
  always holds each set's most recent lines).

Entry points: :func:`predict` (a :class:`Prediction` of per-metric
:class:`Interval` s), :func:`oracle_check` (assert one
:class:`~repro.sim.result.SimResult` against a distribution, raising
:class:`OracleMismatch`), and :func:`verify_oracle` (the ``repro
verify --oracle`` battery driving every engine tier — reference, fast,
fast_soft, native, pipelined, streamed — over every distribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ReproError
from ..memtrace.trace import Trace

#: Comparison slop for derived floating-point metrics (ratios of exact
#: integer counters); never applied to the counters themselves.
_EPS = 1e-9

#: z-score of the concentration band around IRM expectations.  Hit
#: indicators are 1-dependent Bernoullis, so the standard deviation of
#: the hit count is at most ``sqrt(3 * refs) / 2``; six of those make a
#: false alarm astronomically unlikely while a counter off by a few
#: percent of the trace still lands far outside the band.
_IRM_SIGMA = 6.0


class OracleMismatch(ReproError):
    """A simulated result fell outside the analytic oracle's bounds."""

    code = "oracle-mismatch"


# ----------------------------------------------------------------------
# Intervals and predictions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed prediction interval; ``lo == hi`` is an exact value."""

    lo: float
    hi: float

    @classmethod
    def exact(cls, value: float) -> "Interval":
        return cls(value, value)

    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo - _EPS <= value <= self.hi + _EPS

    def __str__(self) -> str:
        if self.is_exact:
            return f"{self.lo:g}"
        return f"[{self.lo:g}, {self.hi:g}]"


@dataclass
class Prediction:
    """Per-metric analytic bounds for one (model, distribution) pair.

    ``metrics`` maps :class:`~repro.sim.result.SimResult` counter or
    property names to intervals.  ``exact`` is True when every interval
    is a point (deterministic distributions on supported models).
    """

    metrics: Dict[str, Interval]
    exact: bool
    assumptions: List[str] = field(default_factory=list)

    def check(self, result) -> Dict[str, Tuple[float, Interval]]:
        """Every metric's (observed, interval); see :func:`oracle_check`."""
        return {
            name: (float(getattr(result, name)), interval)
            for name, interval in self.metrics.items()
        }


# ----------------------------------------------------------------------
# Access distributions
# ----------------------------------------------------------------------
class AccessDistribution:
    """A parameterised synthetic access pattern with an analytic model.

    Subclasses generate a deterministic (seeded) read-only untagged
    trace (:meth:`trace`) and predict the counters any supported cache
    model must produce on it (:meth:`predict`).  ``params()`` is the
    canonical parameter payload — the trace-corpus manifest fingerprints
    synthetic entries over it.
    """

    kind = ""

    def __init__(self, refs: int, seed: int) -> None:
        if refs < 1:
            raise ConfigError(f"distribution needs refs >= 1: {refs}")
        self.refs = refs
        self.seed = seed
        self._trace: Optional[Trace] = None

    # -- identity ------------------------------------------------------
    def params(self) -> Dict[str, int]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        tail = "-".join(
            f"{key[0]}{value}" for key, value in sorted(self.params().items())
        )
        return f"{self.kind}-{tail}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.params()})"

    # -- trace generation ---------------------------------------------
    def _addresses(self) -> np.ndarray:
        raise NotImplementedError

    def trace(self) -> Trace:
        """The generated trace (cached; read-only, untagged, unit gap)."""
        if self._trace is None:
            addresses = self._addresses()
            n = len(addresses)
            zeros = np.zeros(n, dtype=bool)
            self._trace = Trace(
                addresses,
                zeros,
                zeros,
                zeros,
                np.ones(n, dtype=np.int64),
                name=self.name,
            )
        return self._trace

    # -- analytic model ------------------------------------------------
    def predict(self, model, tol: float = 1.0) -> Prediction:
        """Analytic counter bounds for ``model`` running :meth:`trace`.

        ``tol`` scales the width of *statistical* intervals only;
        deterministic predictions stay exact whatever the tolerance.
        Raises :class:`~repro.errors.ConfigError` for models or
        parameter regimes outside the oracle's provable domain.
        """
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def _set_counts(self, model) -> Dict[int, int]:
        """Distinct model-lines per cache set, from the actual trace."""
        shift = model.geometry.line_shift
        lines = np.unique(self.trace().addresses >> shift)
        counts: Dict[int, int] = {}
        n_sets = model.geometry.n_sets
        for line in lines.tolist():
            index = line % n_sets
            counts[index] = counts.get(index, 0) + 1
        return counts


def _classify(model) -> Tuple[str, int]:
    """``(family, bounce_back_lines)`` of a supported model.

    ``family`` is ``plain`` (LRU, write-back, no assist structures that
    an untagged trace could trigger) or ``assisted`` (plain plus a
    bounce-back victim buffer).  Everything else — prefetch modes,
    write-through, hierarchies, stream buffers — is outside the
    oracle's provable domain and raises ConfigError.
    """
    from ..core.software_cache import SoftwareAssistedCache
    from ..sim.standard import StandardCache

    if isinstance(model, StandardCache):
        if model.write_policy != "write-back":
            raise ConfigError(
                f"oracle models write-back caches only, not "
                f"{model.write_policy!r}"
            )
        return "plain", 0
    if isinstance(model, SoftwareAssistedCache):
        config = model.config
        if config.prefetch != "off":
            raise ConfigError(
                "oracle cannot model prefetching configurations "
                "(prefetch couples bus timing into hit/miss behaviour)"
            )
        # Untagged traces never trigger virtual-line fetches, and
        # temporal-priority replacement with all-clear bits is LRU; the
        # only assist structure left live is the bounce-back buffer.
        bb = config.bounce_back_lines
        return ("assisted" if bb else "plain"), bb
    raise ConfigError(
        f"oracle has no analytic model for {type(model).__name__}"
    )


def _exact_counters(
    refs: int, misses: int, model, assumptions: List[str]
) -> Prediction:
    """Exact prediction from a deterministic miss count (plain timing)."""
    wpl = model.geometry.line_size // 8
    hit_time = model.timing.hit_time
    penalty = model.timing.miss_penalty(1, model.geometry.line_size)
    hits = refs - misses
    cycles = hits * hit_time + misses * penalty
    words = misses * wpl
    metrics = {
        "refs": Interval.exact(refs),
        "misses": Interval.exact(misses),
        "hits_assist": Interval.exact(0),
        "lines_fetched": Interval.exact(misses),
        "words_fetched": Interval.exact(words),
        "cycles": Interval.exact(cycles),
        "miss_ratio": Interval.exact(misses / refs),
        "traffic": Interval.exact(words / refs),
        "amat": Interval.exact(cycles / refs),
    }
    if words:
        metrics["line_utilization"] = Interval.exact(refs / words)
    return Prediction(metrics=metrics, exact=True, assumptions=assumptions)


def _interval_counters(
    refs: int,
    miss_lo: float,
    miss_hi: float,
    model,
    assumptions: List[str],
    assist_hits_hi: float = 0.0,
    swap_lock: int = 0,
    assist_hit_time: int = 0,
) -> Prediction:
    """Bounded prediction from a miss-count interval.

    Cycle bounds: every access costs at least its service time
    (``hit_time`` / ``miss_penalty``) and at most the assist service
    plus the swap lock it may impose on its successor, so with ``h``
    hits and ``m`` misses::

        refs*H + m*(P - H)  <=  cycles  <=  h*(A + L) + m*(P + L)

    where ``A`` is the assist hit time (== ``H`` for plain caches) and
    ``L`` the swap lock (0 for plain).
    """
    miss_lo = max(0.0, miss_lo)
    miss_hi = min(float(refs), miss_hi)
    wpl = model.geometry.line_size // 8
    hit_time = model.timing.hit_time
    penalty = model.timing.miss_penalty(1, model.geometry.line_size)
    hit_service_hi = max(hit_time, assist_hit_time) + swap_lock
    cycles_lo = refs * hit_time + miss_lo * (penalty - hit_time)
    cycles_hi = (refs - miss_lo) * hit_service_hi + miss_hi * (
        penalty + swap_lock
    )
    metrics = {
        "refs": Interval.exact(refs),
        "misses": Interval(miss_lo, miss_hi),
        "hits_assist": Interval(0, assist_hits_hi),
        "lines_fetched": Interval(miss_lo, miss_hi),
        "words_fetched": Interval(miss_lo * wpl, miss_hi * wpl),
        "cycles": Interval(cycles_lo, cycles_hi),
        "miss_ratio": Interval(miss_lo / refs, miss_hi / refs),
        "traffic": Interval(miss_lo * wpl / refs, miss_hi * wpl / refs),
        "amat": Interval(cycles_lo / refs, cycles_hi / refs),
    }
    if miss_lo > 0:
        metrics["line_utilization"] = Interval(
            refs / (miss_hi * wpl), refs / (miss_lo * wpl)
        )
    return Prediction(metrics=metrics, exact=False, assumptions=assumptions)


class IRMDistribution(AccessDistribution):
    """Independent reference model: uniform over ``n_lines`` lines.

    Addresses are line-aligned multiples of ``line_bytes`` drawn
    i.i.d. uniformly.  Exact expected-value expressions exist for plain
    LRU caches; assisted configurations get provable two-sided bounds.
    """

    kind = "irm"

    def __init__(
        self,
        n_lines: int = 512,
        refs: int = 60000,
        seed: int = 0,
        line_bytes: int = 32,
    ) -> None:
        super().__init__(refs, seed)
        if n_lines < 1:
            raise ConfigError(f"irm needs n_lines >= 1: {n_lines}")
        if line_bytes < 8 or line_bytes & (line_bytes - 1):
            raise ConfigError(
                f"line_bytes must be a power of two >= 8: {line_bytes}"
            )
        self.n_lines = n_lines
        self.line_bytes = line_bytes

    def params(self) -> Dict[str, int]:
        return {
            "n_lines": self.n_lines,
            "refs": self.refs,
            "seed": self.seed,
            "line_bytes": self.line_bytes,
        }

    def _addresses(self) -> np.ndarray:
        rng = np.random.RandomState(self.seed)
        slots = rng.randint(0, self.n_lines, size=self.refs)
        return slots.astype(np.int64) * self.line_bytes

    def _slack(self, tol: float) -> float:
        # 1-dependent Bernoulli sum: sd <= sqrt(3 * refs) / 2.
        return tol * _IRM_SIGMA * math.sqrt(3.0 * self.refs) / 2.0

    def _plain_expected_hits(self, model) -> float:
        """Exact E[hits] of a plain LRU cache under uniform IRM.

        Per set ``s`` holding ``k_s`` of the model lines: the set's
        subsequence is itself uniform IRM over ``k_s`` lines of length
        ``R_s ~ Binomial(refs, k_s / n_lines)``.

        * ``k_s <= ways``: only compulsory misses — expected hits are
          ``E[R_s] - E[distinct lines touched]``.
        * direct-mapped (``ways == 1``): a reference hits iff it repeats
          the set's previous line — ``E[hits_s] = (E[R_s] - 1 +
          P(R_s = 0)) / k_s`` (exact, transient included).
        * ``ways < k_s`` (set-associative overflow): the steady-state
          hit probability is ``ways / k_s`` (uniform IRM makes the LRU
          top-of-stack a uniformly random ``ways``-subset); the
          transient is absorbed into the band by the caller.
        """
        n = self.n_lines
        refs = self.refs
        ways = model.geometry.ways
        expected = 0.0
        for k in self._set_counts(model).values():
            p = k / n
            er = refs * p
            if k <= ways:
                miss_line = 1.0 - (1.0 - 1.0 / n) ** refs
                expected += er - k * miss_line
            elif ways == 1:
                expected += (er - 1.0 + (1.0 - p) ** refs) / k
            else:
                expected += max(0.0, er - k) * (ways / k)
        return expected

    def predict(self, model, tol: float = 1.0) -> Prediction:
        family, bb = _classify(model)
        refs = self.refs
        slack = self._slack(tol)
        plain_hits = self._plain_expected_hits(model)
        if family == "plain":
            exact_expectation = model.geometry.ways == 1 or all(
                k <= model.geometry.ways
                for k in self._set_counts(model).values()
            )
            transient = 0.0 if exact_expectation else float(self.n_lines)
            miss_lo = refs - plain_hits - slack - transient
            miss_hi = refs - plain_hits + slack + transient
            return _interval_counters(
                refs, miss_lo, miss_hi, model,
                assumptions=[
                    "uniform IRM; exact per-set expected hits "
                    f"± {_IRM_SIGMA:g} sd concentration band",
                ],
            )
        # Assisted: residency upper bound on hits (main + bounce-back
        # hold at most that many distinct lines at any instant) vs the
        # plain most-recent-lines lower bound.
        resident = model.geometry.n_lines + bb
        hits_hi = refs * min(1.0, resident / self.n_lines) + slack
        hits_lo = max(0.0, plain_hits - slack)
        return _interval_counters(
            refs,
            refs - hits_hi,
            refs - hits_lo,
            model,
            assumptions=[
                f"residency bound: <= {resident}/{self.n_lines} lines "
                "resident; plain expectation as the hit floor",
            ],
            assist_hits_hi=hits_hi,
            swap_lock=model.timing.swap_lock,
            assist_hit_time=model.timing.assist_hit_time,
        )


class SequentialScanDistribution(AccessDistribution):
    """Cyclic sequential sweep of a contiguous array.

    ``array_bytes`` are touched at ``stride_bytes`` front to back,
    ``passes`` times.  Per cache set the access order is a cyclic
    repetition of its distinct lines, which makes LRU behaviour fully
    deterministic: compulsory-only when the set fits, every line access
    a miss when it does not.
    """

    kind = "scan"

    def __init__(
        self,
        array_bytes: int = 64 * 1024,
        passes: int = 4,
        stride_bytes: int = 8,
        seed: int = 0,
    ) -> None:
        if array_bytes < stride_bytes or stride_bytes < 1:
            raise ConfigError(
                f"scan needs array_bytes >= stride_bytes >= 1: "
                f"{array_bytes}/{stride_bytes}"
            )
        if passes < 1:
            raise ConfigError(f"scan needs passes >= 1: {passes}")
        self.array_bytes = array_bytes
        self.passes = passes
        self.stride_bytes = stride_bytes
        super().__init__(passes * (array_bytes // stride_bytes), seed)

    def params(self) -> Dict[str, int]:
        return {
            "array_bytes": self.array_bytes,
            "passes": self.passes,
            "stride_bytes": self.stride_bytes,
        }

    def _addresses(self) -> np.ndarray:
        positions = self.array_bytes // self.stride_bytes
        one_pass = np.arange(positions, dtype=np.int64) * self.stride_bytes
        return np.tile(one_pass, self.passes)

    def predict(self, model, tol: float = 1.0) -> Prediction:
        family, bb = _classify(model)
        if self.stride_bytes > model.geometry.line_size:
            raise ConfigError(
                "scan oracle needs stride <= line size (every line "
                "reference lands on a fresh line otherwise — use a "
                "larger array instead)"
            )
        counts = self._set_counts(model)
        ways = model.geometry.ways
        n_sets = model.geometry.n_sets
        distinct = sum(counts.values())
        thrashing = any(k > ways for k in counts.values())
        if family == "assisted" and thrashing:
            # Provably-flushed regime: a victim re-enters the main
            # cache only after its set cycles ``ways`` more lines
            # (<= (ways + 1) * n_sets positions away) and the buffer
            # sees >= bounce_back_lines insertions in between.
            if distinct < (ways + 1) * n_sets + bb + 1:
                raise ConfigError(
                    "scan oracle for assisted caches needs "
                    f"distinct_lines >= (ways+1)*n_sets + bb + 1 "
                    f"({distinct} < {(ways + 1) * n_sets + bb + 1}); "
                    "shrink the cache or grow the array"
                )
        misses = sum(
            k * (self.passes if k > ways else 1) for k in counts.values()
        )
        return _exact_counters(
            self.refs, misses, model,
            assumptions=[
                "cyclic per-set reference order makes LRU deterministic"
                + (
                    "; bounce-back buffer provably flushed between reuses"
                    if family == "assisted" and thrashing
                    else ""
                ),
            ],
        )


class BlockedLoopDistribution(AccessDistribution):
    """Blocked working-set loop: disjoint blocks, each swept repeatedly.

    Block ``b`` covers ``block_bytes`` starting at ``b * block_bytes``;
    it is swept ``repeats`` times at ``stride_bytes`` before the next
    block starts, and never revisited.  When every block fits its sets
    (per-set distinct lines within a block <= ways) the miss count is
    exactly the compulsory floor: one miss per distinct line.
    """

    kind = "blocked"

    def __init__(
        self,
        block_bytes: int = 4096,
        blocks: int = 6,
        repeats: int = 4,
        stride_bytes: int = 8,
        seed: int = 0,
    ) -> None:
        if block_bytes < stride_bytes or stride_bytes < 1:
            raise ConfigError(
                f"blocked needs block_bytes >= stride_bytes >= 1: "
                f"{block_bytes}/{stride_bytes}"
            )
        if blocks < 1 or repeats < 1:
            raise ConfigError(
                f"blocked needs blocks >= 1 and repeats >= 1: "
                f"{blocks}/{repeats}"
            )
        self.block_bytes = block_bytes
        self.blocks = blocks
        self.repeats = repeats
        self.stride_bytes = stride_bytes
        super().__init__(
            blocks * repeats * (block_bytes // stride_bytes), seed
        )

    def params(self) -> Dict[str, int]:
        return {
            "block_bytes": self.block_bytes,
            "blocks": self.blocks,
            "repeats": self.repeats,
            "stride_bytes": self.stride_bytes,
        }

    def _addresses(self) -> np.ndarray:
        positions = self.block_bytes // self.stride_bytes
        sweep = np.arange(positions, dtype=np.int64) * self.stride_bytes
        per_block = np.tile(sweep, self.repeats)
        return np.concatenate(
            [per_block + b * self.block_bytes for b in range(self.blocks)]
        )

    def predict(self, model, tol: float = 1.0) -> Prediction:
        _classify(model)
        if self.stride_bytes > model.geometry.line_size:
            raise ConfigError(
                "blocked oracle needs stride <= line size"
            )
        shift = model.geometry.line_shift
        n_sets = model.geometry.n_sets
        ways = model.geometry.ways
        lines_per_block = max(1, self.block_bytes >> shift)
        for b in range(self.blocks):
            first = (b * self.block_bytes) >> shift
            per_set: Dict[int, int] = {}
            for line in range(first, first + lines_per_block):
                index = line % n_sets
                per_set[index] = per_set.get(index, 0) + 1
                if per_set[index] > ways:
                    raise ConfigError(
                        f"blocked oracle needs every block to fit its "
                        f"sets (block {b} puts {per_set[index]} lines in "
                        f"set {index} of a {ways}-way cache); shrink "
                        "block_bytes"
                    )
        misses = self.blocks * lines_per_block
        return _exact_counters(
            self.refs, misses, model,
            assumptions=[
                "disjoint fitting blocks: compulsory-only miss floor",
            ],
        )


#: Distribution registry: name -> class.  The trace-corpus manager's
#: synthetic manifest entries name generators from this table.
DISTRIBUTIONS: Dict[str, type] = {
    "irm": IRMDistribution,
    "scan": SequentialScanDistribution,
    "blocked": BlockedLoopDistribution,
}


def make_distribution(kind: str, **params) -> AccessDistribution:
    """Instantiate a registered distribution from manifest-style params."""
    try:
        cls = DISTRIBUTIONS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown distribution {kind!r}; known: {sorted(DISTRIBUTIONS)}"
        ) from None
    try:
        return cls(**params)
    except TypeError as error:
        raise ConfigError(
            f"bad parameters for distribution {kind!r}: {error}"
        ) from None


def battery_distributions(
    refs: int = 60000, seed: int = 0
) -> Dict[str, AccessDistribution]:
    """The default oracle battery, scaled to roughly ``refs`` each.

    The sizes are chosen against the paper's 8 KB direct-mapped
    geometry: the IRM working set is twice the cache, the scan array is
    far beyond the provably-flushed threshold of the assisted oracle,
    and the blocked blocks fit their sets exactly.
    """
    scan_positions = (64 * 1024) // 8
    block_positions = 4096 // 8
    return {
        "irm": IRMDistribution(n_lines=512, refs=refs, seed=seed),
        "scan": SequentialScanDistribution(
            array_bytes=64 * 1024,
            passes=max(2, refs // scan_positions),
            stride_bytes=8,
        ),
        "blocked": BlockedLoopDistribution(
            block_bytes=4096,
            blocks=6,
            repeats=max(2, refs // (6 * block_positions)),
            stride_bytes=8,
        ),
    }


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def predict(spec_or_model, dist: AccessDistribution, tol: float = 1.0):
    """Analytic :class:`Prediction` for a spec/preset-name/model."""
    return dist.predict(_build(spec_or_model), tol=tol)


def _build(spec_or_model):
    from ..core.spec import CacheSpec

    if isinstance(spec_or_model, CacheSpec):
        return spec_or_model.build()
    if isinstance(spec_or_model, str):
        from ..presets import build_config

        return build_config(spec_or_model)
    return spec_or_model


def oracle_check(
    spec_or_model,
    dist: AccessDistribution,
    result,
    tol: float = 1.0,
) -> Dict[str, Tuple[float, Interval]]:
    """Assert ``result`` lies within the oracle's bounds for ``dist``.

    ``spec_or_model`` is a :class:`~repro.core.spec.CacheSpec`, a preset
    name or a built model (only its configuration is read).  Returns
    the checked ``{metric: (observed, interval)}`` map; raises
    :class:`OracleMismatch` listing every violated metric.  On top of
    the per-metric intervals a set of *relational* identities of the
    read-only untagged regime is enforced exactly: hits + misses cover
    the references, every miss fetches exactly one line of
    ``line_size/8`` words, and no writebacks or write-buffer stalls
    occur.
    """
    model = _build(spec_or_model)
    prediction = dist.predict(model, tol=tol)
    checked = prediction.check(result)
    problems = [
        f"{name}: observed {observed:g} outside {interval}"
        for name, (observed, interval) in checked.items()
        if not interval.contains(observed)
    ]
    wpl = model.geometry.line_size // 8
    relations = (
        (
            "refs = hits_main + hits_assist + misses",
            result.refs,
            result.hits_main + result.hits_assist + result.misses,
        ),
        ("lines_fetched = misses", result.lines_fetched, result.misses),
        (
            f"words_fetched = misses * {wpl}",
            result.words_fetched,
            result.misses * wpl,
        ),
        ("writebacks = 0 (read-only)", result.writebacks, 0),
        (
            "write_buffer_stalls = 0 (read-only)",
            result.write_buffer_stalls,
            0,
        ),
    )
    for label, observed, expected in relations:
        if observed != expected:
            problems.append(
                f"identity violated: {label} (observed {observed}, "
                f"expected {expected})"
            )
    if problems:
        raise OracleMismatch(
            f"oracle disagrees with {result.cache!r} x {dist.name!r} "
            f"[{result.engine or 'unknown'} engine]: " + "; ".join(problems)
        )
    return checked


# ----------------------------------------------------------------------
# The engine-tier battery (repro verify --oracle)
# ----------------------------------------------------------------------
#: Every engine tier the battery drives.  ``fast`` covers plain batch
#: kernels, ``fast_soft`` the event-driven assisted walkers (both reach
#: the simulator through ``engine="fast"`` — the tier records which
#: family actually ran); ``pipelined`` and ``streamed`` are delivery
#: tiers over the same engines.
ORACLE_TIERS = (
    "reference", "fast", "fast_soft", "native", "pipelined", "streamed",
)

#: Default configurations: one plain and one assisted family member.
ORACLE_CONFIGS = ("standard", "soft")


def _tier_result(tier: str, spec, dist: AccessDistribution):
    """Run one tier; ``(result, skip_reason)`` — exactly one is None."""
    from ..sim.driver import simulate, simulate_stream
    from ..sim.engine import fast_refusal, native_refusal
    from ..sim.fast_soft import is_assisted
    from ..stream import TraceStream
    from ..stream.pipeline import pipeline_refusal

    trace = dist.trace()
    model = spec.build()
    if tier == "reference":
        return simulate(model, trace, engine="reference"), None
    if tier in ("fast", "fast_soft"):
        assisted = is_assisted(model)
        if tier == "fast" and assisted:
            return None, "assisted config: covered by the fast_soft tier"
        if tier == "fast_soft" and not assisted:
            return None, "plain config: covered by the fast tier"
        refusal = fast_refusal(model)
        if refusal is not None:
            return None, f"[{refusal.code}] {refusal}"
        return simulate(model, trace, engine="fast"), None
    if tier == "native":
        refusal = native_refusal(model)
        if refusal is not None:
            return None, f"[{refusal.code}] {refusal}"
        return simulate(model, trace, engine="native"), None
    chunk_refs = max(1024, len(trace) // 4)
    stream = TraceStream.from_trace(trace, chunk_refs=chunk_refs)
    if tier == "streamed":
        return simulate_stream(model, stream), None
    if tier == "pipelined":
        refusal = pipeline_refusal(model)
        if refusal is not None:
            return None, f"[{refusal.code}] {refusal}"
        return simulate_stream(model, stream, workers=2), None
    raise ConfigError(f"unknown oracle tier {tier!r}")


def verify_oracle(
    configs: Optional[Sequence[str]] = None,
    dists: Optional[Dict[str, AccessDistribution]] = None,
    refs: int = 60000,
    seed: int = 0,
    tol: float = 1.0,
    tiers: Sequence[str] = ORACLE_TIERS,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict]:
    """Drive every engine tier over every distribution and oracle-check.

    Returns one row per (distribution, config, tier):
    ``{"dist", "config", "tier", "engine", "ok", "skipped", "exact",
    "metrics"}`` where ``metrics`` maps names to ``(observed, lo, hi)``.
    Rows never raise — failures land as ``ok=False`` with the mismatch
    message under ``"error"`` so the battery reports every tier even
    after a failure.
    """
    from ..presets import spec as preset_spec

    if dists is None:
        dists = battery_distributions(refs=refs, seed=seed)
    specs = {
        name: preset_spec(name) for name in (configs or ORACLE_CONFIGS)
    }
    unknown = [t for t in tiers if t not in ORACLE_TIERS]
    if unknown:
        raise ConfigError(
            f"unknown oracle tiers {unknown}; known: {list(ORACLE_TIERS)}"
        )
    rows: List[Dict] = []
    for dist_name, dist in dists.items():
        for config_name, spec in specs.items():
            # Fail fast on unsupported (config, dist) pairs: predict
            # once before burning tier simulations.
            dist.predict(spec.build(), tol=tol)
            for tier in tiers:
                row = {
                    "dist": dist_name,
                    "config": config_name,
                    "tier": tier,
                    "engine": None,
                    "ok": True,
                    "skipped": None,
                    "exact": None,
                    "metrics": {},
                }
                if progress is not None:
                    progress(f"{dist_name} x {config_name} x {tier}")
                result, skip = _tier_result(tier, spec, dist)
                if result is None:
                    row["skipped"] = skip
                    rows.append(row)
                    continue
                row["engine"] = result.engine
                prediction = dist.predict(spec.build(), tol=tol)
                row["exact"] = prediction.exact
                try:
                    checked = oracle_check(spec, dist, result, tol=tol)
                except OracleMismatch as error:
                    row["ok"] = False
                    row["error"] = str(error)
                else:
                    row["metrics"] = {
                        name: (observed, interval.lo, interval.hi)
                        for name, (observed, interval) in checked.items()
                    }
                rows.append(row)
    return rows


def format_oracle_rows(rows: Sequence[Dict]) -> str:
    """Human-readable battery report (one line per tier row)."""
    lines = []
    for row in rows:
        head = f"  {row['dist']:>8} x {row['config']:<9} {row['tier']:<10}"
        if row["skipped"]:
            lines.append(f"{head} skipped: {row['skipped']}")
        elif not row["ok"]:
            lines.append(f"{head} FAIL: {row.get('error', 'mismatch')}")
        else:
            observed, lo, hi = row["metrics"]["miss_ratio"]
            band = "exact" if row["exact"] else f"[{lo:.4f}, {hi:.4f}]"
            lines.append(
                f"{head} ok [{row['engine']:>9}] "
                f"miss={observed:.4f} vs {band}"
            )
    checked = sum(1 for r in rows if not r["skipped"])
    failed = sum(1 for r in rows if not r["ok"])
    lines.append(
        f"oracle: {checked - failed}/{checked} tier runs within analytic "
        f"bounds ({sum(1 for r in rows if r['skipped'])} skipped)"
    )
    return "\n".join(lines)
