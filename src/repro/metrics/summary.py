"""Cross-benchmark summary statistics over simulation results."""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, Mapping, Optional

from ..errors import ConfigError
from ..sim.result import SimResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the customary aggregate for ratios of times)."""
    values = list(values)
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean(values: Iterable[float]) -> Optional[float]:
    """Degeneracy-tolerant geometric mean for aggregate summary rows.

    Corpus sweeps aggregate metrics that can legitimately be zero (a
    fully-fitting trace has miss ratio 0) or absent; where
    :func:`geometric_mean` raises on such inputs — the right contract
    for the paper-figure pipeline, which should never see them — this
    variant returns ``None`` and emits a :class:`RuntimeWarning`
    instead, so one degenerate cell cannot abort a corpus-wide report.
    Non-finite values are treated like non-positive ones.
    """
    values = [v for v in values if v is not None]
    if not values:
        warnings.warn(
            "geomean of an empty sequence has no value",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    bad = [v for v in values if not math.isfinite(v) or v <= 0]
    if bad:
        warnings.warn(
            f"geomean undefined over non-positive values {bad[:3]}"
            f"{'...' if len(bad) > 3 else ''}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def amat_improvement(baseline: SimResult, candidate: SimResult) -> float:
    """Relative AMAT improvement of ``candidate`` over ``baseline`` (0.25
    means 25% faster memory accesses on average)."""
    if baseline.amat == 0:
        raise ConfigError("baseline AMAT is zero")
    return (baseline.amat - candidate.amat) / baseline.amat


def miss_reduction(baseline: SimResult, candidate: SimResult) -> float:
    """Relative miss-ratio reduction (the paper quotes 62% for MV)."""
    if baseline.misses == 0:
        return 0.0
    return (baseline.misses - candidate.misses) / baseline.misses


def traffic_ratio(baseline: SimResult, candidate: SimResult) -> float:
    """Candidate traffic relative to baseline (>1 means more traffic)."""
    if baseline.words_fetched == 0:
        raise ConfigError("baseline fetched no words")
    return candidate.words_fetched / baseline.words_fetched


def suite_summary(
    results: Mapping[str, Mapping[str, SimResult]],
    baseline: str,
    candidate: str,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark improvement summary plus a geometric-mean row.

    ``results`` maps benchmark -> configuration -> result (the layout of
    :class:`repro.harness.runner.Sweep`).
    """
    summary: Dict[str, Dict[str, float]] = {}
    speedups = []
    for bench, row in results.items():
        base, cand = row[baseline], row[candidate]
        if cand.amat == 0:
            raise ConfigError(f"candidate AMAT is zero for {bench!r}")
        summary[bench] = {
            "amat_improvement": amat_improvement(base, cand),
            "miss_reduction": miss_reduction(base, cand),
            "traffic_ratio": traffic_ratio(base, cand),
        }
        speedups.append(base.amat / cand.amat)
    summary["geomean"] = {
        "amat_improvement": 1.0 - 1.0 / geometric_mean(speedups),
        "miss_reduction": float("nan"),
        "traffic_ratio": float("nan"),
    }
    return summary
