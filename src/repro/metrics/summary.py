"""Cross-benchmark summary statistics over simulation results."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

from ..errors import ConfigError
from ..sim.result import SimResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the customary aggregate for ratios of times)."""
    values = list(values)
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def amat_improvement(baseline: SimResult, candidate: SimResult) -> float:
    """Relative AMAT improvement of ``candidate`` over ``baseline`` (0.25
    means 25% faster memory accesses on average)."""
    if baseline.amat == 0:
        raise ConfigError("baseline AMAT is zero")
    return (baseline.amat - candidate.amat) / baseline.amat


def miss_reduction(baseline: SimResult, candidate: SimResult) -> float:
    """Relative miss-ratio reduction (the paper quotes 62% for MV)."""
    if baseline.misses == 0:
        return 0.0
    return (baseline.misses - candidate.misses) / baseline.misses


def traffic_ratio(baseline: SimResult, candidate: SimResult) -> float:
    """Candidate traffic relative to baseline (>1 means more traffic)."""
    if baseline.words_fetched == 0:
        raise ConfigError("baseline fetched no words")
    return candidate.words_fetched / baseline.words_fetched


def suite_summary(
    results: Mapping[str, Mapping[str, SimResult]],
    baseline: str,
    candidate: str,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark improvement summary plus a geometric-mean row.

    ``results`` maps benchmark -> configuration -> result (the layout of
    :class:`repro.harness.runner.Sweep`).
    """
    summary: Dict[str, Dict[str, float]] = {}
    speedups = []
    for bench, row in results.items():
        base, cand = row[baseline], row[candidate]
        if cand.amat == 0:
            raise ConfigError(f"candidate AMAT is zero for {bench!r}")
        summary[bench] = {
            "amat_improvement": amat_improvement(base, cand),
            "miss_reduction": miss_reduction(base, cand),
            "traffic_ratio": traffic_ratio(base, cand),
        }
        speedups.append(base.amat / cand.amat)
    summary["geomean"] = {
        "amat_improvement": 1.0 - 1.0 / geometric_mean(speedups),
        "miss_reduction": float("nan"),
        "traffic_ratio": float("nan"),
    }
    return summary
