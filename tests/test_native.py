"""Native compiled engine tier: parity, selection, and the build cache.

The native tier's contract is the fast engine's, one rung up: for every
configuration it accepts, counters, final model state and per-reference
telemetry must be bit-identical to the reference loop — in memory and
streamed at any chunk size — while the tier itself stays strictly
optional (no C compiler anywhere must never break anything, only slow
it down).  Parity tests skip when no toolchain exists; the
selection-policy and build-cache tests run everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.errors import ConfigError
from repro.sim import (
    CacheGeometry,
    MemoryTiming,
    StandardCache,
    cross_validate,
    native_refusal,
    select_engine,
    simulate,
)
from repro.sim.driver import simulate_stream
from repro.sim.engine import PARITY_FIELDS
from repro.sim.native import availability, build
from repro.stream import TraceStream

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)

needs_toolchain = pytest.mark.skipif(
    availability() is not None,
    reason="no C toolchain / native library in this environment",
)


def _working_compiler():
    cmd = build.compiler_command()
    return cmd is not None and build._compiler_version(cmd)[0] is not None


needs_compiler = pytest.mark.skipif(
    not _working_compiler(), reason="no working C compiler"
)


def random_trace(seed, refs=4000, lines=256, write_ratio=0.3):
    rng = np.random.default_rng(seed)
    return make_trace(
        (rng.integers(0, lines * 4, refs) * 8).tolist(),
        is_write=(rng.random(refs) < write_ratio).tolist(),
        temporal=(rng.random(refs) < 0.25).tolist(),
        spatial=(rng.random(refs) < 0.25).tolist(),
        gaps=rng.integers(0, 5, refs).tolist(),
        name=f"rand{seed}",
    )


def standard(ways=1, timing=TIMING):
    return StandardCache(
        CacheGeometry(size_bytes=1024, line_size=32, ways=ways), timing
    )


def plain_soft(ways=1, **overrides):
    config = dict(
        size_bytes=1024, line_size=32, ways=ways,
        bounce_back_lines=0, virtual_line_size=None, timing=TIMING,
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


def assisted_soft():
    return SoftwareAssistedCache(SoftCacheConfig(
        size_bytes=1024, line_size=32, ways=1, bounce_back_lines=4,
        virtual_line_size=None, timing=TIMING,
    ))


def assert_counters_equal(a, b, context=""):
    diffs = {
        name: (getattr(a, name), getattr(b, name))
        for name in PARITY_FIELDS
        if getattr(a, name) != getattr(b, name)
    }
    assert not diffs, f"{context}: {diffs}"


def model_state(model):
    import copy

    state = {}
    for attr in ("_tags", "_dirty", "_temporal", "_sets", "_ready_at",
                 "_bus_free_at", "last_fetch"):
        if hasattr(model, attr):
            state[attr] = copy.deepcopy(getattr(model, attr))
    state["wb"] = (
        model.write_buffer.pushes,
        model.write_buffer.stall_cycles,
        list(model.write_buffer._completions),
    )
    return state


@pytest.fixture
def no_toolchain(monkeypatch):
    """Force the memoized build state to 'unavailable', regardless of
    the machine's actual toolchain."""
    monkeypatch.setattr(build, "_STATE", {
        "attempted": True, "lib": None,
        "diagnostic": "forced by test", "path": None,
    })


# ----------------------------------------------------------------------
# Bit-identical parity (toolchain required)
# ----------------------------------------------------------------------

@needs_toolchain
class TestNativeParity:
    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_counters_and_state(self, ways):
        for seed in (0, 1):
            trace = random_trace(seed)
            m_ref, m_nat = standard(ways), standard(ways)
            reference = simulate(m_ref, trace, engine="reference")
            native = simulate(m_nat, trace, engine="native")
            assert native.engine == "native"
            assert_counters_equal(reference, native, f"ways={ways}")
            assert model_state(m_ref) == model_state(m_nat)

    @pytest.mark.parametrize("temporal_priority", [False, True])
    def test_plain_soft_counters_and_state(self, temporal_priority):
        build_model = lambda: plain_soft(
            ways=4, temporal_priority=temporal_priority
        )
        trace = random_trace(3)
        m_ref, m_nat = build_model(), build_model()
        reference = simulate(m_ref, trace, engine="reference")
        native = simulate(m_nat, trace, engine="native")
        assert_counters_equal(reference, native, "plain soft")
        assert model_state(m_ref) == model_state(m_nat)

    def test_unbuffered_write_buffer(self):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        trace = random_trace(4, write_ratio=0.6)
        reference = simulate(standard(timing=timing), trace,
                             engine="reference")
        native = simulate(standard(timing=timing), trace, engine="native")
        assert_counters_equal(reference, native, "wb entries=0")
        assert native.write_buffer_stalls > 0

    @pytest.mark.parametrize("chunk_refs", [1, 37, 509, 4000])
    def test_streamed_matches_monolithic(self, chunk_refs):
        trace = random_trace(5)
        monolithic = simulate(standard(ways=2), trace, engine="native")
        m_stream = standard(ways=2)
        streamed = simulate_stream(
            m_stream, TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="native",
        )
        assert streamed.engine == "native"
        assert_counters_equal(monolithic, streamed, f"chunk={chunk_refs}")
        m_mono = standard(ways=2)
        simulate(m_mono, trace, engine="native")
        assert model_state(m_mono) == model_state(m_stream)

    def test_telemetry_reconstruction(self):
        from repro.telemetry import WindowProbe
        from repro.telemetry.probes import ProbeSet

        trace = random_trace(6)
        ref_probes = ProbeSet([WindowProbe(128)])
        nat_probes = ProbeSet([WindowProbe(128)])
        simulate(standard(), trace, engine="reference", probes=ref_probes)
        simulate(standard(), trace, engine="native", probes=nat_probes)
        assert ref_probes.report() == nat_probes.report()

    def test_cross_validate_runs_three_way(self):
        trace = random_trace(7)
        result = cross_validate(standard, trace, engine_result="native")
        assert result.engine == "native"

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        refs=st.integers(1, 1500),
        chunk_refs=st.integers(1, 400),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_property_parity(self, seed, refs, chunk_refs, ways):
        trace = random_trace(seed, refs=refs)
        reference = simulate(standard(ways), trace, engine="reference")
        streamed = simulate_stream(
            standard(ways),
            TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="native",
        )
        assert_counters_equal(reference, streamed, "hypothesis")


# ----------------------------------------------------------------------
# Selection policy (runs with or without a toolchain)
# ----------------------------------------------------------------------

class TestSelection:
    @needs_toolchain
    def test_native_beats_fast_in_auto(self):
        chosen, refusal = select_engine("auto", standard())
        assert chosen == "native" and refusal is None

    @needs_toolchain
    def test_result_records_native(self):
        result = simulate(standard(), random_trace(8))
        assert result.engine == "native"
        assert result.engine_refusal is None

    def test_assisted_stays_on_fast(self):
        reason = native_refusal(assisted_soft())
        assert reason is not None and reason.code == "native-assisted"
        chosen, why = select_engine("auto", assisted_soft())
        assert chosen == "fast" and why.code == "native-assisted"

    def test_explicit_native_on_assisted_raises(self):
        with pytest.raises(ConfigError, match="native-assisted"):
            select_engine("native", assisted_soft())

    def test_fast_refusal_passes_through(self):
        reason = native_refusal(standard(), reset=False)
        assert reason is not None and reason.code == "warm-start"

    def test_auto_falls_back_silently_without_toolchain(self, no_toolchain):
        chosen, why = select_engine("auto", standard())
        assert chosen == "fast"
        assert why.code == "native-unavailable"
        assert "forced by test" in str(why)
        result = simulate(standard(), random_trace(9))
        assert result.engine == "fast"
        assert result.engine_refusal.code == "native-unavailable"

    def test_explicit_native_without_toolchain_raises(self, no_toolchain):
        with pytest.raises(ConfigError, match="native-unavailable"):
            simulate(standard(), random_trace(10), engine="native")

    def test_env_knob_native_without_toolchain_raises(
        self, no_toolchain, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "native")
        with pytest.raises(ConfigError, match="native-unavailable"):
            simulate(standard(), random_trace(11))

    def test_env_knob_auto_without_toolchain_serves_fast(
        self, no_toolchain, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "auto")
        result = simulate(standard(), random_trace(12))
        assert result.engine == "fast"

    @needs_toolchain
    def test_env_knob_native_selects_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "native")
        result = simulate(standard(), random_trace(13))
        assert result.engine == "native"

    def test_fast_precedence_unchanged_below_native(self):
        # The fast-vs-reference half of the ladder is untouched by the
        # native tier: a prefetching config still refuses to reference.
        model = SoftwareAssistedCache(SoftCacheConfig(
            size_bytes=1024, line_size=32, ways=1, bounce_back_lines=4,
            virtual_line_size=None, prefetch="on-miss", timing=TIMING,
        ))
        chosen, why = select_engine("auto", model)
        assert chosen == "reference" and why.code == "prefetch"


# ----------------------------------------------------------------------
# Build cache
# ----------------------------------------------------------------------

class TestBuildCache:
    def _fresh(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(build, "_STATE", {
            "attempted": False, "lib": None,
            "diagnostic": None, "path": None,
        })

    @needs_compiler
    def test_so_cache_invalidated_by_source_change(
        self, tmp_path, monkeypatch
    ):
        self._fresh(monkeypatch, tmp_path)
        first, diagnostic = build.ensure_library()
        assert diagnostic is None and first.exists()
        assert first.parent == tmp_path / "native"
        # Same source: served from cache, same path.
        again, _ = build.ensure_library()
        assert again == first
        # Changed source: a different hash, hence a fresh compile.
        original = build._source_bytes
        monkeypatch.setattr(
            build, "_source_bytes",
            lambda: original() + b"\n/* cache-invalidation probe */\n",
        )
        second, diagnostic = build.ensure_library()
        assert diagnostic is None and second.exists()
        assert second != first

    @needs_compiler
    def test_compile_failure_reports_diagnostic(
        self, tmp_path, monkeypatch
    ):
        self._fresh(monkeypatch, tmp_path)
        monkeypatch.setattr(
            build, "_source_bytes", lambda: b"this is not C\n"
        )
        path, diagnostic = build.ensure_library()
        assert path is None
        assert "compile failed" in diagnostic

    def test_cc_false_means_unavailable(self, tmp_path, monkeypatch):
        # $CC that cannot report a version hashes to nothing: even a
        # previously built library is not served (the CI no-compiler
        # job relies on exactly this).
        self._fresh(monkeypatch, tmp_path)
        monkeypatch.setenv("CC", "/bin/false")
        path, diagnostic = build.ensure_library()
        assert path is None and diagnostic
        lib, diagnostic = build.load()
        assert lib is None
        assert build.availability() is not None

    def test_no_compiler_diagnostic(self, tmp_path, monkeypatch):
        self._fresh(monkeypatch, tmp_path)
        monkeypatch.setenv("CC", "")
        monkeypatch.setattr(build, "compiler_command", lambda: None)
        path, diagnostic = build.ensure_library()
        assert path is None
        assert "no C compiler" in diagnostic


# ----------------------------------------------------------------------
# Bench guard
# ----------------------------------------------------------------------

class TestNativeBenchGuard:
    @staticmethod
    def payload(matrix, native_speedup, fast_rps=1_000_000):
        rows = []
        for name in matrix:
            rows.append({"config": name, "engine": "fast",
                         "refs_per_sec": fast_rps})
        return {
            "results": rows,
            "native_refusal_matrix": matrix,
            "native_speedup": native_speedup,
        }

    def test_passes_above_floor(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload({"standard": None}, {"standard": 8.0})
        assert native_bench_guard(payload, 5.0) == []

    def test_fails_below_floor(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload({"standard": None}, {"standard": 3.0})
        problems = native_bench_guard(payload, 5.0)
        assert problems and "below" in problems[0]

    def test_degrades_without_toolchain(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload(
            {"standard": "native-unavailable",
             "standard_cache": "native-unavailable"}, {},
        )
        assert native_bench_guard(payload, 5.0) == []

    def test_no_throughput_fails_even_degraded(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload(
            {"standard": "native-unavailable"}, {}, fast_rps=0,
        )
        problems = native_bench_guard(payload, 5.0)
        assert problems and "no throughput" in problems[0]

    def test_unexpected_refusal_always_fails(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload({"standard": "native-assisted"}, {})
        problems = native_bench_guard(payload, 5.0)
        assert problems and "native-assisted" in problems[0]

    def test_missing_measurement_fails(self):
        from repro.harness.bench import native_bench_guard

        payload = self.payload({"standard": None}, {})
        problems = native_bench_guard(payload, 5.0)
        assert problems and "no native-engine measurement" in problems[0]
