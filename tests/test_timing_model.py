"""Tests for the inter-reference gap model (figure 4b)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memtrace import FIG4B_DISTRIBUTION, UNIT_GAPS, GapDistribution, draw_gaps


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            GapDistribution((1, 2), (1.0,))

    def test_empty(self):
        with pytest.raises(ConfigError):
            GapDistribution((), ())

    def test_negative_value(self):
        with pytest.raises(ConfigError):
            GapDistribution((-1,), (1.0,))

    def test_negative_weight(self):
        with pytest.raises(ConfigError):
            GapDistribution((1,), (-1.0,))

    def test_all_zero_weights(self):
        with pytest.raises(ConfigError):
            GapDistribution((1, 2), (0.0, 0.0))


class TestSampling:
    def test_probabilities_normalised(self):
        d = GapDistribution((1, 2), (3.0, 1.0))
        assert d.probabilities.tolist() == [0.75, 0.25]

    def test_mean(self):
        d = GapDistribution((1, 3), (1.0, 1.0))
        assert d.mean() == 2.0

    def test_sample_values_in_support(self):
        rng = np.random.default_rng(0)
        samples = FIG4B_DISTRIBUTION.sample(1000, rng)
        assert set(samples.tolist()) <= set(FIG4B_DISTRIBUTION.values)

    def test_sample_deterministic_with_seed(self):
        a = FIG4B_DISTRIBUTION.sample(100, np.random.default_rng(42))
        b = FIG4B_DISTRIBUTION.sample(100, np.random.default_rng(42))
        assert (a == b).all()

    def test_sample_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            UNIT_GAPS.sample(-1, np.random.default_rng(0))

    def test_draw_gaps_wrapper(self):
        gaps = draw_gaps(50, UNIT_GAPS, seed=1)
        assert (gaps == 1).all()

    def test_empirical_mean_close_to_model(self):
        gaps = draw_gaps(200_000, FIG4B_DISTRIBUTION, seed=5)
        assert abs(gaps.mean() - FIG4B_DISTRIBUTION.mean()) < 0.05


class TestHistogram:
    def test_exact_values(self):
        d = GapDistribution((1, 2, 5), (1, 1, 1))
        h = d.histogram([1, 1, 2, 5])
        assert h[1] == 0.5 and h[2] == 0.25 and h[5] == 0.25

    def test_intermediate_values_bucket_up(self):
        d = GapDistribution((1, 5), (1, 1))
        h = d.histogram([3])
        assert h[5] == 1.0

    def test_overflow_goes_to_last_bucket(self):
        d = GapDistribution((1, 5), (1, 1))
        assert d.histogram([99])[5] == 1.0

    def test_empty_histogram(self):
        h = UNIT_GAPS.histogram([])
        assert h[1] == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=50))
    def test_fractions_sum_to_one(self, gaps):
        h = FIG4B_DISTRIBUTION.histogram(gaps)
        if gaps:
            assert abs(sum(h.values()) - 1.0) < 1e-9


class TestRoundTrip:
    def test_sampled_histogram_matches_model(self):
        rng = np.random.default_rng(11)
        samples = FIG4B_DISTRIBUTION.sample(300_000, rng).tolist()
        histogram = FIG4B_DISTRIBUTION.histogram(samples)
        for value, p in zip(
            FIG4B_DISTRIBUTION.values, FIG4B_DISTRIBUTION.probabilities
        ):
            assert abs(histogram[value] - p) < 0.01
