"""The lossy set-associative hot tier and the tiered store, in isolation."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.harness.parallel import ResultCache
from repro.serve.store import HotResultStore, TieredResultStore


class TestHotStoreBasics:
    def test_get_miss_then_hit(self):
        store = HotResultStore(sets=8, ways=2)
        assert store.get("k") is None
        assert store.put("k", 41) is None
        assert store.get("k") == 41
        assert len(store) == 1

    def test_put_same_key_updates_in_place(self):
        store = HotResultStore(sets=8, ways=2)
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1
        assert store.stats()["updates"] == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            HotResultStore(sets=0, ways=1)
        with pytest.raises(ConfigError):
            HotResultStore(sets=1, ways=0)

    def test_clear(self):
        store = HotResultStore(sets=4, ways=2)
        for k in "abcd":
            store.put(k, k)
        store.clear()
        assert len(store) == 0
        assert all(store.get(k) is None for k in "abcd")


class TestLossyAdmission:
    """A full set evicts — residency is bounded by the associativity."""

    def test_set_conflict_evicts_within_the_set(self):
        # sets=1 forces every key into the same set.
        store = HotResultStore(sets=1, ways=2)
        assert store.put("a", 1) is None
        assert store.put("b", 2) is None
        victim = store.put("c", 3)
        assert victim in ("a", "b")
        assert len(store) == 2  # lossy: capacity never exceeded
        assert store.get("c") == 3
        assert store.get(victim) is None
        stats = store.stats()
        assert stats["evictions"] == 1
        assert stats["resident"] == 2

    def test_resident_never_exceeds_capacity(self):
        store = HotResultStore(sets=2, ways=2)
        for index in range(64):
            store.put(f"key-{index}", index)
        assert len(store) <= 4
        stats = store.stats()
        assert stats["resident"] <= stats["capacity"]
        assert stats["admissions"] - stats["evictions"] == stats["resident"]


class TestClockEviction:
    """Second-chance order: referenced entries survive a sweep."""

    def test_untouched_entry_evicted_before_touched(self):
        store = HotResultStore(sets=1, ways=3)
        store.put("a", 1)
        store.put("b", 2)
        store.put("c", 3)
        # Full sweep: every ref bit was set on admission, so the hand
        # clears a, b, c and wraps to evict "a" (pure FIFO on a cold
        # clock).  State now: [d(ref), b, c] with b and c cleared.
        assert store.put("d", 4) == "a"
        # Touch "c": its reference bit protects it from the next sweep.
        assert store.get("c") == 3
        # Next admission finds "b" with a clear bit first — the
        # untouched entry goes before the recently-used one.
        assert store.put("e", 5) == "b"
        assert store.get("c") == 3
        assert store.get("d") == 4
        assert store.get("e") == 5

    def test_eviction_bounded_even_when_all_referenced(self):
        store = HotResultStore(sets=1, ways=4)
        for k in "abcd":
            store.put(k, k)
            store.get(k)  # every bit set
        victim = store.put("z", 26)  # must terminate and pick someone
        assert victim in "abcd"
        assert store.get("z") == 26


class TestKeying:
    """Content-addressed equality: the store keys are cache digests."""

    def test_same_fingerprints_same_key(self):
        a = ResultCache.key("trace-fp", "spec-fp", "fast")
        b = ResultCache.key("trace-fp", "spec-fp", "fast")
        assert a == b

    def test_any_component_changes_the_key(self):
        base = ResultCache.key("trace-fp", "spec-fp", "fast")
        assert ResultCache.key("other", "spec-fp", "fast") != base
        assert ResultCache.key("trace-fp", "other", "fast") != base
        assert ResultCache.key("trace-fp", "spec-fp", "reference") != base

    def test_equal_keys_share_a_slot(self):
        store = HotResultStore(sets=64, ways=2)
        key = ResultCache.key("t", "s", "auto")
        same = ResultCache.key("t", "s", "auto")
        store.put(key, "value")
        assert store.get(same) == "value"
        assert len(store) == 1


class TestThreadSafety:
    def test_concurrent_put_get_is_consistent(self):
        store = HotResultStore(sets=4, ways=2)
        keys = [f"key-{i}" for i in range(32)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for round_no in range(200):
                    key = keys[(seed * 7 + round_no) % len(keys)]
                    store.put(key, key)
                    got = store.get(key)
                    # Lossy: a concurrent eviction may drop the entry,
                    # but a hit must never return another key's value.
                    if got is not None and got != key:
                        errors.append((key, got))
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = store.stats()
        assert stats["resident"] <= stats["capacity"]
        assert stats["admissions"] - stats["evictions"] == stats["resident"]
        assert len(store) == stats["resident"]


class _CountingDisk:
    """Stand-in durable tier that counts traffic (duck-types ResultCache)."""

    def __init__(self):
        self.data = {}
        self.gets = 0
        self.puts = 0
        self.root = "<memory>"

    def get(self, key):
        self.gets += 1
        return self.data.get(key)

    def put(self, key, result):
        self.puts += 1
        self.data[key] = result


class TestTieredStore:
    def test_hot_hit_never_touches_disk(self):
        disk = _CountingDisk()
        store = TieredResultStore(HotResultStore(sets=4, ways=2), disk)
        store.put("k", "result")
        assert disk.puts == 1
        before = disk.gets
        for _ in range(10):
            result, tier = store.get("k")
            assert (result, tier) == ("result", "hot")
        assert disk.gets == before  # the hot path is disk-free
        assert store.hot_hits == 10

    def test_disk_hit_readmits_to_hot(self):
        disk = _CountingDisk()
        store = TieredResultStore(HotResultStore(sets=4, ways=2), disk)
        store.put("k", "result")
        store.hot.clear()  # simulate lossy eviction
        result, tier = store.get("k")
        assert (result, tier) == ("result", "disk")
        gets_after_readthrough = disk.gets
        result, tier = store.get("k")
        assert (result, tier) == ("result", "hot")
        assert disk.gets == gets_after_readthrough
        assert store.disk_hits == 1 and store.hot_hits == 1

    def test_full_miss(self):
        store = TieredResultStore(HotResultStore(sets=4, ways=2), None)
        assert store.get("nope") == (None, None)
        assert store.misses == 1

    def test_cacheless_round_trip(self):
        store = TieredResultStore(HotResultStore(sets=4, ways=2), None)
        store.put("k", "v")
        assert store.get("k") == ("v", "hot")

    def test_stats_shape(self):
        disk = _CountingDisk()
        store = TieredResultStore(HotResultStore(sets=4, ways=2), disk)
        stats = store.stats()
        assert set(stats) == {"hot_hits", "disk_hits", "misses", "hot", "disk"}
        assert stats["disk"] == {"root": "<memory>"}
        assert stats["hot"]["capacity"] == 8
